//! Raft safety under randomized network-partitioning schedules: the
//! proven-protocol control arm of the study. Whatever faults we throw at
//! baseline Raft, the checkers must stay silent.

use std::collections::BTreeMap;

use neat_repro::consensus::{RaftCluster, RaftClusterSpec, RaftRole};
use neat_repro::neat::{
    checkers::{check_linearizable_register, check_register, RegisterSemantics},
    rest_of,
};
use proptest::prelude::*;
use simnet::NodeId;

#[derive(Clone, Debug)]
enum Step {
    Put { key: u8, client: u8 },
    Get { key: u8, client: u8 },
    IsolateLeader,
    IsolateRandom { which: u8 },
    HealAll,
    CrashLeader,
    RestartAll,
    Settle { ms: u16 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0u8..2, 0u8..2).prop_map(|(key, client)| Step::Put { key, client }),
        3 => (0u8..2, 0u8..2).prop_map(|(key, client)| Step::Get { key, client }),
        1 => Just(Step::IsolateLeader),
        1 => (0u8..3).prop_map(|which| Step::IsolateRandom { which }),
        2 => Just(Step::HealAll),
        1 => Just(Step::CrashLeader),
        1 => Just(Step::RestartAll),
        2 => (50u16..400).prop_map(|ms| Step::Settle { ms }),
    ]
}

fn run_schedule(seed: u64, steps: &[Step]) -> RaftCluster {
    let mut c = RaftCluster::build(RaftClusterSpec::baseline(3, seed));
    c.wait_for_leader(3000);
    let mut val = 0u64;
    for step in steps {
        match step {
            Step::Put { key, client } => {
                val += 1;
                let target = c.leader().unwrap_or(c.servers[0]);
                let cl = c.client(*client as usize % 2).via(target);
                cl.put(&mut c.neat, &format!("k{key}"), val);
            }
            Step::Get { key, client } => {
                let target = c.leader().unwrap_or(c.servers[0]);
                let cl = c.client(*client as usize % 2).via(target);
                cl.get(&mut c.neat, &format!("k{key}"));
            }
            Step::IsolateLeader => {
                if let Some(l) = c.leader() {
                    let rest = rest_of(&c.servers, &[l]);
                    c.neat.partition_complete(&[l], &rest);
                }
            }
            Step::IsolateRandom { which } => {
                let s = c.servers[*which as usize % c.servers.len()];
                let rest = rest_of(&c.servers, &[s]);
                c.neat.partition_partial(&[s], &rest);
            }
            Step::HealAll => c.neat.heal_all(),
            Step::CrashLeader => {
                // At most one server down at a time, so a majority survives.
                let all_alive = c.servers.iter().all(|&s| c.neat.world.is_alive(s));
                if all_alive {
                    if let Some(l) = c.leader() {
                        c.neat.crash(&[l]);
                    }
                }
            }
            Step::RestartAll => {
                let servers = c.servers.clone();
                c.neat.restart(&servers);
            }
            Step::Settle { ms } => c.settle(*ms as u64),
        }
    }
    c.neat.heal_all();
    let servers = c.servers.clone();
    c.neat.restart(&servers);
    c.settle(4000);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Election safety: never two leaders in the same term.
    #[test]
    fn at_most_one_leader_per_term(
        seed in 0u64..500,
        steps in proptest::collection::vec(step_strategy(), 0..20),
    ) {
        let c = run_schedule(seed, &steps);
        let mut by_term: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
        for &s in &c.servers {
            let sv = c.neat.world.app(s).server();
            if sv.role() == RaftRole::Leader {
                by_term.entry(sv.term()).or_default().push(s);
            }
        }
        for (term, leaders) in by_term {
            prop_assert!(leaders.len() <= 1, "term {term} has leaders {leaders:?}");
        }
    }

    /// No acknowledged write is ever lost, and per-key histories stay
    /// linearizable — regardless of the fault schedule.
    #[test]
    fn no_acknowledged_write_lost(
        seed in 0u64..500,
        steps in proptest::collection::vec(step_strategy(), 0..20),
    ) {
        let c = run_schedule(seed, &steps);
        let final_state = c.final_state(&["k0", "k1"]);
        let violations = check_register(
            c.neat.history(),
            RegisterSemantics::Strong,
            &final_state,
        );
        prop_assert!(
            violations.is_empty(),
            "{violations:?}\nhistory:\n{}",
            c.neat.history().render()
        );
        for key in ["k0", "k1"] {
            let lin = check_linearizable_register(c.neat.history(), key, None);
            prop_assert!(lin.is_empty(), "{key}: {lin:?}\n{}", c.neat.history().render());
        }
    }

    /// Committed logs on any two servers are prefixes of one another
    /// (log matching, observed after quiescence).
    #[test]
    fn committed_logs_agree(
        seed in 0u64..500,
        steps in proptest::collection::vec(step_strategy(), 0..16),
    ) {
        let c = run_schedule(seed, &steps);
        let logs: Vec<Vec<neat_repro::consensus::Cmd>> = c
            .servers
            .iter()
            .map(|&s| {
                let sv = c.neat.world.app(s).server();
                sv.log()[..sv.commit()].iter().map(|e| e.cmd.clone()).collect()
            })
            .collect();
        for i in 0..logs.len() {
            for j in i + 1..logs.len() {
                let n = logs[i].len().min(logs[j].len());
                prop_assert_eq!(
                    &logs[i][..n],
                    &logs[j][..n],
                    "committed prefixes diverge between servers {} and {}",
                    i,
                    j
                );
            }
        }
    }
}
