//! Tier-1 gate: the fleet runner is *transparent* — for any worker count,
//! every parallel entry point must produce bytes identical to its serial
//! counterpart over the full scenario registry. This is the property that
//! lets `--jobs K` exist at all in a repo whose north star is "same seed
//! ⇒ same trace": parallelism may only change wall-clock time, never one
//! byte of output.

use neat_repro::campaign::{render, render_sweep, run_all_scenarios, scenario_fingerprints};

#[test]
fn campaign_is_byte_identical_for_any_worker_count() {
    let serial = render(&run_all_scenarios(8));
    for jobs in [1, 4, 8] {
        assert_eq!(
            render(&fleet::campaign::run_all(8, jobs)),
            serial,
            "campaign diverged at jobs={jobs}"
        );
    }
}

#[test]
fn sweep_is_byte_identical_for_any_worker_count() {
    let seeds: Vec<u64> = (8..12).collect();
    let serial = render_sweep(&fleet::campaign::sweep(&seeds, 1));
    for jobs in [4, 8] {
        assert_eq!(
            render_sweep(&fleet::campaign::sweep(&seeds, jobs)),
            serial,
            "sweep diverged at jobs={jobs}"
        );
    }
}

#[test]
fn fingerprints_are_byte_identical_for_any_worker_count() {
    let serial = scenario_fingerprints(8);
    for jobs in [1, 4, 8] {
        assert_eq!(
            fleet::campaign::fingerprints(8, jobs),
            serial,
            "fingerprints diverged at jobs={jobs}"
        );
    }
}

#[test]
fn cli_report_is_jobs_invariant_in_both_modes() {
    for seeds in [None, Some(3)] {
        let serial = fleet::cli::report(&fleet::cli::Opts {
            seed: 8,
            seeds,
            jobs: 1,
        });
        for jobs in [4, 8] {
            let parallel = fleet::cli::report(&fleet::cli::Opts {
                seed: 8,
                seeds,
                jobs,
            });
            assert_eq!(parallel, serial, "seeds={seeds:?} jobs={jobs}");
        }
    }
}

#[test]
fn audit_is_jobs_invariant() {
    let serial = fleet::campaign::audit(42, 1);
    for jobs in [4, 8] {
        assert_eq!(fleet::campaign::audit(42, jobs), serial, "jobs={jobs}");
    }
}
