//! Tier-1 gate: the fleet runner is *transparent* — for any worker count,
//! every parallel entry point must produce bytes identical to its serial
//! counterpart over the full scenario registry. This is the property that
//! lets `--jobs K` exist at all in a repo whose north star is "same seed
//! ⇒ same trace": parallelism may only change wall-clock time, never one
//! byte of output.

use neat_repro::campaign::{render, render_sweep, run_all_scenarios, scenario_fingerprints};

#[test]
fn campaign_is_byte_identical_for_any_worker_count() {
    let serial = render(&run_all_scenarios(8));
    for jobs in [1, 4, 8] {
        assert_eq!(
            render(&fleet::campaign::run_all(8, jobs)),
            serial,
            "campaign diverged at jobs={jobs}"
        );
    }
}

#[test]
fn sweep_is_byte_identical_for_any_worker_count() {
    let seeds: Vec<u64> = (8..12).collect();
    let serial = render_sweep(&fleet::campaign::sweep(&seeds, 1));
    for jobs in [4, 8] {
        assert_eq!(
            render_sweep(&fleet::campaign::sweep(&seeds, jobs)),
            serial,
            "sweep diverged at jobs={jobs}"
        );
    }
}

#[test]
fn fingerprints_are_byte_identical_for_any_worker_count() {
    let serial = scenario_fingerprints(8);
    for jobs in [1, 4, 8] {
        assert_eq!(
            fleet::campaign::fingerprints(8, jobs),
            serial,
            "fingerprints diverged at jobs={jobs}"
        );
    }
}

#[test]
fn cli_report_is_jobs_invariant_in_both_modes() {
    for seeds in [None, Some(3)] {
        let serial = fleet::cli::report(&fleet::cli::Opts {
            seed: 8,
            seeds,
            jobs: 1,
            trace: false,
        });
        for jobs in [4, 8] {
            let parallel = fleet::cli::report(&fleet::cli::Opts {
                seed: 8,
                seeds,
                jobs,
                trace: false,
            });
            assert_eq!(parallel, serial, "seeds={seeds:?} jobs={jobs}");
        }
    }
}

#[test]
fn audit_is_jobs_invariant() {
    let serial = fleet::campaign::audit(42, 1);
    for jobs in [4, 8] {
        assert_eq!(fleet::campaign::audit(42, jobs), serial, "jobs={jobs}");
    }
}

// --- property: forensics trace bytes are jobs-invariant ------------------
//
// The deterministic-sampling version of the fixed-matrix tests above:
// for random (seed, jobs-pair) samples, the rendered forensics report —
// the full trace byte stream of every recorded flawed arm — must be
// identical whichever worker count produced it.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn forensics_trace_bytes_are_jobs_invariant(
        seed in 0u64..10_000,
        jobs_a in 1usize..9,
        jobs_b in 1usize..9,
    ) {
        let a = neat_repro::campaign::render_forensics(
            seed,
            &fleet::campaign::forensics(seed, jobs_a),
        );
        let b = neat_repro::campaign::render_forensics(
            seed,
            &fleet::campaign::forensics(seed, jobs_b),
        );
        prop_assert_eq!(
            neat::audit::trace_hash(&a),
            neat::audit::trace_hash(&b),
            "forensics diverged between jobs={} and jobs={} at seed {}",
            jobs_a, jobs_b, seed
        );
        prop_assert_eq!(a, b);
    }

    /// The load-driven scenarios thread a second RNG through every run —
    /// the workload driver's arrival gaps, key sampling, and op mix — so
    /// they get their own jobs-invariance property: for random seeds,
    /// both arms' streamed execution hashes must not depend on which
    /// fleet worker computed them.
    #[test]
    fn load_scenario_hashes_are_jobs_invariant(
        seed in 0u64..10_000,
        jobs in 2usize..9,
    ) {
        // The registry's runner closures are not Sync, so each worker
        // rebuilds the registry and indexes into its load subset — the
        // same shape fleet's own campaign entry points use.
        let n = neat_repro::campaign::registry()
            .iter()
            .filter(|s| s.partition.starts_with("load"))
            .count();
        prop_assert!(n >= 5, "only {} load scenarios", n);
        let run = |jobs: usize| -> Vec<String> {
            fleet::pool::map(jobs, n, |i| {
                let specs = neat_repro::campaign::registry();
                let s = specs
                    .iter()
                    .filter(|s| s.partition.starts_with("load"))
                    .nth(i)
                    .expect("load scenario index");
                let flawed = (s.flawed)(seed, neat_repro::campaign::RunMode::Hash);
                let fixed = s
                    .fixed
                    .as_ref()
                    .map(|f| f(seed, neat_repro::campaign::RunMode::Hash));
                format!(
                    "{} {:?} {:?}",
                    s.name,
                    flawed.fingerprint,
                    fixed.map(|a| a.fingerprint)
                )
            })
        };
        prop_assert_eq!(run(1), run(jobs), "load arms diverged at seed {}", seed);
    }

    /// Sharded coverage-guided exploration merges deterministically: for
    /// random (base seed, jobs-pair) samples, the merged exploration —
    /// report tallies, novelty-corpus entries in discovery order, and
    /// every find with its repro seed — must render byte-identically
    /// whichever worker count produced it.
    #[test]
    fn exploration_merges_are_jobs_invariant(
        seed in 0u64..10_000,
        jobs_a in 1usize..9,
        jobs_b in 1usize..9,
    ) {
        let strategy = neat::explore::Strategy::coverage_guided(3);
        let make = || repkv::RepkvTarget::new(repkv::Config::voltdb());
        let run = |jobs: usize| {
            let merged = fleet::explore::explore_sharded(jobs, 3, seed, make, &strategy, 4);
            format!("{merged:?}")
        };
        prop_assert_eq!(
            run(jobs_a),
            run(jobs_b),
            "exploration diverged between jobs={} and jobs={} at base seed {}",
            jobs_a, jobs_b, seed
        );
    }
}
