//! Endurance tests: dozens of partition/heal cycles (the production
//! pattern the paper cites — partitions recur weekly and last for long
//! stretches) against the fixed baselines, with client traffic between
//! every fault step. Nothing may break, ever.

use neat_repro::consensus::{RaftCluster, RaftClusterSpec};
use neat_repro::neat::{
    checkers::{check_register, RegisterSemantics},
    nemesis::{replay, Nemesis},
    PartitionKind,
};
use neat_repro::repkv::{Cluster, ClusterSpec, Config};

#[test]
fn raft_survives_twenty_flicker_cycles() {
    let mut cluster = RaftCluster::build(RaftClusterSpec::baseline(3, 77));
    cluster.wait_for_leader(3000).expect("initial leader");
    let servers = cluster.servers.clone();
    let clients = (cluster.client(0), cluster.client(1));

    let mut nemesis = Nemesis::flicker(servers);
    nemesis.kinds = vec![
        PartitionKind::Complete,
        PartitionKind::Partial,
        PartitionKind::Simplex,
    ];
    nemesis.crash_probability = 0.25;
    let schedule = nemesis.schedule(20, 7);

    let mut val = 0u64;
    // Collect leaders outside the closure: replay borrows the engine.
    let mut ops = Vec::new();
    {
        let RaftCluster { neat, servers, .. } = &mut cluster;
        let servers = servers.clone();
        replay(neat, &schedule, |engine| {
            val += 1;
            // Find the current leader through the engine (best effort).
            let leader = servers
                .iter()
                .copied()
                .filter(|&s| engine.world.is_alive(s))
                .find(|&s| {
                    engine.world.app(s).server().role()
                        == neat_repro::consensus::RaftRole::Leader
                });
            if let Some(l) = leader {
                let key = format!("k{}", val % 2);
                let cl = clients.0.via(l);
                let outcome = cl.put(engine, &key, val);
                ops.push((key, val, outcome));
            }
        });
    }
    cluster.neat.heal_all();
    let servers = cluster.servers.clone();
    cluster.neat.restart(&servers);
    cluster.settle(4000);

    assert!(
        cluster.wait_for_leader(4000).is_some(),
        "a leader must re-emerge after the flicker storm"
    );
    assert!(
        ops.iter().filter(|(_, _, o)| o.is_ok()).count() > 5,
        "the cluster must have made progress between faults: {ops:?}"
    );
    let final_state = cluster.final_state(&["k0", "k1"]);
    let violations = check_register(
        cluster.neat.history(),
        RegisterSemantics::Strong,
        &final_state,
    );
    assert!(
        violations.is_empty(),
        "{violations:?}\n{}",
        cluster.neat.history().render()
    );
}

#[test]
fn fixed_repkv_survives_fifteen_flicker_cycles() {
    let mut cluster = Cluster::build(ClusterSpec::three_by_two(Config::fixed(), 88));
    cluster.wait_for_leader(3000).expect("initial leader");
    let servers = cluster.servers.clone();
    let nemesis = Nemesis::flicker(servers.clone());
    let schedule = nemesis.schedule(15, 9);

    let client0 = cluster.client(0);
    let mut val = 0u64;
    {
        let Cluster { neat, .. } = &mut cluster;
        replay(neat, &schedule, |engine| {
            val += 1;
            let leader = servers
                .iter()
                .copied()
                .filter(|&s| engine.world.is_alive(s))
                .find(|&s| {
                    engine.world.app(s).server().role() == neat_repro::repkv::Role::Leader
                });
            if let Some(l) = leader {
                let cl = client0.via(l);
                cl.write(engine, "k", val);
                cl.read(engine, "k");
            }
        });
    }
    cluster.neat.heal_all();
    cluster.settle(4000);

    let final_state = cluster.final_state(&["k"]);
    let violations = check_register(
        cluster.neat.history(),
        RegisterSemantics::Strong,
        &final_state,
    );
    assert!(
        violations.is_empty(),
        "{violations:?}\n{}",
        cluster.neat.history().render()
    );
}

#[test]
fn flawed_profile_breaks_under_the_same_storm() {
    // The control experiment: the identical nemesis schedule against the
    // flawed VoltDB-like profile does produce violations.
    let mut any_violation = false;
    for seed in [86, 99, 101] {
        let mut cluster = Cluster::build(ClusterSpec::three_by_two(Config::voltdb(), seed));
        cluster.wait_for_leader(3000).expect("initial leader");
        let servers = cluster.servers.clone();
        let nemesis = Nemesis::flicker(servers.clone());
        let schedule = nemesis.schedule(15, 9);
        let client0 = cluster.client(0);
        let mut val = 0u64;
        {
            let Cluster { neat, .. } = &mut cluster;
            replay(neat, &schedule, |engine| {
                val += 1;
                let leader = servers
                    .iter()
                    .copied()
                    .filter(|&s| engine.world.is_alive(s))
                    .find(|&s| {
                        engine.world.app(s).server().role() == neat_repro::repkv::Role::Leader
                    });
                if let Some(l) = leader {
                    let cl = client0.via(l);
                    cl.write(engine, "k", val);
                    cl.read(engine, "k");
                }
            });
        }
        cluster.neat.heal_all();
        cluster.settle(4000);
        let final_state = cluster.final_state(&["k"]);
        let violations = check_register(
            cluster.neat.history(),
            RegisterSemantics::Strong,
            &final_state,
        );
        if !violations.is_empty() {
            any_violation = true;
            break;
        }
    }
    assert!(
        any_violation,
        "the flawed profile should break somewhere in a 15-cycle storm"
    );
}
