//! Tier-1 gate: the workspace must stay clean under the determinism
//! rules enforced by `crates/lint` (see DESIGN.md). This is the same
//! scan `cargo run -p lint` performs, wired into `cargo test` so a
//! violation fails CI even when nobody runs the binary.

use std::path::Path;

use lint::{scan_source, scan_workspace, Rule};

#[test]
fn workspace_is_clean_under_determinism_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = scan_workspace(root).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "determinism violations (fix or annotate with `// lint:allow(<rule>)`):\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every `lint:allow` in the workspace must still suppress at least one
/// finding — stale directives are silent holes in the gate and get
/// deleted, not accumulated (`cargo run -p lint -- --unused-allows`).
#[test]
fn workspace_has_no_unused_allows() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint::analyze_workspace(root).expect("scan workspace");
    assert!(
        report.unused_allows.is_empty(),
        "stale lint:allow directives (delete them):\n{}",
        report
            .unused_allows
            .iter()
            .map(|u| u.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // And there are real, audited exceptions — the gate is exercising
    // the allow machinery, not running on an annotation-free tree.
    assert!(report.stats.allow_sites > 0);
    assert_eq!(report.stats.allow_sites, report.stats.allows_used);
}

/// The scenario/arm registry in `src/campaign.rs` must agree with the
/// committed golden artifacts and the arm literals in these tests —
/// e.g. `"dirty_and_stale_read/flawed"` here is itself checked against
/// the registry by the pass.
#[test]
fn registry_is_consistent_with_golden_artifacts() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint::check_registry(root);
    assert_eq!(report.scenarios, 47);
    assert_eq!(report.arms, 93);
    assert!(
        report.findings.is_empty(),
        "registry inconsistencies:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        neat_repro::campaign::arm_ids()
            .iter()
            .any(|a| a.name == "dirty_and_stale_read/flawed"),
        "the registry lost its anchor scenario"
    );
}

/// `--json` output must round-trip through `study::json`: parse the
/// rendered findings, re-render, and land on the same value.
#[test]
fn json_findings_round_trip_through_study_json() {
    let src = "\
use std::collections::HashMap;

fn bad() -> HashMap<u64, u64> {
    let t = std::time::Instant::now();
    HashMap::new()
}
";
    let findings = scan_source("crates/repkv/src/fake.rs", src);
    assert!(!findings.is_empty());
    let json = lint::findings_to_json(&findings);
    let doc = study::json::parse(&json).expect("lint --json output must parse");
    let rows = doc.as_array().expect("findings are an array");
    assert_eq!(rows.len(), findings.len());
    for (row, f) in rows.iter().zip(&findings) {
        assert_eq!(row.get("path").and_then(|v| v.as_str()), Some(f.path.as_str()));
        assert_eq!(row.get("line").and_then(|v| v.as_u64()), Some(f.line as u64));
        assert_eq!(row.get("rule").and_then(|v| v.as_str()), Some(f.rule.name()));
    }
    // Byte-level round trip: parse(render(parse(x))) == parse(x).
    use study::json::ToJson;
    let re_rendered = doc.to_json();
    let re_parsed = study::json::parse(&re_rendered).expect("re-rendered JSON must parse");
    assert_eq!(format!("{doc:?}"), format!("{re_parsed:?}"));
}

#[test]
fn seeded_violations_are_caught_with_rule_and_line() {
    let src = "\
use std::collections::HashMap;

fn bad(seed: u64) -> u64 {
    let m: HashMap<u64, u64> = HashMap::new();
    let t = std::time::Instant::now();
    let mut rng = rand::thread_rng();
    m.get(&seed).copied().unwrap()
}
";
    let findings = scan_source("crates/repkv/src/fake.rs", src);
    let hit = |rule: Rule, line: usize| {
        assert!(
            findings.iter().any(|f| f.rule == rule && f.line == line),
            "expected {rule} at line {line}, got:\n{findings:#?}"
        );
    };
    hit(Rule::HashIteration, 1);
    hit(Rule::HashIteration, 4);
    hit(Rule::WallClock, 5);
    hit(Rule::OsEntropy, 6);
    hit(Rule::UnwrapExpect, 7);
}

/// The fleet pool is the one audited place that starts OS threads. Three
/// properties keep that boundary honest: the real source carries the
/// audit annotations, the scanner genuinely sees the spawns once the
/// annotations are stripped, and the same annotated source would still be
/// rejected under any simulation-crate path.
#[test]
fn fleet_thread_spawn_sites_are_audited_and_fleet_only() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let pool = std::fs::read_to_string(root.join("crates/fleet/src/pool.rs"))
        .expect("read crates/fleet/src/pool.rs");
    assert!(
        pool.contains("lint:allow(thread-spawn)"),
        "the fleet pool lost its audit annotations"
    );

    let stripped = pool.replace("lint:allow(thread-spawn)", "lint:allow(removed)");
    let findings = scan_source("crates/fleet/src/pool.rs", &stripped);
    assert!(
        findings.iter().any(|f| f.rule == Rule::ThreadSpawn),
        "scanner no longer sees the fleet's thread spawns:\n{findings:#?}"
    );

    let smuggled = scan_source("crates/repkv/src/pool.rs", &pool);
    assert!(
        smuggled.iter().any(|f| f.rule == Rule::ThreadSpawn),
        "a simulation crate accepted thread-spawn allows — the escape \
         hatch must be fleet-only:\n{smuggled:#?}"
    );
}

/// Library crates must emit through the obs layer or returned strings;
/// stdout belongs to bin targets. The criterion shim is the one audited
/// library exception, and its escape hatch must not work from inside a
/// simulation crate.
#[test]
fn println_stays_out_of_library_code() {
    let src = "fn f() { println!(\"leak\"); }\n";
    for lib in [
        "crates/simnet/src/world.rs",
        "crates/neat/src/engine.rs",
        "crates/obs/src/recorder.rs",
        "src/campaign.rs",
    ] {
        let findings = scan_source(lib, src);
        assert!(
            findings.iter().any(|f| f.rule == Rule::PrintlnInLib),
            "println in {lib} must fire println-in-lib:\n{findings:#?}"
        );
    }
    // Bin targets own stdout.
    assert!(scan_source("crates/bench/src/bin/forensics.rs", src).is_empty());

    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let shim = std::fs::read_to_string(root.join("crates/shims/criterion/src/lib.rs"))
        .expect("read crates/shims/criterion/src/lib.rs");
    assert!(
        shim.contains("lint:allow(println-in-lib)"),
        "the criterion shim lost its audit annotations"
    );
    let smuggled = scan_source("crates/repkv/src/lib.rs", &shim);
    assert!(
        smuggled.iter().any(|f| f.rule == Rule::PrintlnInLib),
        "a simulation crate accepted println-in-lib allows — the escape \
         hatch must stay outside the simulation crates:\n{smuggled:#?}"
    );
}

#[test]
fn allow_directives_suppress_findings() {
    let src = "\
fn timed() {
    // lint:allow(wall-clock) -- bench harness measures real time
    let t = std::time::Instant::now();
}
";
    let findings = scan_source("crates/repkv/src/fake.rs", src);
    assert!(findings.is_empty(), "allow directive ignored:\n{findings:#?}");
}
