//! Tier-1 gate: the workspace must stay clean under the determinism
//! rules enforced by `crates/lint` (see DESIGN.md). This is the same
//! scan `cargo run -p lint` performs, wired into `cargo test` so a
//! violation fails CI even when nobody runs the binary.

use std::path::Path;

use lint::{scan_source, scan_workspace, Rule};

#[test]
fn workspace_is_clean_under_determinism_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = scan_workspace(root).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "determinism violations (fix or annotate with `// lint:allow(<rule>)`):\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_violations_are_caught_with_rule_and_line() {
    let src = "\
use std::collections::HashMap;

fn bad(seed: u64) -> u64 {
    let m: HashMap<u64, u64> = HashMap::new();
    let t = std::time::Instant::now();
    let mut rng = rand::thread_rng();
    m.get(&seed).copied().unwrap()
}
";
    let findings = scan_source("crates/repkv/src/fake.rs", src);
    let hit = |rule: Rule, line: usize| {
        assert!(
            findings.iter().any(|f| f.rule == rule && f.line == line),
            "expected {rule} at line {line}, got:\n{findings:#?}"
        );
    };
    hit(Rule::HashIteration, 1);
    hit(Rule::HashIteration, 4);
    hit(Rule::WallClock, 5);
    hit(Rule::OsEntropy, 6);
    hit(Rule::UnwrapExpect, 7);
}

#[test]
fn allow_directives_suppress_findings() {
    let src = "\
fn timed() {
    // lint:allow(wall-clock) -- bench harness measures real time
    let t = std::time::Instant::now();
}
";
    let findings = scan_source("crates/repkv/src/fake.rs", src);
    assert!(findings.is_empty(), "allow directive ignored:\n{findings:#?}");
}
