//! Tier-1 gate: the workspace must stay clean under the determinism
//! rules enforced by `crates/lint` (see DESIGN.md). This is the same
//! scan `cargo run -p lint` performs, wired into `cargo test` so a
//! violation fails CI even when nobody runs the binary.

use std::path::Path;

use lint::{scan_source, scan_workspace, Rule};

#[test]
fn workspace_is_clean_under_determinism_rules() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = scan_workspace(root).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "determinism violations (fix or annotate with `// lint:allow(<rule>)`):\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_violations_are_caught_with_rule_and_line() {
    let src = "\
use std::collections::HashMap;

fn bad(seed: u64) -> u64 {
    let m: HashMap<u64, u64> = HashMap::new();
    let t = std::time::Instant::now();
    let mut rng = rand::thread_rng();
    m.get(&seed).copied().unwrap()
}
";
    let findings = scan_source("crates/repkv/src/fake.rs", src);
    let hit = |rule: Rule, line: usize| {
        assert!(
            findings.iter().any(|f| f.rule == rule && f.line == line),
            "expected {rule} at line {line}, got:\n{findings:#?}"
        );
    };
    hit(Rule::HashIteration, 1);
    hit(Rule::HashIteration, 4);
    hit(Rule::WallClock, 5);
    hit(Rule::OsEntropy, 6);
    hit(Rule::UnwrapExpect, 7);
}

/// The fleet pool is the one audited place that starts OS threads. Three
/// properties keep that boundary honest: the real source carries the
/// audit annotations, the scanner genuinely sees the spawns once the
/// annotations are stripped, and the same annotated source would still be
/// rejected under any simulation-crate path.
#[test]
fn fleet_thread_spawn_sites_are_audited_and_fleet_only() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let pool = std::fs::read_to_string(root.join("crates/fleet/src/pool.rs"))
        .expect("read crates/fleet/src/pool.rs");
    assert!(
        pool.contains("lint:allow(thread-spawn)"),
        "the fleet pool lost its audit annotations"
    );

    let stripped = pool.replace("lint:allow(thread-spawn)", "lint:allow(removed)");
    let findings = scan_source("crates/fleet/src/pool.rs", &stripped);
    assert!(
        findings.iter().any(|f| f.rule == Rule::ThreadSpawn),
        "scanner no longer sees the fleet's thread spawns:\n{findings:#?}"
    );

    let smuggled = scan_source("crates/repkv/src/pool.rs", &pool);
    assert!(
        smuggled.iter().any(|f| f.rule == Rule::ThreadSpawn),
        "a simulation crate accepted thread-spawn allows — the escape \
         hatch must be fleet-only:\n{smuggled:#?}"
    );
}

/// Library crates must emit through the obs layer or returned strings;
/// stdout belongs to bin targets. The criterion shim is the one audited
/// library exception, and its escape hatch must not work from inside a
/// simulation crate.
#[test]
fn println_stays_out_of_library_code() {
    let src = "fn f() { println!(\"leak\"); }\n";
    for lib in [
        "crates/simnet/src/world.rs",
        "crates/neat/src/engine.rs",
        "crates/obs/src/recorder.rs",
        "src/campaign.rs",
    ] {
        let findings = scan_source(lib, src);
        assert!(
            findings.iter().any(|f| f.rule == Rule::PrintlnInLib),
            "println in {lib} must fire println-in-lib:\n{findings:#?}"
        );
    }
    // Bin targets own stdout.
    assert!(scan_source("crates/bench/src/bin/forensics.rs", src).is_empty());

    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let shim = std::fs::read_to_string(root.join("crates/shims/criterion/src/lib.rs"))
        .expect("read crates/shims/criterion/src/lib.rs");
    assert!(
        shim.contains("lint:allow(println-in-lib)"),
        "the criterion shim lost its audit annotations"
    );
    let smuggled = scan_source("crates/repkv/src/lib.rs", &shim);
    assert!(
        smuggled.iter().any(|f| f.rule == Rule::PrintlnInLib),
        "a simulation crate accepted println-in-lib allows — the escape \
         hatch must stay outside the simulation crates:\n{smuggled:#?}"
    );
}

#[test]
fn allow_directives_suppress_findings() {
    let src = "\
fn timed() {
    // lint:allow(wall-clock) -- bench harness measures real time
    let t = std::time::Instant::now();
}
";
    let findings = scan_source("crates/repkv/src/fake.rs", src);
    assert!(findings.is_empty(), "allow directive ignored:\n{findings:#?}");
}
