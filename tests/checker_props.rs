//! Property tests for the NEAT checkers: soundness (legal executions are
//! never flagged) and sensitivity (injected corruptions are flagged).

use std::collections::BTreeMap;

use neat_repro::neat::{
    checkers::{
        check_counter, check_linearizable_register, check_mutex, check_queue, check_register,
        QueueExpectation, RegisterSemantics,
    },
    History, Op, OpRecord, Outcome,
};
use proptest::prelude::*;
use simnet::NodeId;

/// A reference single-copy register that executes a random op sequence
/// sequentially and produces a (by construction legal) history.
fn legal_register_history(ops: &[(u8, u64)]) -> (History, BTreeMap<String, Option<u64>>) {
    let mut h = History::new();
    let mut state: Option<u64> = None;
    let mut t = 0u64;
    for (i, &(kind, val)) in ops.iter().enumerate() {
        let start = t;
        t += 2;
        let end = t;
        t += 1;
        let client = NodeId(i % 2);
        match kind % 3 {
            0 => {
                // Unique values so reads identify their writer.
                let v = (i as u64) << 16 | (val & 0xffff);
                state = Some(v);
                h.push(OpRecord {
                    client,
                    op: Op::Write { key: "k".into(), val: v },
                    outcome: Outcome::Ok(None),
                    start,
                    end,
                });
            }
            1 => {
                h.push(OpRecord {
                    client,
                    op: Op::Read { key: "k".into() },
                    outcome: Outcome::Ok(state),
                    start,
                    end,
                });
            }
            _ => {
                state = None;
                h.push(OpRecord {
                    client,
                    op: Op::Delete { key: "k".into() },
                    outcome: Outcome::Ok(None),
                    start,
                    end,
                });
            }
        }
    }
    let mut fin = BTreeMap::new();
    fin.insert("k".to_string(), state);
    (h, fin)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential single-copy executions never trigger the register checker
    /// nor the linearizability checker.
    #[test]
    fn register_checker_sound(ops in proptest::collection::vec((0u8..3, 0u64..100), 0..14)) {
        let (h, fin) = legal_register_history(&ops);
        let v = check_register(&h, RegisterSemantics::Strong, &fin);
        prop_assert!(v.is_empty(), "{v:?}\n{}", h.render());
        let lin = check_linearizable_register(&h, "k", None);
        prop_assert!(lin.is_empty(), "{lin:?}\n{}", h.render());
    }

    /// Dropping an acknowledged final write from the final state is always
    /// detected as data loss (or reappearance when the drop exposes a
    /// deleted value).
    #[test]
    fn register_checker_detects_lost_final_write(
        ops in proptest::collection::vec((0u8..3, 0u64..100), 0..10),
        val in 0u64..100,
    ) {
        let (mut h, _) = legal_register_history(&ops);
        let t0 = 1000;
        h.push(OpRecord {
            client: NodeId(0),
            op: Op::Write { key: "k".into(), val: 1 << 40 | val },
            outcome: Outcome::Ok(None),
            start: t0,
            end: t0 + 1,
        });
        // Final state pretends that write never happened.
        let mut fin = BTreeMap::new();
        fin.insert("k".to_string(), None::<u64>);
        let v = check_register(&h, RegisterSemantics::Strong, &fin);
        prop_assert!(!v.is_empty(), "loss not detected:\n{}", h.render());
    }

    /// A legal mutex history (holders never overlap) passes; adding an
    /// overlapping acquisition is flagged.
    #[test]
    fn mutex_checker_sound_and_sensitive(n in 1usize..8) {
        let mut h = History::new();
        let mut t = 0;
        for i in 0..n {
            h.push(OpRecord {
                client: NodeId(i % 3),
                op: Op::Acquire { key: "l".into() },
                outcome: Outcome::Ok(None),
                start: t,
                end: t + 1,
            });
            h.push(OpRecord {
                client: NodeId(i % 3),
                op: Op::Release { key: "l".into() },
                outcome: Outcome::Ok(None),
                start: t + 2,
                end: t + 3,
            });
            t += 10;
        }
        prop_assert!(check_mutex(&h, "l").is_empty());
        // Inject a second holder inside the first hold window.
        h.push(OpRecord {
            client: NodeId(7),
            op: Op::Acquire { key: "l".into() },
            outcome: Outcome::Ok(None),
            start: 1,
            end: 2,
        });
        h.push(OpRecord {
            client: NodeId(7),
            op: Op::Release { key: "l".into() },
            outcome: Outcome::Ok(None),
            start: 2,
            end: 3,
        });
        prop_assert!(!check_mutex(&h, "l").is_empty());
    }

    /// FIFO queue executions pass; a duplicated consumption is flagged.
    #[test]
    fn queue_checker_sound_and_sensitive(vals in proptest::collection::vec(0u64..1000, 1..12)) {
        let mut uniq = vals.clone();
        uniq.sort();
        uniq.dedup();
        let mut h = History::new();
        let mut t = 0;
        for v in &uniq {
            h.push(OpRecord {
                client: NodeId(0),
                op: Op::Enqueue { key: "q".into(), val: *v },
                outcome: Outcome::Ok(None),
                start: t,
                end: t + 1,
            });
            t += 2;
        }
        let consumed: Vec<u64> = uniq.clone();
        let exp = [QueueExpectation { key: "q".into(), drained: Some(consumed) }];
        prop_assert!(check_queue(&h, &exp).is_empty());

        let mut dup = uniq.clone();
        dup.push(uniq[0]);
        let exp = [QueueExpectation { key: "q".into(), drained: Some(dup) }];
        prop_assert!(!check_queue(&h, &exp).is_empty());
    }

    /// Counter checker: the exact sum passes; off-by-anything fails in the
    /// right direction.
    #[test]
    fn counter_checker_exactness(incrs in proptest::collection::vec(1u64..50, 0..10)) {
        let mut h = History::new();
        let mut t = 0;
        for by in &incrs {
            h.push(OpRecord {
                client: NodeId(0),
                op: Op::Incr { key: "c".into(), by: *by },
                outcome: Outcome::Ok(None),
                start: t,
                end: t + 1,
            });
            t += 2;
        }
        let sum: u64 = incrs.iter().sum();
        prop_assert!(check_counter(&h, "c", 0, sum).is_empty());
        if sum > 0 {
            prop_assert!(!check_counter(&h, "c", 0, sum - 1).is_empty());
        }
        prop_assert!(!check_counter(&h, "c", 0, sum + 1).is_empty());
    }
}

/// Builds an arbitrary (possibly broken) single-key history from raw parts.
fn arbitrary_history(parts: &[(u8, u8, u64, u64)]) -> History {
    let mut h = History::new();
    let mut t = 0u64;
    for &(kind, outcome, a, b) in parts {
        let start = t;
        t += 1 + (a % 4);
        let end = t;
        t += 1;
        let op = match kind % 2 {
            0 => Op::Write {
                key: "k".into(),
                val: b % 5,
            },
            _ => Op::Read { key: "k".into() },
        };
        let outcome = match (kind % 2, outcome % 3) {
            (0, 0) => Outcome::Ok(None),
            (0, 1) => Outcome::Fail,
            (0, _) => Outcome::Timeout,
            (1, 0) => Outcome::Ok(if b % 6 == 5 { None } else { Some(b % 5) }),
            (1, _) => Outcome::Timeout,
            _ => unreachable!(),
        };
        h.push(OpRecord {
            client: NodeId((a % 2) as usize),
            op,
            outcome,
            start,
            end,
        });
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Differential soundness: on single-key write/read histories, a dirty
    /// or stale read reported by the register checker implies the history
    /// is NOT linearizable. (The register checker is the fast, targeted
    /// classifier; the linearizability checker is the ground truth.)
    ///
    /// Note: values repeat here (unlike NEAT's unique-value histories), so
    /// the register checker may legally *miss* violations; it must never
    /// flag a linearizable history.
    #[test]
    fn register_read_violations_imply_non_linearizable(
        parts in proptest::collection::vec((0u8..2, 0u8..3, 0u64..8, 0u64..8), 0..9),
    ) {
        let h = arbitrary_history(&parts);
        // Values are not unique in arbitrary histories, which the dirty-read
        // rule assumes; restrict the implication to histories where every
        // written value is distinct.
        let mut vals: Vec<u64> = h
            .records()
            .iter()
            .filter_map(|r| match &r.op {
                Op::Write { val, .. } => Some(*val),
                _ => None,
            })
            .collect();
        let n = vals.len();
        vals.sort();
        vals.dedup();
        if vals.len() != n {
            return Ok(());
        }
        let violations = check_register(&h, RegisterSemantics::Strong, &BTreeMap::new());
        let read_violations = violations
            .iter()
            .any(|v| v.details.contains("read"));
        if read_violations {
            let lin = check_linearizable_register(&h, "k", None);
            prop_assert!(
                !lin.is_empty(),
                "register checker flagged a linearizable history:\n{}\n{violations:?}",
                h.render()
            );
        }
    }
}
