//! Tier-1 gate: every registered scenario arm must be reproducible —
//! running it twice with the same seed must yield byte-identical
//! execution fingerprints. This is the `cargo run -p lint -- --audit`
//! check wired into `cargo test`.

use neat_repro::campaign::registry;

#[test]
fn every_scenario_arm_double_runs_identically() {
    let seed = 42;
    let mut arms = 0usize;
    for spec in registry() {
        let mut check = |arm: &str, run: &neat_repro::campaign::Runner| {
            arms += 1;
            let name = format!("{}/{arm}", spec.name);
            if let Err(d) = neat::audit::audit_double_run(&name, seed, |s| run(s, true).fingerprint)
            {
                panic!("scenario diverged across same-seed runs: {d}");
            }
        };
        check("flawed", &spec.flawed);
        if let Some(fixed) = &spec.fixed {
            check("fixed", fixed);
        }
    }
    assert!(arms >= 26, "registry shrank: only {arms} arms audited");
}
