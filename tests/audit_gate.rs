//! Tier-1 gate: every registered scenario arm must be reproducible —
//! running it twice with the same seed must yield byte-identical
//! execution fingerprints. This is the `cargo run -p lint -- --audit`
//! check wired into `cargo test`, sharded across the fleet pool the same
//! way `lint --audit --jobs K` runs it (the outcomes are index-ordered,
//! so the worker count cannot change what this test sees).

#[test]
fn every_scenario_arm_double_runs_identically() {
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
    let outcomes = fleet::campaign::audit(42, jobs);
    let failures: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.is_ok())
        .map(|o| o.render())
        .collect();
    assert!(
        failures.is_empty(),
        "scenarios diverged across same-seed runs:\n{}",
        failures.join("\n")
    );
    assert!(
        outcomes.len() >= 70,
        "registry shrank: only {} arms audited",
        outcomes.len()
    );
    // The gray-failure arms (flapping / gray-simplex / gray-partial
    // degradations) are part of the audited registry: double-run identity
    // covers degraded-link RNG draws too.
    let gray = neat_repro::campaign::registry()
        .iter()
        .filter(|s| s.partition.starts_with("gray") || s.partition == "flapping")
        .count();
    assert!(gray >= 6, "only {gray} gray scenarios registered");
}
