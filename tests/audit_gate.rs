//! Tier-1 gate: every registered scenario arm must be reproducible —
//! running it twice with the same seed must yield byte-identical
//! execution fingerprints. This is the `cargo run -p lint -- --audit`
//! check wired into `cargo test`, sharded across the fleet pool the same
//! way `lint --audit --jobs K` runs it (the outcomes are index-ordered,
//! so the worker count cannot change what this test sees).

#[test]
fn every_scenario_arm_double_runs_identically() {
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
    let outcomes = fleet::campaign::audit(42, jobs);
    let failures: Vec<String> = outcomes
        .iter()
        .filter(|o| !o.is_ok())
        .map(|o| o.render())
        .collect();
    assert!(
        failures.is_empty(),
        "scenarios diverged across same-seed runs:\n{}",
        failures.join("\n")
    );
    assert!(
        outcomes.len() >= 93,
        "registry shrank: only {} arms audited",
        outcomes.len()
    );
    // The gray-failure arms (flapping / gray-simplex / gray-partial
    // degradations) are part of the audited registry: double-run identity
    // covers degraded-link RNG draws too.
    let gray = neat_repro::campaign::registry()
        .iter()
        .filter(|s| s.partition.starts_with("gray") || s.partition == "flapping")
        .count();
    assert!(gray >= 6, "only {gray} gray scenarios registered");
    // So are the load-driven arms: double-run identity covers the
    // workload driver's RNG (arrival gaps, key sampling, op mix) too.
    let load = neat_repro::campaign::registry()
        .iter()
        .filter(|s| s.partition.starts_with("load"))
        .count();
    assert!(load >= 5, "only {load} load scenarios registered");
    // And the delta-minimized explorer regressions: replaying a ddmin'd
    // schedule must be as reproducible as any hand-written scenario.
    let explored = neat_repro::campaign::registry()
        .iter()
        .filter(|s| s.partition.starts_with("explored"))
        .count();
    assert!(explored >= 2, "only {explored} explored regressions registered");
}

/// The audit's streamed FNV-1a hash must equal the hash of the fully
/// rendered fingerprint for every arm — the end-to-end proof that the
/// zero-allocation fast path hashes exactly the bytes the rendered
/// fingerprint contains, and therefore that every committed
/// `audit <arm>: ok <hash>` line survives the streaming rewrite unchanged.
#[test]
fn streamed_audit_hashes_equal_rendered_fingerprint_hashes() {
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
    let outcomes = fleet::campaign::audit(42, jobs);
    let rendered = fleet::campaign::fingerprints(42, jobs);
    assert_eq!(outcomes.len(), rendered.len());
    for (o, (name, fingerprint)) in outcomes.iter().zip(rendered.iter()) {
        assert_eq!(&o.name, name, "audit and fingerprint sweeps disagree on arm order");
        assert_eq!(
            o.result,
            Ok(neat::audit::trace_hash(fingerprint)),
            "{name}: streamed audit hash disagrees with the rendered fingerprint bytes"
        );
    }
}
