//! Tier-1 perf gate: deterministic performance proxies, no wall clock.
//!
//! Wall-clock timings cannot be asserted in CI (they depend on the
//! machine), so this gate pins the two proxies that are pure functions of
//! the seed: the *allocation count* of a run under the counting global
//! allocator, and the *event volume* of the campaign. The headline
//! property of the streaming fingerprint pipeline — the audit fast path
//! (`RunMode::Hash`) adds **zero** allocations over a plain traced run —
//! is asserted per arm, across every arm in the registry.
//!
//! The counts are recomputed with the exact logic that generated the
//! committed `BENCH_perf.json` (`bench::perf_bench::deterministic_counts`),
//! then diffed against the artifact, so a hot-path regression both fails
//! here and shows up as a stale artifact.

use neat_repro::campaign::{self, RunMode};
use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};

// Route this test binary's heap through the counting allocator; the
// counters are thread-local, so the parallel test harness cannot bleed
// counts across tests.
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

#[test]
fn the_counting_allocator_is_live() {
    assert!(
        alloc_counter::is_counting(),
        "perf_gate.rs must install CountingAlloc as #[global_allocator]"
    );
}

#[test]
fn stream_hash_allocates_nothing() {
    // Warm one run so lazy one-time setup cannot be billed to the
    // measured call, then hash a value with plenty of nested structure.
    let arm = &campaign::arm_ids()[0];
    let artifacts = campaign::run_arm(arm, 8, RunMode::Trace);
    let _ = neat::audit::stream_hash(&artifacts.timeline);
    let (_, allocs) =
        alloc_counter::count_allocations(|| neat::audit::stream_hash(&artifacts.timeline));
    assert_eq!(
        allocs, 0,
        "stream_hash must fold Debug output straight into FNV-1a without materializing it"
    );
}

#[test]
fn fingerprint_fast_path_allocates_nothing_across_every_arm() {
    let d = bench::perf_bench::deterministic_counts(8);
    assert!(d.counting_allocator, "allocator probe failed");
    assert!(d.arms >= 70, "registry shrank: only {} arms counted", d.arms);
    assert_eq!(
        d.fingerprint_alloc_delta_total, 0,
        "a Hash-mode run allocated more than the identical Trace-mode run: \
         the streaming fingerprint fast path regressed"
    );
    // The rendered fingerprint is the cost the fast path avoids — if
    // rendering were free too, this gate would be testing nothing.
    assert!(
        d.render_allocs_sample > 0,
        "Render mode allocated nothing extra; the zero-delta assertion above is vacuous"
    );
}

/// Ping-pong forever between two nodes: every step is one delivery.
struct Pinger;
impl Application for Pinger {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if ctx.id() == NodeId(0) {
            ctx.send(NodeId(1), 0);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        ctx.send(from, msg + 1);
    }
    fn on_timer(&mut self, _: &mut Ctx<'_, u64>, _: TimerId, _: u64) {}
}

/// Keeps eight short timers armed per node, like the `timer_storm` micro.
struct Storm;
impl Application for Storm {
    type Msg = ();
    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        for i in 0..8 {
            ctx.set_timer(1 + i, i);
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerId, tag: u64) {
        ctx.set_timer(1 + (tag % 7), tag);
    }
}

#[test]
fn steady_state_delivery_path_allocates_nothing() {
    // After a short warm-up (arena slots recycled, heap and action buffer
    // at capacity, link matrix grown), ping-pong delivery must run
    // allocation-free: pop reuses the arena slot its push freed.
    let mut w = WorldBuilder::new(1).event_capacity(16).build(2, |_| Pinger);
    for _ in 0..100 {
        w.step();
    }
    let (_, allocs) = alloc_counter::count_allocations(|| {
        for _ in 0..10_000 {
            w.step();
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state message delivery allocated: the arena/heap hot path regressed"
    );
}

#[test]
fn steady_state_timer_path_allocates_nothing() {
    // Wheel buckets are lazily grown Vecs, so the measured window must
    // only touch buckets the warm-up already gave capacity. Delays here
    // are <= 7 ms, which means: level-0 and level-1 slots all recur
    // within one 4096 ms (level-2) rotation, but each 4096 boundary
    // crossing parks timers in a *fresh* level-2 bucket. Warm one full
    // rotation, stop right after a boundary, and keep the window well
    // short of the next one. Virtual time is a pure function of the
    // seed, so the window bound below is deterministic, not a timing.
    let mut w = WorldBuilder::new(1).event_capacity(64).build(4, |_| Storm);
    // Three rotations, not one: bucket capacities keep creeping up for a
    // while because each rotation packs slightly different timer batches
    // into the same slots.
    while w.now() < 3 * (1 << 12) {
        assert!(w.step(), "timer storm ran dry during warm-up");
    }
    let (_, allocs) = alloc_counter::count_allocations(|| {
        for _ in 0..5_000 {
            w.step();
        }
    });
    assert!(
        w.now() < 4 * (1 << 12) - 8,
        "measurement window reached the next level-2 boundary at t={}; shrink it",
        w.now()
    );
    assert_eq!(
        allocs, 0,
        "steady-state timer fire/re-arm allocated: the wheel hot path regressed"
    );
}

#[test]
fn event_volume_matches_the_committed_perf_artifact() {
    let d = bench::perf_bench::deterministic_counts(8);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_perf.json");
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed artifact {path}: {e}"));
    for needle in [
        format!("\"events_simulated_total\": {}", d.events_simulated_total),
        format!("\"arms\": {}", d.arms),
        "\"fingerprint_alloc_delta_total\": 0".to_string(),
        "\"counting_allocator\": true".to_string(),
    ] {
        assert!(
            json.contains(&needle),
            "BENCH_perf.json lacks `{needle}`; refresh with \
             `cargo run --release -p bench --bin perf`"
        );
    }
}
