//! Tier-1 gate: the committed output artifacts must match what the
//! binaries produce today. Each artifact is regenerated in-process (the
//! binaries are thin wrappers over the same library calls) and diffed
//! byte-for-byte, so a behaviour change that forgets to refresh the
//! checked-in files fails CI with the first diverging line.

use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(name: &str) -> String {
    let path = root().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read committed artifact {}: {e}", path.display()))
}

fn assert_fresh(name: &str, committed: &str, regenerated: &str, regen_cmd: &str) {
    if committed == regenerated {
        return;
    }
    let first_diff = committed
        .lines()
        .zip(regenerated.lines())
        .position(|(a, b)| a != b)
        .map(|i| {
            let a = committed.lines().nth(i).unwrap_or("");
            let b = regenerated.lines().nth(i).unwrap_or("");
            format!("line {}: committed `{a}` vs regenerated `{b}`", i + 1)
        })
        .unwrap_or_else(|| {
            format!(
                "line counts differ: committed {} vs regenerated {}",
                committed.lines().count(),
                regenerated.lines().count()
            )
        });
    panic!("{name} is stale ({first_diff}); refresh with `{regen_cmd}`");
}

#[test]
fn campaign_output_is_fresh() {
    assert_fresh(
        "campaign_output.txt",
        &read("campaign_output.txt"),
        &bench::reports::campaign_report(),
        "cargo run --release -p bench --bin campaign > campaign_output.txt",
    );
}

#[test]
fn tables_output_is_fresh() {
    assert_fresh(
        "tables_output.txt",
        &read("tables_output.txt"),
        &bench::reports::tables_report().expect("tables render"),
        "cargo run --release -p bench --bin tables > tables_output.txt",
    );
}

#[test]
fn figures_output_is_fresh() {
    assert_fresh(
        "figures_output.txt",
        &read("figures_output.txt"),
        &bench::reports::figures_report(),
        "cargo run --release -p bench --bin figures > figures_output.txt",
    );
}

#[test]
fn forensics_output_is_fresh() {
    assert_fresh(
        "forensics_output.txt",
        &read("forensics_output.txt"),
        &bench::reports::forensics_report(),
        "cargo run --release -p bench --bin forensics",
    );
}

/// Unlike `BENCH_fleet.json`, the forensics counters carry no wall-clock
/// numbers — the artifact is a pure function of the seed, so it gets the
/// full byte-for-byte golden treatment.
#[test]
fn forensics_bench_artifact_is_fresh() {
    assert_fresh(
        "BENCH_forensics.json",
        &read("BENCH_forensics.json"),
        &bench::reports::forensics_machine_json(),
        "cargo run --release -p bench --bin forensics",
    );
}

/// Like the forensics counters, the gray-failure report is a pure
/// function of the seed: byte-for-byte golden.
#[test]
fn gray_bench_artifact_is_fresh() {
    assert_fresh(
        "BENCH_gray.json",
        &read("BENCH_gray.json"),
        &bench::reports::gray_machine_json(),
        "cargo run --release -p bench --bin gray",
    );
}

/// Every violation the campaign detects at seed 8 must be explained by a
/// forensics timeline: same scenario set, same verdict count.
#[test]
fn forensics_explains_every_campaign_violation() {
    let text = read("forensics_output.txt");
    for s in neat_repro::campaign::run_all_scenarios(8) {
        assert!(
            text.contains(&format!("== {} — {} ({}) ==", s.name, s.system, s.reference)),
            "no forensics block for scenario {}",
            s.name
        );
        if !s.flawed.is_empty() {
            let block = text
                .split("\n== ")
                .find(|b| b.starts_with(&format!("{} — ", s.name)))
                .unwrap_or_else(|| panic!("block for {} not found", s.name));
            assert!(
                !block.contains("no violation detected"),
                "campaign detects a violation in {} but forensics reports none",
                s.name
            );
        }
    }
}

/// The fleet bench artifact records wall-clock timings, which no test can
/// pin — but its *shape* must track the registry: scenario/arm counts, the
/// jobs ladder, and the schema keys the README points at.
#[test]
fn fleet_bench_artifact_matches_the_registry_shape() {
    let json = read("BENCH_fleet.json");
    let expect = |needle: String| {
        assert!(
            json.contains(&needle),
            "BENCH_fleet.json lacks `{needle}`; refresh with \
             `cargo run --release -p bench --bin fleet_bench`"
        );
    };
    expect(format!(
        "\"scenarios\": {}",
        neat_repro::campaign::scenario_count()
    ));
    expect(format!("\"arms\": {}", neat_repro::campaign::arm_ids().len()));
    for key in [
        "\"bench\": \"fleet\"",
        "\"machine_workers\": ",
        "\"wall_clock_ns\": ",
        "\"speedup\": ",
        "\"byte_identical\": true",
        "\"jobs\": 4",
        "\"identical\": true",
    ] {
        expect(key.to_string());
    }
    assert!(
        !json.contains("\"byte_identical\": false"),
        "a recorded fleet run diverged from serial — that is a determinism bug"
    );
    // Work-stealing grid counters for the top (8-job) campaign rung.
    // `workers`, `batch`, and `batches` are pure functions of
    // `(jobs, scenarios x seeds)`, so their exact values are pinned; the
    // `steals` count depends on OS scheduling and only its presence is.
    let items = neat_repro::campaign::scenario_count() * 8;
    let batch = (items / (8 * 4)).clamp(1, 64);
    let batches: usize = (0..8)
        .map(|w| {
            let chunk = (w + 1) * items / 8 - w * items / 8;
            chunk.div_ceil(batch)
        })
        .sum();
    expect("\"grid\": {".to_string());
    expect("\"workers\": 8".to_string());
    expect(format!("\"batch\": {batch}"));
    expect(format!("\"batches\": {batches}"));
    expect("\"steals\": ".to_string());
    // The high-resolution §5.4 detection curve: 32 exploration seeds, one
    // probability point per trial budget. The curve is a pure function of
    // the seed list; pin its shape anchors (monotone 0→1 envelope).
    expect("\"detection_curve\": {".to_string());
    expect("\"sweep_seeds\": 32".to_string());
    expect("\"trials\": 40".to_string());
    expect("\"points\": [".to_string());
    expect("1.000".to_string());
}

#[test]
fn perf_bench_artifact_matches_the_registry_shape() {
    let json = read("BENCH_perf.json");
    let expect = |needle: String| {
        assert!(
            json.contains(&needle),
            "BENCH_perf.json lacks `{needle}`; refresh with \
             `cargo run --release -p bench --bin perf`"
        );
    };
    expect(format!("\"arms\": {}", neat_repro::campaign::arm_ids().len()));
    for key in [
        "\"bench\": \"perf\"",
        "\"label\": \"simnet/ping_pong/100000\"",
        "\"events_per_sec\": ",
        "\"campaign_wall_clock_ns\": ",
        "\"streamed_wall_clock_ns\": ",
        "\"rendered_wall_clock_ns\": ",
        "\"counting_allocator\": true",
        "\"fingerprint_alloc_delta_total\": 0",
        "\"events_simulated_total\": ",
    ] {
        expect(key.to_string());
    }
}

/// The workload bench runs a million-op ladder, too heavy to regenerate
/// inside a debug test — but its *shape* must track the registry: every
/// load-driven scenario present with both arms' verdicts, the op and
/// latency keys the README points at, and a clean determinism verdict on
/// the sharded open-loop ladder.
#[test]
fn workload_bench_artifact_matches_the_registry_shape() {
    let json = read("BENCH_workload.json");
    let expect = |needle: String| {
        assert!(
            json.contains(&needle),
            "BENCH_workload.json lacks `{needle}`; refresh with \
             `cargo run --release -p bench --bin workload_bench`"
        );
    };
    let load: Vec<_> = neat_repro::campaign::registry()
        .into_iter()
        .filter(|s| s.partition.starts_with("load"))
        .collect();
    assert!(load.len() >= 5, "only {} load scenarios registered", load.len());
    expect(format!("\"load_scenarios\": {}", load.len()));
    for s in &load {
        expect(format!("\"{}\"", s.name));
    }
    for key in [
        "\"bench\": \"workload\"",
        "\"seed\": 8",
        "\"ops\": 1000000",
        "\"shards\": 8",
        "\"byte_identical\": true",
        "\"p50\": ",
        "\"p99\": ",
        "\"p999\": ",
        "\"load_samples\": ",
        "\"issued=",
    ] {
        expect(key.to_string());
    }
    assert!(
        !json.contains("\"byte_identical\": false"),
        "the sharded ladder diverged across jobs rungs — that is a determinism bug"
    );
}

/// The exploration bench is seed-pure virtual time end to end — strategy
/// comparison, sharded merge, and minimized-regression replays — so the
/// artifact gets the full byte-for-byte golden treatment.
#[test]
fn explore_bench_artifact_is_fresh() {
    assert_fresh(
        "BENCH_explore.json",
        &read("BENCH_explore.json"),
        &bench::reports::explore_machine_json(),
        "cargo run --release -p bench --bin explore_bench",
    );
}

/// The lint-scan counters are a pure function of the committed source
/// tree (no wall-clock numbers), so the artifact gets the full
/// byte-for-byte golden treatment: any rule, resolver, or annotation
/// change shows up as a counter diff here.
#[test]
fn lint_bench_artifact_is_fresh() {
    assert_fresh(
        "BENCH_lint.json",
        &read("BENCH_lint.json"),
        &bench::reports::lint_machine_json(),
        "cargo run --release -p bench --bin lint_bench",
    );
}

/// Guard the guard: golden tests are only trustworthy if the artifacts
/// they check are the ones the repo actually commits.
#[test]
fn all_golden_artifacts_exist() {
    for name in [
        "campaign_output.txt",
        "tables_output.txt",
        "figures_output.txt",
        "forensics_output.txt",
        "BENCH_explore.json",
        "BENCH_fleet.json",
        "BENCH_forensics.json",
        "BENCH_gray.json",
        "BENCH_lint.json",
        "BENCH_perf.json",
        "BENCH_workload.json",
    ] {
        assert!(
            Path::new(&root().join(name)).exists(),
            "missing committed artifact {name}"
        );
    }
}
