//! Tier-1 gate: the documented crates must build docs warning-free.
//!
//! `crates/obs` is `#![deny(missing_docs)]`, and the public surfaces of
//! `simnet::trace` and `neat::audit` carry the same module-level deny —
//! but those attributes only catch *missing* docs. This gate runs
//! `cargo doc --no-deps` with `RUSTDOCFLAGS="-D warnings"` over the
//! forensics-layer crates, so broken intra-doc links, bad code fences,
//! and every other rustdoc lint fail `cargo test` instead of rotting
//! silently.

use std::path::Path;
use std::process::Command;

/// The gray-failure modules were born `#![deny(missing_docs)]`; keep it
/// that way — `cargo doc -D warnings` alone would not notice the deny
/// being quietly dropped.
#[test]
fn gray_failure_modules_deny_missing_docs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for module in [
        "crates/neat/src/gray.rs",
        "crates/neat/src/retry.rs",
        "crates/neat/src/explore.rs",
        "crates/neat/src/explore/schedule.rs",
        "crates/neat/src/explore/coverage.rs",
        "crates/neat/src/explore/minimize.rs",
    ] {
        let src = std::fs::read_to_string(root.join(module))
            .unwrap_or_else(|e| panic!("cannot read {module}: {e}"));
        assert!(
            src.contains("#![deny(missing_docs)]"),
            "{module} lost its #![deny(missing_docs)] attribute"
        );
    }
}

#[test]
fn forensics_layer_docs_build_without_warnings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    // Test harness, not simulation code: finding the cargo that spawned
    // us is exactly what the env-read rule's test carve-out is for.
    #[allow(clippy::disallowed_methods)]
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let out = Command::new(cargo)
        .current_dir(root)
        .args(["doc", "--no-deps", "-q", "-p", "obs", "-p", "simnet", "-p", "neat"])
        .env("RUSTDOCFLAGS", "-D warnings")
        .output()
        .expect("spawn cargo doc");
    assert!(
        out.status.success(),
        "`cargo doc --no-deps` failed under RUSTDOCFLAGS=\"-D warnings\":\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
