//! Property tests for the simulator substrate: determinism, FIFO links,
//! and partition semantics under arbitrary fault schedules.

use proptest::prelude::*;
use simnet::{
    net::bidirectional_pairs, Application, Ctx, DegradeRule, LinkConfig, NodeId, TimerId,
    WorldBuilder,
};

/// Records every delivery in order; replies to even payloads.
#[derive(Default)]
struct Recorder {
    seen: Vec<(NodeId, u64)>,
}

impl Application for Recorder {
    type Msg = u64;
    fn on_start(&mut self, _ctx: &mut Ctx<'_, u64>) {}
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        self.seen.push((from, msg));
        if msg.is_multiple_of(2) {
            ctx.send(from, msg + 1);
        }
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _t: TimerId, _tag: u64) {}
}

/// One abstract action of a random schedule.
#[derive(Clone, Debug)]
enum Act {
    Send { from: u8, to: u8, val: u64 },
    Partition { a: u8, b: u8 },
    /// Install a degrade rule between two nodes: `loss`/`dup` are quarters
    /// of a probability (0..=4 → 0.0..=1.0), `flap` a half-period in units
    /// of 50 ms (0 = always active).
    Degrade { a: u8, b: u8, loss: u8, dup: u8, extra: u8, flap: u8 },
    HealAll,
    Crash { node: u8 },
    Restart { node: u8 },
    Advance { ms: u16 },
}

fn act_strategy(n: u8) -> impl Strategy<Value = Act> {
    prop_oneof![
        (0..n, 0..n, 0..1000u64)
            .prop_map(|(from, to, val)| Act::Send { from, to, val }),
        (0..n, 0..n).prop_map(|(a, b)| Act::Partition { a, b }),
        (0..n, 0..n, 0..=4u8, 0..=4u8, 0..20u8, 0..4u8).prop_map(
            |(a, b, loss, dup, extra, flap)| Act::Degrade { a, b, loss, dup, extra, flap }
        ),
        Just(Act::HealAll),
        (0..n).prop_map(|node| Act::Crash { node }),
        (0..n).prop_map(|node| Act::Restart { node }),
        (1..200u16).prop_map(|ms| Act::Advance { ms }),
    ]
}

/// Executes a schedule, returning a full fingerprint of the run.
fn run(seed: u64, acts: &[Act], n: usize) -> (Vec<Vec<(NodeId, u64)>>, simnet::trace::Counters) {
    let mut w = WorldBuilder::new(seed).build(n, |_| Recorder::default());
    let mut rules = Vec::new();
    let mut degrades = Vec::new();
    for act in acts {
        match act {
            Act::Send { from, to, val } => {
                let to = NodeId(*to as usize % n);
                let _ = w.call(NodeId(*from as usize % n), |_, ctx| ctx.send(to, *val));
            }
            Act::Partition { a, b } => {
                let a = NodeId(*a as usize % n);
                let b = NodeId(*b as usize % n);
                if a != b {
                    rules.push(w.block_pairs(bidirectional_pairs(&[a], &[b])));
                }
            }
            Act::Degrade { a, b, loss, dup, extra, flap } => {
                let a = NodeId(*a as usize % n);
                let b = NodeId(*b as usize % n);
                if a != b {
                    let rule = DegradeRule {
                        loss: f64::from(*loss) * 0.25,
                        dup_probability: f64::from(*dup) * 0.25,
                        extra_latency: u64::from(*extra),
                        jitter: u64::from(*extra) / 2,
                        flap_period: u64::from(*flap) * 50,
                    };
                    degrades.push(w.degrade_pairs(bidirectional_pairs(&[a], &[b]), rule));
                }
            }
            Act::HealAll => {
                for r in rules.drain(..) {
                    w.unblock(r);
                }
                for d in degrades.drain(..) {
                    w.undegrade(d);
                }
            }
            Act::Crash { node } => {
                let _ = w.crash(NodeId(*node as usize % n));
            }
            Act::Restart { node } => {
                let _ = w.restart(NodeId(*node as usize % n));
            }
            Act::Advance { ms } => w.run_for(*ms as u64),
        }
    }
    w.run_for(1000);
    let logs = (0..n).map(|i| w.app(NodeId(i)).seen.clone()).collect();
    (logs, w.trace().counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same seed and schedule always produce the identical execution.
    #[test]
    fn determinism(seed in 0u64..1000, acts in proptest::collection::vec(act_strategy(4), 0..40)) {
        let a = run(seed, &acts, 4);
        let b = run(seed, &acts, 4);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    /// FIFO links never reorder messages between a fixed pair.
    #[test]
    fn fifo_per_link(seed in 0u64..1000, vals in proptest::collection::vec(0u64..10_000, 1..50)) {
        let mut w = WorldBuilder::new(seed)
            .link(LinkConfig { base_latency: 1, jitter: 5, fifo: true, drop_probability: 0.0 })
            .build(2, |_| Recorder::default());
        // Tag messages with their sequence (odd values avoid replies).
        for (i, v) in vals.iter().enumerate() {
            let payload = (i as u64) * 20_000 + (v * 2 + 1);
            w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), payload)).unwrap();
            w.run_for(1);
        }
        w.run_for(100);
        let seen = &w.app(NodeId(1)).seen;
        prop_assert_eq!(seen.len(), vals.len());
        for pair in seen.windows(2) {
            prop_assert!(pair[0].1 / 20_000 < pair[1].1 / 20_000, "reordered: {:?}", seen);
        }
    }

    /// While a bidirectional rule is installed, nothing crosses it, and the
    /// counters account for every send.
    #[test]
    fn partitions_are_absolute(seed in 0u64..1000, vals in proptest::collection::vec(0u64..100, 1..20)) {
        let mut w = WorldBuilder::new(seed).build(2, |_| Recorder::default());
        w.block_pairs(bidirectional_pairs(&[NodeId(0)], &[NodeId(1)]));
        for v in &vals {
            w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), *v)).unwrap();
        }
        w.run_for(1000);
        prop_assert!(w.app(NodeId(1)).seen.is_empty());
        let c = w.trace().counters;
        prop_assert_eq!(c.sent, vals.len() as u64);
        prop_assert_eq!(c.dropped_partition, vals.len() as u64);
        prop_assert_eq!(c.delivered, 0);
    }

    /// Degrade install/heal cycles are deterministic per seed: the same
    /// degrade-heavy schedule replayed with the same seed produces the
    /// identical delivery logs and counters, loss/dup/jitter draws
    /// included.
    #[test]
    fn degrade_install_and_heal_are_deterministic(
        seed in 0u64..1000,
        acts in proptest::collection::vec(
            prop_oneof![
                (0..4u8, 0..4u8, 0..1000u64)
                    .prop_map(|(from, to, val)| Act::Send { from, to, val }),
                (0..4u8, 0..4u8, 0..=4u8, 0..=4u8, 0..20u8, 0..4u8).prop_map(
                    |(a, b, loss, dup, extra, flap)| Act::Degrade { a, b, loss, dup, extra, flap }
                ),
                Just(Act::HealAll),
                (1..200u16).prop_map(|ms| Act::Advance { ms }),
            ],
            0..40,
        ),
    ) {
        let a = run(seed, &acts, 4);
        let b = run(seed, &acts, 4);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    /// A degrade rule with every knob at zero is byte-identical to no rule
    /// at all: zero-valued knobs consume no RNG draws, so the logs *and*
    /// every counter — including jitter-dependent delivery order — match.
    #[test]
    fn zero_knob_degrade_rule_equals_no_rule(
        seed in 0u64..1000,
        acts in proptest::collection::vec(
            prop_oneof![
                (0..4u8, 0..4u8, 0..1000u64)
                    .prop_map(|(from, to, val)| Act::Send { from, to, val }),
                (1..200u16).prop_map(|ms| Act::Advance { ms }),
            ],
            1..30,
        ),
    ) {
        let without = run(seed, &acts, 4);
        let mut w = WorldBuilder::new(seed).build(4, |_| Recorder::default());
        w.degrade_pairs(
            bidirectional_pairs(&[NodeId(0), NodeId(1)], &[NodeId(2), NodeId(3)]),
            DegradeRule::default(),
        );
        for act in &acts {
            match act {
                Act::Send { from, to, val } => {
                    let to = NodeId(*to as usize % 4);
                    let _ = w.call(NodeId(*from as usize % 4), |_, ctx| ctx.send(to, *val));
                }
                Act::Advance { ms } => w.run_for(*ms as u64),
                _ => unreachable!("strategy only generates sends and advances"),
            }
        }
        w.run_for(1000);
        let logs: Vec<_> = (0..4).map(|i| w.app(NodeId(i)).seen.clone()).collect();
        prop_assert_eq!(logs, without.0);
        prop_assert_eq!(w.trace().counters, without.1);
    }

    /// A crashed node receives nothing; after restart it receives again.
    #[test]
    fn crash_restart_delivery(seed in 0u64..1000, v in 0u64..1000) {
        let mut w = WorldBuilder::new(seed).build(2, |_| Recorder::default());
        w.crash(NodeId(1)).unwrap();
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), v * 2 + 1)).unwrap();
        w.run_for(100);
        prop_assert!(w.app(NodeId(1)).seen.is_empty());
        w.restart(NodeId(1)).unwrap();
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), v * 2 + 1)).unwrap();
        w.run_for(100);
        prop_assert_eq!(w.app(NodeId(1)).seen.len(), 1);
    }
}
