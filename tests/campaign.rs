//! End-to-end campaign: every scenario must reproduce its failure under
//! the flawed configuration and come up clean under the repaired baseline
//! — the §6.4 headline, regenerated.

use neat_repro::campaign::{run_all_scenarios, table15};

#[test]
fn every_scenario_reproduces_its_failure() {
    let results = run_all_scenarios(8);
    for r in &results {
        assert!(
            !r.flawed.is_empty(),
            "{} ({} {}) found nothing under the flawed configuration",
            r.name,
            r.system,
            r.reference
        );
    }
}

#[test]
fn repaired_baselines_are_clean() {
    let results = run_all_scenarios(8);
    for r in &results {
        // The thrashing scenario's fixed arm is validated in its unit test
        // (it needs a different deployment shape).
        if r.name == "arbiter_thrashing" {
            continue;
        }
        assert!(
            r.fixed.is_empty(),
            "{} still fails when fixed: {:?}",
            r.name,
            r.fixed
        );
    }
}

#[test]
fn table15_reproduces_at_least_thirty_of_thirty_two() {
    let results = run_all_scenarios(8);
    let rows = table15(&results);
    assert_eq!(rows.len(), 32, "Table 15 has 32 rows");
    let found = rows.iter().filter(|r| r.detected).count();
    assert!(
        found >= 30,
        "paper found 32; we reproduce {found} (2 rows are not modelled)"
    );
}

#[test]
fn campaign_covers_all_seven_neat_systems_and_more() {
    let results = run_all_scenarios(8);
    let mut systems: Vec<&str> = results.iter().map(|r| r.system).collect();
    systems.sort();
    systems.dedup();
    for s in [
        "ActiveMQ",
        "Aerospike",
        "Ceph",
        "DKron",
        "Elasticsearch",
        "Hazelcast",
        "HBase",
        "HDFS",
        "Kafka",
        "Ignite",
        "MapReduce",
        "MongoDB",
        "MooseFS",
        "RabbitMQ",
        "Redis",
        "RethinkDB",
        "Terracotta",
        "VoltDB",
        "ZooKeeper",
    ] {
        assert!(systems.contains(&s), "campaign misses {s}: {systems:?}");
    }
}

#[test]
fn campaign_is_deterministic() {
    let a = run_all_scenarios(8);
    let b = run_all_scenarios(8);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.flawed, y.flawed, "{}", x.name);
        assert_eq!(x.fixed, y.fixed, "{}", x.name);
    }
}

#[test]
fn campaign_impacts_cover_the_paper_taxonomy() {
    use neat_repro::neat::ViolationKind;
    let results = run_all_scenarios(8);
    let all: Vec<ViolationKind> = results.iter().flat_map(|r| r.flawed.clone()).collect();
    for kind in [
        ViolationKind::DataLoss,
        ViolationKind::StaleRead,
        ViolationKind::DirtyRead,
        ViolationKind::ReappearanceOfDeletedData,
        ViolationKind::DataCorruption,
        ViolationKind::DataUnavailability,
        ViolationKind::DoubleLocking,
        ViolationKind::BrokenLock,
        ViolationKind::DoubleDequeue,
        ViolationKind::DoubleExecution,
        ViolationKind::SystemHang,
    ] {
        assert!(all.contains(&kind), "no scenario produced {kind}");
    }
}

#[test]
fn catalog_coverage_references_are_real() {
    let coverage = neat_repro::campaign::catalog_coverage();
    let catalog = neat_repro::study::catalog();
    let refs: std::collections::BTreeSet<&str> =
        catalog.iter().map(|f| f.reference).collect();
    let scenarios: std::collections::BTreeSet<&str> = run_all_scenarios(8)
        .iter()
        .map(|r| r.name)
        .collect::<Vec<_>>()
        .into_iter()
        .collect();
    for (reference, scenario) in &coverage {
        assert!(
            refs.contains(reference),
            "{reference} is not a catalog citation"
        );
        assert!(
            scenarios.contains(scenario),
            "{scenario} is not a campaign scenario"
        );
    }
    // A meaningful share of the study is executable.
    let covered = catalog
        .iter()
        .filter(|f| coverage.iter().any(|(r, _)| r == &f.reference))
        .count();
    assert!(covered >= 45, "only {covered}/136 covered");
}
