//! Property tests for the data grid and the coordination service in their
//! *repaired* configurations: under arbitrary isolate/heal schedules with
//! client traffic, the fixed designs must converge and keep their
//! guarantees. (The flawed configurations are exercised — and expected to
//! fail — by the scenario tests.)

use neat_repro::coord::{CoordCluster, CoordFlaws};
use neat_repro::gridstore::{GridCluster, GridFlaws};
use neat_repro::neat::{
    checkers::{check_counter, check_semaphore},
    rest_of,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum GStep {
    IsolateServer { which: u8 },
    HealAll,
    Incr { client: u8 },
    Acquire { client: u8 },
    Release { client: u8 },
    Settle { ms: u16 },
}

fn gstep() -> impl Strategy<Value = GStep> {
    prop_oneof![
        1 => (0u8..3).prop_map(|which| GStep::IsolateServer { which }),
        2 => Just(GStep::HealAll),
        3 => (0u8..2).prop_map(|client| GStep::Incr { client }),
        2 => (0u8..2).prop_map(|client| GStep::Acquire { client }),
        2 => (0u8..2).prop_map(|client| GStep::Release { client }),
        2 => (100u16..500).prop_map(|ms| GStep::Settle { ms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The protected grid never over-grants the semaphore, never loses
    /// acknowledged increments, and always converges after healing.
    #[test]
    fn protected_grid_keeps_its_guarantees(
        seed in 0u64..300,
        steps in proptest::collection::vec(gstep(), 0..18),
    ) {
        let mut c = GridCluster::build(3, 2, GridFlaws::fixed(), seed, false);
        c.settle(300);
        let c0 = c.client(0);
        let c1 = c.client(1);
        c0.sem_create(&mut c.neat, "sem", 1);
        c.settle(200);

        for step in &steps {
            match step {
                GStep::IsolateServer { which } => {
                    let s = c.servers[*which as usize % c.servers.len()];
                    let rest = rest_of(&c.neat.world.node_ids(), &[s]);
                    c.neat.partition_complete(&[s], &rest);
                }
                GStep::HealAll => c.neat.heal_all(),
                GStep::Incr { client } => {
                    let cl = if *client == 0 { c0 } else { c1 };
                    cl.incr(&mut c.neat, "ctr", 1);
                }
                GStep::Acquire { client } => {
                    let cl = if *client == 0 { c0 } else { c1 };
                    cl.acquire(&mut c.neat, "sem");
                }
                GStep::Release { client } => {
                    let cl = if *client == 0 { c0 } else { c1 };
                    cl.release(&mut c.neat, "sem");
                }
                GStep::Settle { ms } => c.settle(*ms as u64),
            }
        }
        c.neat.heal_all();
        c.settle(3000);

        // Semaphore: never more holders than permits.
        let sem_violations = check_semaphore(c.neat.history(), "sem", 1);
        prop_assert!(sem_violations.is_empty(), "{sem_violations:?}\n{}", c.neat.history().render());

        // Counter: acknowledged increments survive.
        let final_value = c
            .state_of(c.servers[1])
            .atomics
            .get("ctr")
            .copied()
            .unwrap_or(0);
        let ctr_violations = check_counter(c.neat.history(), "ctr", 0, final_value);
        prop_assert!(ctr_violations.is_empty(), "{ctr_violations:?}\n{}", c.neat.history().render());

        // Convergence: all members share one view and one state.
        let reference = c.state_of(c.servers[0]);
        for &s in &c.servers {
            prop_assert_eq!(
                c.neat.world.app(s).server().view().len(),
                c.servers.len(),
                "membership did not heal at {}",
                s
            );
            prop_assert_eq!(&c.state_of(s), &reference, "state diverged at {}", s);
        }
    }

    /// The fixed coordination service converges: after arbitrary isolation
    /// of followers with writes in between, all trees match the leader's.
    #[test]
    fn fixed_coord_trees_converge(
        seed in 0u64..300,
        writes_during in 1usize..10,
        isolate_leader in proptest::bool::ANY,
    ) {
        let mut c = CoordCluster::build(3, 2, CoordFlaws::default(), seed, false);
        let Some(leader) = c.wait_for_leader(3000) else {
            // Rare unlucky seeds take longer; skip rather than fail.
            return Ok(());
        };
        let cl = c.client(0);
        cl.create(&mut c.neat, "/base", 1);

        let victim = if isolate_leader {
            leader
        } else {
            rest_of(&c.servers, &[leader])[0]
        };
        let p = c.neat.partition_complete(
            &[victim],
            &rest_of(&c.neat.world.node_ids(), &[victim]),
        );
        c.settle(600);

        for i in 0..writes_during {
            cl.create(&mut c.neat, &format!("/w{i}"), i as u64);
        }

        c.neat.heal(&p);
        c.settle(3000);

        let trees: Vec<_> = c.servers.iter().map(|&s| c.tree_of(s)).collect();
        for (i, t) in trees.iter().enumerate() {
            prop_assert_eq!(
                t,
                &trees[0],
                "tree at server {} diverges after heal",
                i
            );
        }
        // Every write acknowledged during the partition is present.
        let reference = &trees[0];
        for r in c.neat.history().records() {
            if let neat_repro::neat::Op::Write { key, .. } = &r.op {
                if r.outcome.is_ok() {
                    prop_assert!(
                        reference.contains_key(key.as_str()),
                        "acknowledged znode {} missing after heal",
                        key
                    );
                }
            }
        }
    }
}
