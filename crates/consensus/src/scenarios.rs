//! The RethinkDB reconfiguration failure (issue #5289, §4.4) as a seeded
//! scenario, plus the proven-Raft baseline run of the same sequence.

use std::collections::BTreeMap;

use neat::{
    checkers::{check_register, RegisterSemantics},
    rest_of, Violation, ViolationKind,
};
use crate::{
    cluster::{RaftCluster, RaftClusterSpec},
    raft::RaftTweaks,
};

/// Result of the reconfiguration scenario.
#[derive(Debug)]
pub struct ReconfigOutcome {
    /// Checker violations (data loss when the tweak is on).
    pub violations: Vec<Violation>,
    /// Whether two leaders each committed writes during the partition.
    pub dual_majorities: bool,
    /// Final per-key state from the surviving leader.
    pub final_state: BTreeMap<String, Option<u64>>,
    /// Manifestation trace (when recorded).
    pub trace: String,
    /// Typed observability timeline (faults, ops, verdicts; see `obs`).
    pub timeline: neat::obs::Timeline,
}

impl ReconfigOutcome {
    /// `true` when a violation of `kind` was found.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }
}

/// Issue #5289. Five replicas; a partial partition splits `{A, B}` from
/// `{D, E}` while `C` bridges. The admin shrinks the cluster to `{D, E}`;
/// the removed `C` deletes its Raft log (when the tweak is on), forgets the
/// removal, and helps `{A, B}` form a *second* majority in the old
/// configuration. Both sides then commit writes for the same key space.
pub fn rethinkdb_reconfig_split_brain(
    tweaks: RaftTweaks,
    seed: u64,
    record: bool,
) -> ReconfigOutcome {
    let mut cluster = RaftCluster::build(RaftClusterSpec {
        servers: 5,
        clients: 2,
        tweaks,
        seed,
        record_trace: record,
    });
    let d = cluster.wait_for_leader(3000).expect("initial leader"); // lint:allow(unwrap-expect)
    let others = rest_of(&cluster.servers, &[d]);
    let (e, c, a, b) = (others[0], others[1], others[2], others[3]);

    // Baseline data everyone has.
    let admin = cluster.client(0).via(d);
    admin.put(&mut cluster.neat, "base", 1);

    // Partial partition: {A, B} | {D, E}; C and the clients bridge.
    let p = cluster.neat.partition_partial(&[a, b], &[d, e]);

    // The admin asks the leader to shrink the replica set to {D, E}.
    admin.reconfigure(&mut cluster.neat, vec![d, e]);
    cluster.settle(800);

    // Old side: A (or B) campaigns in the old configuration. With the
    // tweak, C's blank log lets it win a 3-of-5 majority.
    cluster.settle(1200);
    let left_leader = [a, b, c]
        .into_iter()
        .find(|&s| cluster.leaders().contains(&s));

    // Writes on both sides of the partition.
    let left_ok = match left_leader {
        Some(l) => cluster
            .client(0)
            .via(l)
            .put(&mut cluster.neat, "left", 10)
            .is_ok(),
        None => {
            // Still record the attempt so the history shows the outcome.
            !matches!(
                cluster.client(0).via(a).put(&mut cluster.neat, "left", 10),
                neat::Outcome::Fail | neat::Outcome::Timeout
            )
        }
    };
    let right_ok = cluster
        .client(1)
        .via(d)
        .put(&mut cluster.neat, "right", 20)
        .is_ok();
    let dual_majorities = left_ok && right_ok;

    cluster.neat.heal(&p);
    cluster.settle(3000);

    let final_state = cluster.final_state(&["base", "left", "right"]);
    let violations = check_register(
        cluster.neat.history(),
        RegisterSemantics::Strong,
        &final_state,
    );
    let timeline = cluster.neat.observe(&violations);
    ReconfigOutcome {
        violations,
        dual_majorities,
        final_state,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

/// Result of the lossy-leader-link scenario.
#[derive(Debug)]
pub struct LossyLinkOutcome {
    /// Checker violations plus the manufactured churn verdict.
    pub violations: Vec<Violation>,
    /// How many terms leadership advanced while the link was degraded.
    pub term_churn: u64,
    /// Final per-key state from the surviving leader.
    pub final_state: BTreeMap<String, Option<u64>>,
    /// Manifestation trace (when recorded).
    pub trace: String,
    /// Typed observability timeline (faults, ops, verdicts; see `obs`).
    pub timeline: neat::obs::Timeline,
}

impl LossyLinkOutcome {
    /// `true` when a violation of `kind` was found.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }
}

/// Gray failure §2.1 against proven Raft: the leader's links to both
/// followers lose most of their messages — degraded, never severed. Lost
/// heartbeats fire election timers, lost votes stall the elections they
/// start, and leadership churns term after term; a committed write
/// survives (Raft stays *safe*) but availability collapses. With
/// `lossy = false` the identical sequence runs over clean links and terms
/// stay put.
pub fn lossy_leader_link(lossy: bool, seed: u64, record: bool) -> LossyLinkOutcome {
    let mut cluster = RaftCluster::build(RaftClusterSpec {
        servers: 3,
        clients: 1,
        tweaks: RaftTweaks::default(),
        seed,
        record_trace: record,
    });
    let leader = cluster.wait_for_leader(3000).expect("initial leader"); // lint:allow(unwrap-expect)
    let followers = rest_of(&cluster.servers, &[leader]);

    let c = cluster.client(0).via(leader);
    c.put(&mut cluster.neat, "stable", 1);

    let term_before = cluster.neat.world.app(leader).server().term();
    let d = lossy.then(|| {
        cluster.neat.degrade(neat::DegradeSpec::Partial {
            a: vec![leader],
            b: followers,
            rule: simnet::DegradeRule::lossy(0.8),
        })
    });

    cluster.settle(4000);
    let term_churn = cluster
        .servers
        .iter()
        .map(|&s| cluster.neat.world.app(s).server().term())
        .max()
        .unwrap_or(term_before)
        .saturating_sub(term_before);

    if let Some(d) = d {
        cluster.neat.heal_degrade(&d);
    }
    cluster.settle(2000);
    let after = cluster.leader().unwrap_or(leader);
    cluster.client(0).via(after).put(&mut cluster.neat, "after", 2);

    let final_state = cluster.final_state(&["stable", "after"]);
    let mut violations = check_register(
        cluster.neat.history(),
        RegisterSemantics::Strong,
        &final_state,
    );
    if term_churn >= 3 {
        violations.push(Violation::new(
            ViolationKind::Other,
            format!(
                "leadership churned {term_churn} terms under the lossy leader link \
                 (availability degradation, §2.1 flaky link)"
            ),
        ));
    }
    let timeline = cluster.neat.observe(&violations);
    LossyLinkOutcome {
        violations,
        term_churn,
        final_state,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_leader_link_churns_leadership_but_keeps_data() {
        let out = lossy_leader_link(true, 8, false);
        assert!(out.term_churn >= 3, "only {} terms of churn", out.term_churn);
        assert!(out.has(ViolationKind::Other), "{:?}", out.violations);
        // Raft safety holds: the committed write survives the churn.
        assert_eq!(out.final_state.get("stable"), Some(&Some(1)));
        assert!(!out.has(ViolationKind::DataLoss), "{:?}", out.violations);
    }

    #[test]
    fn clean_links_keep_leadership_stable() {
        let out = lossy_leader_link(false, 8, false);
        assert!(out.term_churn <= 1, "unexpected churn: {}", out.term_churn);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn tweaked_raft_forms_two_majorities_and_loses_data() {
        let out = rethinkdb_reconfig_split_brain(
            RaftTweaks {
                delete_log_on_remove: true,
            },
            21,
            false,
        );
        assert!(out.dual_majorities, "{:?}", out.final_state);
        assert!(out.has(ViolationKind::DataLoss), "{:?}", out.violations);
    }

    #[test]
    fn proven_raft_stays_safe_under_the_same_sequence() {
        let out = rethinkdb_reconfig_split_brain(RaftTweaks::default(), 21, false);
        assert!(!out.dual_majorities);
        assert!(
            !out.has(ViolationKind::DataLoss),
            "{:?}",
            out.violations
        );
    }
}
