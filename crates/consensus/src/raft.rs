//! The Raft node: elections, log replication, commitment, membership.
//!
//! This is a faithful (if compact) Raft: term-based elections with
//! log-up-to-date vote checks and leader stickiness, AppendEntries with the
//! `(prevIndex, prevTerm)` consistency check and conflict truncation,
//! commitment restricted to current-term entries, and leased leader reads.
//! Membership changes are log entries; while a change is in flight the
//! leader replicates to the *union* of old and new members (the moral
//! equivalent of joint consensus) and only notifies removed members after
//! the change commits.
//!
//! The one deliberate deviation is behind [`RaftTweaks::delete_log_on_remove`]:
//! RethinkDB's removed replicas delete their Raft log — including the very
//! configuration entry that removed them — which is how issue #5289 ends up
//! with two disjoint majorities (§4.4 of the paper).

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;
use simnet::{Ctx, NodeId, Time, TimerId};

const TAG_ELECTION: u64 = 1;
const TAG_TICK: u64 = 2;

/// Protocol tweaks (all off = proven Raft).
#[derive(Clone, Copy, Debug, Default)]
pub struct RaftTweaks {
    /// RethinkDB: a removed replica deletes its entire Raft log.
    pub delete_log_on_remove: bool,
}

/// A replicated command.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cmd {
    /// Leader no-op appended on election (commits the current term).
    Noop,
    Put { key: String, val: u64 },
    Delete { key: String },
    /// Replace the cluster membership.
    Config { members: Vec<NodeId> },
}

/// One log entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RaftEntry {
    pub term: u64,
    pub cmd: Cmd,
}

/// Client-visible requests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RaftReq {
    Put { key: String, val: u64 },
    Delete { key: String },
    Get { key: String },
    /// Administrative membership change.
    Reconfigure { members: Vec<NodeId> },
}

/// Client-visible responses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RaftResp {
    Ok,
    Fail,
    Value(Option<u64>),
}

/// The wire protocol.
#[derive(Clone, Debug)]
pub enum RaftMsg {
    RequestVote {
        term: u64,
        last_term: u64,
        last_idx: usize,
    },
    VoteResp {
        term: u64,
        granted: bool,
    },
    Append {
        term: u64,
        prev_idx: usize,
        prev_term: u64,
        entries: Vec<RaftEntry>,
        commit: usize,
    },
    AppendResp {
        term: u64,
        success: bool,
        match_idx: usize,
    },
    /// Leader → removed member, after the removing config change commits.
    Removed,
    ClientReq {
        op_id: u64,
        req: RaftReq,
    },
    ClientResp {
        op_id: u64,
        resp: RaftResp,
    },
}

/// Raft roles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaftRole {
    Follower,
    Candidate,
    Leader,
}

/// One Raft server.
pub struct RaftNode {
    me: NodeId,
    initial_members: Vec<NodeId>,
    tweaks: RaftTweaks,
    election_timeout: Time,
    tick_interval: Time,

    // Persistent.
    term: u64,
    voted_for: Option<NodeId>,
    log: Vec<RaftEntry>,

    // Volatile.
    role: RaftRole,
    leader_hint: Option<NodeId>,
    commit: usize,
    applied: usize,
    kv: BTreeMap<String, u64>,
    votes: BTreeSet<NodeId>,
    next_idx: BTreeMap<NodeId, usize>,
    match_idx: BTreeMap<NodeId, usize>,
    last_leader_contact: Time,
    lease_until: Time,
    round_acks: BTreeSet<NodeId>,
    /// Peers removed by a committed config change (no longer replicated to).
    removed_peers: BTreeSet<NodeId>,
    /// In-flight client mutations, keyed by the log index they must commit.
    pending: BTreeMap<usize, (NodeId, u64)>,
    /// Set once this node has been told it was removed (and keeps its log).
    pub removed: bool,
    /// Elections won (metrics).
    pub elections_won: u64,
}

impl RaftNode {
    /// Creates a node of a cluster initially containing `members`.
    pub fn new(me: NodeId, members: Vec<NodeId>, tweaks: RaftTweaks) -> Self {
        Self {
            me,
            initial_members: members,
            tweaks,
            election_timeout: 300,
            tick_interval: 50,
            term: 0,
            voted_for: None,
            log: Vec::new(),
            role: RaftRole::Follower,
            leader_hint: None,
            commit: 0,
            applied: 0,
            kv: BTreeMap::new(),
            votes: BTreeSet::new(),
            next_idx: BTreeMap::new(),
            match_idx: BTreeMap::new(),
            last_leader_contact: 0,
            lease_until: 0,
            round_acks: BTreeSet::new(),
            removed_peers: BTreeSet::new(),
            pending: BTreeMap::new(),
            removed: false,
            elections_won: 0,
        }
    }

    /// Current role.
    pub fn role(&self) -> RaftRole {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The committed, applied key-value state.
    pub fn kv(&self) -> &BTreeMap<String, u64> {
        &self.kv
    }

    /// The full log, for assertions.
    pub fn log(&self) -> &[RaftEntry] {
        &self.log
    }

    /// Commit index.
    pub fn commit(&self) -> usize {
        self.commit
    }

    /// Effective membership: the last `Config` entry anywhere in the log,
    /// or the initial membership. A node whose log was deleted (the
    /// RethinkDB tweak) therefore reverts to the initial membership — the
    /// heart of the reproduced failure.
    pub fn members(&self) -> Vec<NodeId> {
        for e in self.log.iter().rev() {
            if let Cmd::Config { members } = &e.cmd {
                return members.clone();
            }
        }
        self.initial_members.clone()
    }

    fn majority(&self) -> usize {
        self.members().len() / 2 + 1
    }

    fn last_log(&self) -> (u64, usize) {
        (self.log.last().map(|e| e.term).unwrap_or(0), self.log.len())
    }

    /// Everyone this leader replicates to: the union of old and new
    /// memberships minus peers whose removal has committed.
    fn replication_targets(&self) -> Vec<NodeId> {
        let mut set: BTreeSet<NodeId> = self.initial_members.iter().copied().collect();
        set.extend(self.members());
        set.remove(&self.me);
        for r in &self.removed_peers {
            set.remove(r);
        }
        set.into_iter().collect()
    }

    fn arm_election_timer(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        let base = self.election_timeout;
        let jitter = ctx.rng().gen_range(0..=base / 2);
        ctx.set_timer(base + jitter, TAG_ELECTION);
    }

    /// Boot / recovery.
    pub fn start(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        self.role = RaftRole::Follower;
        self.leader_hint = None;
        self.votes.clear();
        self.pending.clear();
        self.round_acks.clear();
        self.last_leader_contact = ctx.now();
        self.applied = 0;
        self.kv.clear();
        self.reapply();
        self.arm_election_timer(ctx);
    }

    /// Crash: volatile state lost; `term`, `voted_for`, `log` persist.
    pub fn on_crash(&mut self) {
        self.role = RaftRole::Follower;
        self.leader_hint = None;
        self.votes.clear();
        self.pending.clear();
        self.commit = 0; // commit index is volatile in Raft
        self.applied = 0;
        self.kv.clear();
    }

    fn reapply(&mut self) {
        while self.applied < self.commit {
            let e = self.log[self.applied].clone();
            match &e.cmd {
                Cmd::Put { key, val } => {
                    self.kv.insert(key.clone(), *val);
                }
                Cmd::Delete { key } => {
                    self.kv.remove(key);
                }
                Cmd::Noop | Cmd::Config { .. } => {}
            }
            self.applied += 1;
        }
    }

    fn become_follower(&mut self, term: u64, leader: Option<NodeId>) {
        self.role = RaftRole::Follower;
        if term > self.term {
            self.term = term;
            self.voted_for = None;
        }
        self.leader_hint = leader;
        self.votes.clear();
        self.pending.clear();
    }

    fn start_election(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        if self.removed && !self.tweaks.delete_log_on_remove {
            return;
        }
        if !self.members().contains(&self.me) {
            // A server that knows it is not a member must not campaign.
            return;
        }
        self.term += 1;
        self.role = RaftRole::Candidate;
        self.voted_for = Some(self.me);
        self.votes = std::iter::once(self.me).collect();
        self.leader_hint = None;
        ctx.note(format!("starts election (term {})", self.term));
        if self.votes.len() >= self.majority() {
            self.become_leader(ctx);
            return;
        }
        let (last_term, last_idx) = self.last_log();
        let term = self.term;
        let peers = self.members();
        ctx.broadcast(
            &peers,
            RaftMsg::RequestVote {
                term,
                last_term,
                last_idx,
            },
        );
    }

    fn become_leader(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        self.role = RaftRole::Leader;
        self.leader_hint = Some(self.me);
        self.elections_won += 1;
        let len = self.log.len();
        for p in self.replication_targets() {
            self.next_idx.insert(p, len);
            self.match_idx.insert(p, 0);
        }
        // Commit the current term by appending a no-op (Raft §5.4.2 note).
        self.log.push(RaftEntry {
            term: self.term,
            cmd: Cmd::Noop,
        });
        self.lease_until = ctx.now() + self.tick_interval * 3;
        self.round_acks.clear();
        ctx.note(format!("becomes leader (term {})", self.term));
        self.replicate_all(ctx);
        ctx.set_timer(self.tick_interval, TAG_TICK);
    }

    fn replicate_all(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        for p in self.replication_targets() {
            let from = *self.next_idx.get(&p).unwrap_or(&self.log.len());
            let from = from.min(self.log.len());
            let prev_idx = from;
            let prev_term = if from == 0 { 0 } else { self.log[from - 1].term };
            ctx.send(
                p,
                RaftMsg::Append {
                    term: self.term,
                    prev_idx,
                    prev_term,
                    entries: self.log[from..].to_vec(),
                    commit: self.commit,
                },
            );
        }
    }

    /// Timer handler.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, RaftMsg>, _t: TimerId, tag: u64) {
        match tag {
            TAG_ELECTION => {
                if self.role != RaftRole::Leader
                    && ctx.now().saturating_sub(self.last_leader_contact) >= self.election_timeout
                {
                    self.start_election(ctx);
                }
                self.arm_election_timer(ctx);
            }
            TAG_TICK => {
                if self.role != RaftRole::Leader {
                    return;
                }
                if self.round_acks.len() + 1 >= self.majority() {
                    self.lease_until = ctx.now() + self.tick_interval * 3;
                }
                self.round_acks.clear();
                self.replicate_all(ctx);
                ctx.set_timer(self.tick_interval, TAG_TICK);
            }
            _ => {}
        }
    }

    /// Message handler.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, RaftMsg>, from: NodeId, msg: RaftMsg) {
        match msg {
            RaftMsg::RequestVote {
                term,
                last_term,
                last_idx,
            } => self.on_request_vote(ctx, from, term, last_term, last_idx),
            RaftMsg::VoteResp { term, granted } => {
                if self.role == RaftRole::Candidate && term == self.term && granted {
                    self.votes.insert(from);
                    if self.votes.len() >= self.majority() {
                        self.become_leader(ctx);
                    }
                }
            }
            RaftMsg::Append {
                term,
                prev_idx,
                prev_term,
                entries,
                commit,
            } => self.on_append(ctx, from, term, prev_idx, prev_term, entries, commit),
            RaftMsg::AppendResp {
                term,
                success,
                match_idx,
            } => self.on_append_resp(ctx, from, term, success, match_idx),
            RaftMsg::Removed => self.on_removed(ctx),
            RaftMsg::ClientReq { op_id, req } => self.on_client(ctx, from, op_id, req),
            RaftMsg::ClientResp { .. } => {}
        }
    }

    fn on_request_vote(
        &mut self,
        ctx: &mut Ctx<'_, RaftMsg>,
        from: NodeId,
        term: u64,
        last_term: u64,
        last_idx: usize,
    ) {
        // Leader stickiness (Raft §4.2.3): ignore vote requests while we
        // believe a leader is alive; do not let the request bump our term.
        if self.role != RaftRole::Leader
            && self.leader_hint.is_some()
            && self.leader_hint != Some(from)
            && ctx.now().saturating_sub(self.last_leader_contact) < self.election_timeout
        {
            ctx.send(
                from,
                RaftMsg::VoteResp {
                    term,
                    granted: false,
                },
            );
            return;
        }
        if term > self.term {
            self.become_follower(term, None);
        }
        let (my_last_term, my_last_idx) = self.last_log();
        let up_to_date = (last_term, last_idx) >= (my_last_term, my_last_idx);
        let granted = term == self.term
            && (self.voted_for.is_none() || self.voted_for == Some(from))
            && up_to_date;
        if granted {
            self.voted_for = Some(from);
            self.last_leader_contact = ctx.now();
            ctx.note(format!("votes for {from} (term {term})"));
        }
        ctx.send(from, RaftMsg::VoteResp { term, granted });
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append(
        &mut self,
        ctx: &mut Ctx<'_, RaftMsg>,
        from: NodeId,
        term: u64,
        prev_idx: usize,
        prev_term: u64,
        entries: Vec<RaftEntry>,
        commit: usize,
    ) {
        if term < self.term {
            ctx.send(
                from,
                RaftMsg::AppendResp {
                    term: self.term,
                    success: false,
                    match_idx: 0,
                },
            );
            return;
        }
        self.become_follower(term, Some(from));
        self.last_leader_contact = ctx.now();

        // Consistency check.
        if prev_idx > self.log.len()
            || (prev_idx > 0 && self.log[prev_idx - 1].term != prev_term)
        {
            let hint = self.log.len().min(prev_idx.saturating_sub(1));
            if prev_idx <= self.log.len() && prev_idx > 0 {
                self.log.truncate(prev_idx - 1);
            }
            ctx.send(
                from,
                RaftMsg::AppendResp {
                    term: self.term,
                    success: false,
                    match_idx: hint,
                },
            );
            return;
        }
        // Splice entries, truncating on conflict.
        for (i, e) in entries.iter().enumerate() {
            let pos = prev_idx + i;
            if pos < self.log.len() {
                if self.log[pos].term != e.term {
                    self.log.truncate(pos);
                    self.log.push(e.clone());
                }
            } else {
                self.log.push(e.clone());
            }
        }
        let match_idx = prev_idx + entries.len();
        self.commit = self.commit.max(commit.min(self.log.len()));
        if self.applied > self.commit {
            // A truncation invalidated applied state; replay from scratch.
            self.applied = 0;
            self.kv.clear();
        }
        self.reapply();
        ctx.send(
            from,
            RaftMsg::AppendResp {
                term: self.term,
                success: true,
                match_idx,
            },
        );
    }

    fn on_append_resp(
        &mut self,
        ctx: &mut Ctx<'_, RaftMsg>,
        from: NodeId,
        term: u64,
        success: bool,
        match_idx: usize,
    ) {
        if term > self.term {
            self.become_follower(term, None);
            return;
        }
        if self.role != RaftRole::Leader || term != self.term {
            return;
        }
        if success {
            self.round_acks.insert(from);
            let m = self.match_idx.entry(from).or_insert(0);
            *m = (*m).max(match_idx);
            self.next_idx.insert(from, match_idx);
            self.advance_commit(ctx);
        } else {
            self.next_idx.insert(from, match_idx);
        }
    }

    fn advance_commit(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        let members = self.members();
        let majority = self.majority();
        let old_commit = self.commit;
        for idx in (self.commit + 1..=self.log.len()).rev() {
            // Only current-term entries commit by counting (Raft §5.4.2).
            if self.log[idx - 1].term != self.term {
                continue;
            }
            let count = members
                .iter()
                .filter(|&&m| m == self.me || self.match_idx.get(&m).copied().unwrap_or(0) >= idx)
                .count();
            if count >= majority {
                self.commit = idx;
                break;
            }
        }
        if self.commit == old_commit {
            return;
        }
        self.reapply();
        // Answer committed client ops.
        let done: Vec<usize> = self
            .pending
            .range(..=self.commit)
            .map(|(i, _)| *i)
            .collect();
        for idx in done {
            if let Some((client, op_id)) = self.pending.remove(&idx) {
                ctx.send(
                    client,
                    RaftMsg::ClientResp {
                        op_id,
                        resp: RaftResp::Ok,
                    },
                );
            }
        }
        // Notify members removed by a config change that just committed.
        for idx in old_commit + 1..=self.commit {
            if let Cmd::Config { members: new } = &self.log[idx - 1].cmd {
                let before = self.members_before(idx);
                let new_set: BTreeSet<NodeId> = new.iter().copied().collect();
                for gone in before.into_iter().filter(|n| !new_set.contains(n)) {
                    self.removed_peers.insert(gone);
                    if gone != self.me {
                        ctx.send(gone, RaftMsg::Removed);
                    }
                }
            }
        }
    }

    /// Membership as of just before log index `idx` (1-based).
    fn members_before(&self, idx: usize) -> Vec<NodeId> {
        for e in self.log[..idx - 1].iter().rev() {
            if let Cmd::Config { members } = &e.cmd {
                return members.clone();
            }
        }
        self.initial_members.clone()
    }

    fn on_removed(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        self.removed = true;
        if self.tweaks.delete_log_on_remove {
            // RethinkDB issue #5289: the removed replica deletes its log —
            // including the config entry recording its removal.
            ctx.note("removed from cluster; DELETING raft log (tweak)".to_string());
            self.log.clear();
            self.commit = 0;
            self.applied = 0;
            self.kv.clear();
            self.voted_for = None;
            self.role = RaftRole::Follower;
            self.leader_hint = None;
            self.removed = false; // It no longer remembers being removed.
        } else {
            ctx.note("removed from cluster; retiring".to_string());
            self.role = RaftRole::Follower;
        }
    }

    fn on_client(&mut self, ctx: &mut Ctx<'_, RaftMsg>, from: NodeId, op_id: u64, req: RaftReq) {
        if self.role != RaftRole::Leader {
            ctx.send(
                from,
                RaftMsg::ClientResp {
                    op_id,
                    resp: RaftResp::Fail,
                },
            );
            return;
        }
        match req {
            RaftReq::Get { key } => {
                let resp = if ctx.now() < self.lease_until {
                    RaftResp::Value(self.kv.get(&key).copied())
                } else {
                    RaftResp::Fail
                };
                ctx.send(from, RaftMsg::ClientResp { op_id, resp });
            }
            RaftReq::Put { key, val } => {
                self.append_cmd(ctx, Cmd::Put { key, val }, from, op_id);
            }
            RaftReq::Delete { key } => {
                self.append_cmd(ctx, Cmd::Delete { key }, from, op_id);
            }
            RaftReq::Reconfigure { members } => {
                self.append_cmd(ctx, Cmd::Config { members }, from, op_id);
            }
        }
    }

    fn append_cmd(&mut self, ctx: &mut Ctx<'_, RaftMsg>, cmd: Cmd, client: NodeId, op_id: u64) {
        self.log.push(RaftEntry {
            term: self.term,
            cmd,
        });
        self.pending.insert(self.log.len(), (client, op_id));
        // Single-node clusters commit immediately.
        self.advance_commit(ctx);
        self.replicate_all(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: usize) -> RaftNode {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        RaftNode::new(NodeId(0), members, RaftTweaks::default())
    }

    fn config_entry(members: &[usize]) -> RaftEntry {
        RaftEntry {
            term: 1,
            cmd: Cmd::Config {
                members: members.iter().copied().map(NodeId).collect(),
            },
        }
    }

    #[test]
    fn members_default_to_initial_membership() {
        let n = node(5);
        assert_eq!(n.members().len(), 5);
        assert_eq!(n.majority(), 3);
    }

    #[test]
    fn latest_config_entry_wins() {
        let mut n = node(5);
        n.log.push(config_entry(&[0, 1, 2]));
        n.log.push(config_entry(&[0, 1]));
        assert_eq!(n.members(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(n.majority(), 2);
    }

    #[test]
    fn members_before_sees_the_prior_config() {
        let mut n = node(5);
        n.log.push(RaftEntry {
            term: 1,
            cmd: Cmd::Noop,
        });
        n.log.push(config_entry(&[0, 1]));
        // Before index 2 (the config entry), the initial membership holds.
        assert_eq!(n.members_before(2).len(), 5);
    }

    #[test]
    fn deleted_log_reverts_to_initial_membership() {
        // The heart of the RethinkDB flaw: once the log (and its config
        // entry) is gone, the node believes the five-node world again.
        let mut n = RaftNode::new(
            NodeId(0),
            (0..5).map(NodeId).collect(),
            RaftTweaks {
                delete_log_on_remove: true,
            },
        );
        n.log.push(config_entry(&[3, 4]));
        assert_eq!(n.members().len(), 2);
        n.log.clear();
        assert_eq!(n.members().len(), 5);
    }

    #[test]
    fn replication_targets_union_old_and_new() {
        let mut n = node(5);
        n.log.push(config_entry(&[0, 1]));
        // Until removals commit, the leader still replicates to everyone.
        assert_eq!(n.replication_targets().len(), 4);
        n.removed_peers.insert(NodeId(3));
        n.removed_peers.insert(NodeId(4));
        assert_eq!(n.replication_targets(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn last_log_reports_term_and_length() {
        let mut n = node(3);
        assert_eq!(n.last_log(), (0, 0));
        n.log.push(RaftEntry {
            term: 4,
            cmd: Cmd::Noop,
        });
        assert_eq!(n.last_log(), (4, 1));
    }

    #[test]
    fn crash_preserves_persistent_state_only() {
        let mut n = node(3);
        n.term = 7;
        n.voted_for = Some(NodeId(1));
        n.log.push(RaftEntry {
            term: 7,
            cmd: Cmd::Put {
                key: "k".into(),
                val: 1,
            },
        });
        n.commit = 1;
        n.role = RaftRole::Leader;
        n.on_crash();
        assert_eq!(n.term, 7);
        assert_eq!(n.voted_for, Some(NodeId(1)));
        assert_eq!(n.log.len(), 1);
        assert_eq!(n.commit, 0, "the commit index is volatile in Raft");
        assert_eq!(n.role(), RaftRole::Follower);
        assert!(n.kv().is_empty());
    }
}
