//! A [`TestTarget`] adapter for the Raft baseline: the explorer throws
//! random faults and workloads at proven Raft, and the checkers should
//! find nothing — the control arm of the Finding-13 experiment.

use std::collections::BTreeMap;

use neat::{
    checkers::{check_register, RegisterSemantics},
    explore::{EventChoice, TestTarget},
    fault::PartitionSpec,
    gray::DegradeSpec,
    Violation,
};
use rand::{rngs::StdRng, Rng};
use simnet::{NodeId, Time};

use crate::{
    cluster::{RaftCluster, RaftClusterSpec},
    raft::RaftTweaks,
};

/// Drives a Raft deployment under explorer-generated faults and events.
pub struct RaftTarget {
    tweaks: RaftTweaks,
    servers: usize,
    cluster: Option<RaftCluster>,
    next_val: u64,
}

impl RaftTarget {
    /// Creates an adapter for a cluster of `servers` Raft nodes.
    pub fn new(tweaks: RaftTweaks, servers: usize) -> Self {
        Self {
            tweaks,
            servers,
            cluster: None,
            next_val: 0,
        }
    }

    fn cluster(&mut self) -> &mut RaftCluster {
        self.cluster.as_mut().expect("reset() builds the cluster") // lint:allow(unwrap-expect)
    }

    fn keys() -> [&'static str; 3] {
        ["k0", "k1", "k2"]
    }
}

impl TestTarget for RaftTarget {
    fn reset(&mut self, seed: u64, record: bool) {
        let mut cluster = RaftCluster::build(RaftClusterSpec {
            servers: self.servers,
            clients: 2,
            tweaks: self.tweaks,
            seed,
            record_trace: record,
        });
        cluster.wait_for_leader(3000);
        self.cluster = Some(cluster);
        self.next_val = 0;
    }

    fn servers(&self) -> Vec<NodeId> {
        self.cluster.as_ref().expect("built").servers.clone() // lint:allow(unwrap-expect)
    }

    fn leader(&mut self) -> Option<NodeId> {
        self.cluster().leader()
    }

    fn supported_events(&self) -> Vec<EventChoice> {
        vec![EventChoice::Write, EventChoice::Read, EventChoice::Delete]
    }

    fn inject(&mut self, spec: &PartitionSpec) {
        self.cluster().neat.partition(spec.clone());
    }

    fn degrade(&mut self, spec: &DegradeSpec) {
        self.cluster().neat.degrade(spec.clone());
    }

    fn crash(&mut self, nodes: &[NodeId]) {
        self.cluster().neat.crash(nodes);
    }

    fn restart(&mut self, nodes: &[NodeId]) {
        self.cluster().neat.restart(nodes);
    }

    fn advance(&mut self, ms: Time) {
        self.cluster().neat.sleep(ms);
    }

    fn heal_all(&mut self) {
        let neat = &mut self.cluster().neat;
        neat.heal_all();
        neat.heal_all_degrades();
    }

    fn apply_event(&mut self, ev: EventChoice, rng: &mut StdRng) {
        self.next_val += 1;
        let val = self.next_val;
        let key = Self::keys()[rng.gen_range(0..3)];
        let cluster = self.cluster.as_mut().expect("built"); // lint:allow(unwrap-expect)
        let target = cluster
            .leader()
            .unwrap_or(cluster.servers[rng.gen_range(0..cluster.servers.len())]);
        let which = rng.gen_range(0..cluster.clients.len());
        let client = cluster.client(which).via(target);
        match ev {
            EventChoice::Write => {
                client.put(&mut cluster.neat, key, val);
            }
            EventChoice::Read => {
                client.get(&mut cluster.neat, key);
            }
            EventChoice::Delete => {
                client.delete(&mut cluster.neat, key);
            }
            _ => {}
        }
    }

    fn finish_and_check(&mut self) -> Vec<Violation> {
        let cluster = self.cluster.as_mut().expect("built"); // lint:allow(unwrap-expect)
        cluster.neat.heal_all();
        cluster.neat.heal_all_degrades();
        // Bring crashed-but-never-restarted nodes back before judging.
        let servers = cluster.servers.clone();
        cluster.neat.restart(&servers);
        cluster.settle(3000);
        let final_state: BTreeMap<String, Option<u64>> = cluster.final_state(&Self::keys());
        check_register(
            cluster.neat.history(),
            RegisterSemantics::Strong,
            &final_state,
        )
    }

    fn timeline(&mut self) -> neat::obs::Timeline {
        self.cluster().neat.timeline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat::explore::{explore, Strategy};

    #[test]
    fn proven_raft_survives_guided_exploration() {
        let mut target = RaftTarget::new(RaftTweaks::default(), 3);
        let report = explore(&mut target, &Strategy::findings_guided(), 12, 4242);
        assert_eq!(
            report.trials_with_violation, 0,
            "proven Raft must not produce violations: {report:?}"
        );
    }

    #[test]
    fn tweaked_raft_needs_the_admin_event_so_random_ops_stay_clean() {
        // The RethinkDB flaw needs a reconfiguration; the basic palette
        // cannot trigger it, which mirrors the paper's point that admin
        // operations are part of the event space (Table 8).
        let mut target = RaftTarget::new(
            RaftTweaks {
                delete_log_on_remove: true,
            },
            3,
        );
        let report = explore(&mut target, &Strategy::findings_guided(), 6, 4242);
        assert_eq!(report.trials_with_violation, 0, "{report:?}");
    }
}
