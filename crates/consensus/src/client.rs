//! Client process and synchronous wrapper for the Raft cluster.

use std::collections::BTreeMap;

use neat::{Neat, Op, OpRecord, Outcome};
use simnet::{Ctx, NodeId};

use crate::{
    cluster::RaftProc,
    raft::{RaftMsg, RaftReq, RaftResp},
};

/// Client-side process: sends requests and collects responses by id.
#[derive(Default)]
pub struct ClientProc {
    next_op: u64,
    results: BTreeMap<u64, RaftResp>,
}

impl ClientProc {
    /// Sends `req` to `server`, returning the operation id.
    pub fn start(&mut self, ctx: &mut Ctx<'_, RaftMsg>, server: NodeId, req: RaftReq) -> u64 {
        let op_id = (ctx.id().0 as u64) << 32 | self.next_op;
        self.next_op += 1;
        ctx.send(server, RaftMsg::ClientReq { op_id, req });
        op_id
    }

    /// Removes and returns the response for `op_id`, if present.
    pub fn take(&mut self, op_id: u64) -> Option<RaftResp> {
        self.results.remove(&op_id)
    }

    pub(crate) fn on_message(&mut self, msg: RaftMsg) {
        if let RaftMsg::ClientResp { op_id, resp } = msg {
            self.results.insert(op_id, resp);
        }
    }
}

/// Synchronous client handle for one client node and one target server.
#[derive(Clone, Copy, Debug)]
pub struct RaftClient {
    pub node: NodeId,
    pub target: NodeId,
}

impl RaftClient {
    /// Points the handle at a different server.
    pub fn via(self, target: NodeId) -> Self {
        Self { target, ..self }
    }

    fn run(&self, neat: &mut Neat<RaftProc>, req: RaftReq, op: Op) -> Outcome {
        let start = neat.now();
        let target = self.target;
        let started = neat
            .world
            .call(self.node, |p, ctx| p.client_mut().start(ctx, target, req.clone()));
        let outcome = match started {
            Err(_) => Outcome::Timeout,
            Ok(op_id) => {
                let node = self.node;
                match neat.run_op(|_| Ok(()), |w| w.app_mut(node).client_mut().take(op_id)) {
                    Some(RaftResp::Ok) => Outcome::Ok(None),
                    Some(RaftResp::Value(v)) => Outcome::Ok(v),
                    Some(RaftResp::Fail) => Outcome::Fail,
                    None => Outcome::Timeout,
                }
            }
        };
        let end = neat.now();
        neat.record(OpRecord {
            client: self.node,
            op,
            outcome: outcome.clone(),
            start,
            end,
        });
        outcome
    }

    /// Replicated write.
    pub fn put(&self, neat: &mut Neat<RaftProc>, key: &str, val: u64) -> Outcome {
        self.run(
            neat,
            RaftReq::Put {
                key: key.into(),
                val,
            },
            Op::Write {
                key: key.into(),
                val,
            },
        )
    }

    /// Leased leader read.
    pub fn get(&self, neat: &mut Neat<RaftProc>, key: &str) -> Outcome {
        self.run(
            neat,
            RaftReq::Get { key: key.into() },
            Op::Read { key: key.into() },
        )
    }

    /// Replicated delete.
    pub fn delete(&self, neat: &mut Neat<RaftProc>, key: &str) -> Outcome {
        self.run(
            neat,
            RaftReq::Delete { key: key.into() },
            Op::Delete { key: key.into() },
        )
    }

    /// Administrative membership change (the paper's "admin removing a
    /// node" event class, Table 8).
    pub fn reconfigure(&self, neat: &mut Neat<RaftProc>, members: Vec<NodeId>) -> Outcome {
        self.run(
            neat,
            RaftReq::Reconfigure {
                members: members.clone(),
            },
            Op::Other {
                label: format!("reconfigure{members:?}"),
            },
        )
    }
}
