//! Raft cluster assembly and inspection helpers.

use std::collections::BTreeMap;

use neat::Neat;
use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};

use crate::{
    client::{ClientProc, RaftClient},
    raft::{RaftMsg, RaftNode, RaftRole, RaftTweaks},
};

/// A node of the Raft deployment.
pub enum RaftProc {
    Server(Box<RaftNode>),
    Client(ClientProc),
}

impl RaftProc {
    /// Server state.
    ///
    /// # Panics
    ///
    /// Panics on client nodes.
    pub fn server(&self) -> &RaftNode {
        match self {
            RaftProc::Server(s) => s,
            RaftProc::Client(_) => panic!("not a server node"),
        }
    }

    /// Mutable client state.
    ///
    /// # Panics
    ///
    /// Panics on server nodes.
    pub fn client_mut(&mut self) -> &mut ClientProc {
        match self {
            RaftProc::Client(c) => c,
            RaftProc::Server(_) => panic!("not a client node"),
        }
    }
}

impl Application for RaftProc {
    type Msg = RaftMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, RaftMsg>) {
        if let RaftProc::Server(s) = self {
            s.start(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, RaftMsg>, from: NodeId, msg: RaftMsg) {
        match self {
            RaftProc::Server(s) => s.on_message(ctx, from, msg),
            RaftProc::Client(c) => c.on_message(msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, RaftMsg>, timer: TimerId, tag: u64) {
        if let RaftProc::Server(s) = self {
            s.on_timer(ctx, timer, tag);
        }
    }

    fn on_crash(&mut self) {
        if let RaftProc::Server(s) = self {
            s.on_crash();
        }
    }
}

/// Deployment shape for a Raft cluster.
#[derive(Clone, Copy, Debug)]
pub struct RaftClusterSpec {
    pub servers: usize,
    pub clients: usize,
    pub tweaks: RaftTweaks,
    pub seed: u64,
    pub record_trace: bool,
}

impl RaftClusterSpec {
    /// `n` servers, two clients, no tweaks.
    pub fn baseline(servers: usize, seed: u64) -> Self {
        Self {
            servers,
            clients: 2,
            tweaks: RaftTweaks::default(),
            seed,
            record_trace: false,
        }
    }
}

/// A running Raft deployment under the NEAT engine.
pub struct RaftCluster {
    pub neat: Neat<RaftProc>,
    pub servers: Vec<NodeId>,
    pub clients: Vec<NodeId>,
}

impl RaftCluster {
    /// Builds and boots the deployment.
    pub fn build(spec: RaftClusterSpec) -> Self {
        let servers: Vec<NodeId> = (0..spec.servers).map(NodeId).collect();
        let clients: Vec<NodeId> = (spec.servers..spec.servers + spec.clients)
            .map(NodeId)
            .collect();
        let world = WorldBuilder::new(spec.seed)
            .record_trace(spec.record_trace)
            // Historical high-water mark of the consensus arms (longest:
            // rethinkdb_reconfig_split_brain, ~956 events at seed 8).
            .event_capacity(1024)
            .build(spec.servers + spec.clients, |id| {
                if id.0 < spec.servers {
                    RaftProc::Server(Box::new(RaftNode::new(id, servers.clone(), spec.tweaks)))
                } else {
                    RaftProc::Client(ClientProc::default())
                }
            });
        Self {
            neat: Neat::new(world),
            servers,
            clients,
        }
    }

    /// Client handle `i`, initially pointed at server 0.
    pub fn client(&self, i: usize) -> RaftClient {
        RaftClient {
            node: self.clients[i],
            target: self.servers[0],
        }
    }

    /// All live nodes currently claiming leadership.
    pub fn leaders(&self) -> Vec<NodeId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| self.neat.world.is_alive(s))
            .filter(|&s| self.neat.world.app(s).server().role() == RaftRole::Leader)
            .collect()
    }

    /// The live leader with the highest term, if any.
    pub fn leader(&self) -> Option<NodeId> {
        self.leaders()
            .into_iter()
            .max_by_key(|&s| self.neat.world.app(s).server().term())
    }

    /// Runs until a leader exists or `max_ms` elapses.
    pub fn wait_for_leader(&mut self, max_ms: u64) -> Option<NodeId> {
        let deadline = self.neat.now() + max_ms;
        loop {
            if let Some(l) = self.leader() {
                return Some(l);
            }
            if self.neat.now() >= deadline {
                return None;
            }
            self.neat.sleep(10);
        }
    }

    /// Advances virtual time.
    pub fn settle(&mut self, ms: u64) {
        self.neat.sleep(ms);
    }

    /// A server's committed KV state.
    pub fn kv_of(&self, server: NodeId) -> BTreeMap<String, u64> {
        self.neat.world.app(server).server().kv().clone()
    }

    /// Final state of `keys` from the highest-term leader's committed store.
    pub fn final_state(&self, keys: &[&str]) -> BTreeMap<String, Option<u64>> {
        let leader = self.leader().unwrap_or(self.servers[0]);
        let kv = self.kv_of(leader);
        keys.iter()
            .map(|k| (k.to_string(), kv.get(*k).copied()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat::{rest_of, Outcome};

    fn cluster(n: usize, seed: u64) -> RaftCluster {
        RaftCluster::build(RaftClusterSpec::baseline(n, seed))
    }

    #[test]
    fn elects_a_leader() {
        let mut c = cluster(3, 1);
        assert!(c.wait_for_leader(2000).is_some());
    }

    #[test]
    fn five_node_cluster_elects_a_leader() {
        let mut c = cluster(5, 2);
        assert!(c.wait_for_leader(2000).is_some());
    }

    #[test]
    fn put_get_round_trip() {
        let mut c = cluster(3, 3);
        let l = c.wait_for_leader(2000).unwrap();
        let cl = c.client(0).via(l);
        assert_eq!(cl.put(&mut c.neat, "x", 1), Outcome::Ok(None));
        assert_eq!(cl.get(&mut c.neat, "x"), Outcome::Ok(Some(1)));
    }

    #[test]
    fn committed_entries_replicate_everywhere() {
        let mut c = cluster(3, 4);
        let l = c.wait_for_leader(2000).unwrap();
        let cl = c.client(0).via(l);
        cl.put(&mut c.neat, "x", 1);
        c.settle(500);
        for s in c.servers.clone() {
            assert_eq!(c.kv_of(s).get("x"), Some(&1), "{s}");
        }
    }

    #[test]
    fn at_most_one_leader_per_term() {
        let mut c = cluster(5, 5);
        c.wait_for_leader(2000).unwrap();
        for round in 0..10 {
            c.settle(200);
            let mut terms = std::collections::BTreeMap::new();
            for &s in &c.servers {
                let sv = c.neat.world.app(s).server();
                if sv.role() == RaftRole::Leader {
                    let prev = terms.insert(sv.term(), s);
                    assert!(prev.is_none(), "two leaders in term {} (round {round})", sv.term());
                }
            }
        }
    }

    #[test]
    fn leader_crash_triggers_failover_without_losing_writes() {
        let mut c = cluster(3, 6);
        let l = c.wait_for_leader(2000).unwrap();
        let cl = c.client(0).via(l);
        assert!(cl.put(&mut c.neat, "x", 1).is_ok());
        c.neat.crash(&[l]);
        let l2 = c.wait_for_leader(3000).expect("failover leader");
        assert_ne!(l, l2);
        let cl2 = c.client(1).via(l2);
        assert_eq!(cl2.get(&mut c.neat, "x"), Outcome::Ok(Some(1)));
    }

    #[test]
    fn minority_partitioned_leader_cannot_commit() {
        let mut c = cluster(3, 7);
        let l = c.wait_for_leader(2000).unwrap();
        let rest = rest_of(&c.servers, &[l]);
        // Leave the client connected to the old leader only.
        c.neat
            .partition_complete(&[l, c.clients[0]], &rest_of(&c.neat.world.node_ids(), &[l, c.clients[0]]));
        let cl = c.client(0).via(l);
        let w = cl.put(&mut c.neat, "x", 9);
        assert!(
            !w.is_ok(),
            "a minority leader must not acknowledge writes: {w:?}"
        );
        // The majority side elects and serves.
        c.settle(1000);
        let l2 = c.leader().expect("majority leader");
        assert!(rest.contains(&l2));
    }

    #[test]
    fn stale_leader_reads_are_refused_after_lease_expiry() {
        let mut c = cluster(3, 8);
        let l = c.wait_for_leader(2000).unwrap();
        let cl = c.client(0).via(l);
        cl.put(&mut c.neat, "x", 1);
        c.neat.partition_complete(
            &[l, c.clients[0]],
            &rest_of(&c.neat.world.node_ids(), &[l, c.clients[0]]),
        );
        // Let the lease lapse, then read at the old leader.
        c.settle(400);
        let r = cl.get(&mut c.neat, "x");
        assert!(!matches!(r, Outcome::Ok(_)), "stale read served: {r:?}");
    }

    #[test]
    fn divergent_follower_log_is_repaired() {
        let mut c = cluster(3, 9);
        let l = c.wait_for_leader(2000).unwrap();
        let cl = c.client(0).via(l);
        cl.put(&mut c.neat, "a", 1);
        // Isolate the leader with the client; it appends uncommitted junk.
        let p = c.neat.partition_complete(
            &[l, c.clients[0]],
            &rest_of(&c.neat.world.node_ids(), &[l, c.clients[0]]),
        );
        cl.put(&mut c.neat, "junk", 99); // times out, stays uncommitted
        c.settle(800);
        let l2 = c.leader().expect("new leader");
        assert_ne!(l, l2);
        let cl2 = c.client(1).via(l2);
        cl2.put(&mut c.neat, "b", 2);
        c.neat.heal(&p);
        c.settle(1500);
        // The old leader's junk must be gone; committed writes survive.
        for s in c.servers.clone() {
            let kv = c.kv_of(s);
            assert_eq!(kv.get("a"), Some(&1), "{s}");
            assert_eq!(kv.get("b"), Some(&2), "{s}");
            assert_eq!(kv.get("junk"), None, "{s} kept uncommitted junk");
        }
    }

    #[test]
    fn reconfigure_shrinks_the_cluster() {
        let mut c = cluster(5, 10);
        let l = c.wait_for_leader(2000).unwrap();
        let cl = c.client(0).via(l);
        let others = rest_of(&c.servers, &[l]);
        let new_members = vec![l, others[0], others[1]];
        assert!(cl.reconfigure(&mut c.neat, new_members.clone()).is_ok());
        c.settle(500);
        let mut got = c.neat.world.app(l).server().members();
        got.sort();
        let mut want = new_members;
        want.sort();
        assert_eq!(got, want);
        // Removed members retired (baseline behaviour keeps their logs).
        for s in [others[2], others[3]] {
            assert!(c.neat.world.app(s).server().removed, "{s} not retired");
        }
    }
}
