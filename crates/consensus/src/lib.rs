//! Raft consensus — the paper's "proven, strongly consistent protocol"
//! baseline — plus the RethinkDB tweak that breaks it.
//!
//! The paper (§2.2, §4.4) observes that systems implementing proven
//! protocols "often tweak these protocols in unproven ways". RethinkDB's
//! tweak: *a replica removed from the cluster deletes its Raft log*. With a
//! partial partition, the deleted log erases the membership-change entry,
//! the removed replica happily participates in the **old** configuration,
//! and two disjoint majorities commit writes for the same keys
//! (issue #5289). [`RaftTweaks::delete_log_on_remove`] reproduces it;
//! leaving the flag off gives the correct Raft behaviour the benches use as
//! the baseline.

pub mod client;
pub mod explorer;
pub mod cluster;
pub mod raft;
pub mod scenarios;

pub use client::RaftClient;
pub use cluster::{RaftCluster, RaftClusterSpec, RaftProc};
pub use raft::{Cmd, RaftMsg, RaftNode, RaftRole, RaftTweaks};
pub use explorer::RaftTarget;
