//! Property tests for the workload samplers: seed stability (the same
//! seed yields the identical sequence) and distribution sanity (hot-key
//! mass and Poisson mean inter-arrival land within tolerance).

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use workload::{Arrival, Driver, KeySampler, Keyspace, Mix, Pacing, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn zipfian_sampler_is_seed_stable(
        seed in 0u64..100_000,
        keys in 2usize..64,
    ) {
        let space = Keyspace::Zipfian { keys, theta: 0.99 };
        let s = KeySampler::new(&space);
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            prop_assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn poisson_gaps_are_seed_stable(
        seed in 0u64..100_000,
        rate_x10 in 10u64..2_000,
    ) {
        let a = Arrival::Poisson { rate: rate_x10 as f64 / 10.0 };
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        for t in 0..256u64 {
            prop_assert_eq!(a.gap(&mut r1, t), a.gap(&mut r2, t));
        }
    }

    #[test]
    fn hot_key_mass_lands_within_tolerance(
        seed in 0u64..100_000,
        mass_pct in 30u64..95,
    ) {
        let space = Keyspace::HotKey { keys: 16, hot_mass: mass_pct as f64 / 100.0 };
        let s = KeySampler::new(&space);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 6000u64;
        let hot = (0..n).filter(|_| s.sample(&mut rng) == 0).count() as u64;
        let want = n * mass_pct / 100;
        // 6000 draws: allow a generous ±5 percentage-point band.
        let slack = n * 5 / 100;
        prop_assert!(
            hot + slack >= want && hot <= want + slack,
            "hot={} want={} (mass {}%)", hot, want, mass_pct
        );
    }

    #[test]
    fn poisson_mean_gap_within_tolerance(
        seed in 0u64..100_000,
        rate in 5u64..200,
    ) {
        let a = Arrival::Poisson { rate: rate as f64 };
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4000u64;
        let total: u64 = (0..n).map(|_| a.gap(&mut rng, 0)).sum();
        let mean_x100 = total * 100 / n;
        let want_x100 = 100_000 / rate; // 1000 ms/s * 100 / rate
        // The floor cast biases the mean down by up to 0.5 ms; accept a
        // ±25% band plus that constant.
        let lo = want_x100 * 75 / 100;
        let hi = want_x100 * 125 / 100 + 50;
        prop_assert!(
            (lo..=hi).contains(&(mean_x100 + 50)),
            "mean_x100={} want_x100={} rate={}", mean_x100, want_x100, rate
        );
    }

    #[test]
    fn driver_stream_is_seed_stable_across_pacings(
        seed in 0u64..100_000,
        closed in proptest::bool::ANY,
    ) {
        let pacing = if closed {
            Pacing::Closed { clients: 3, think_ms: 20 }
        } else {
            Pacing::Open(Arrival::Bursty {
                base: 40.0,
                burst: 400.0,
                period_ms: 500,
                burst_ms: 100,
            })
        };
        let spec = WorkloadSpec {
            pacing,
            keyspace: Keyspace::Zipfian { keys: 8, theta: 0.9 },
            mix: Mix::read_write(1, 3),
            ops: 64,
            batch: 0,
            start_at: 5,
        };
        let mut a = Driver::new(spec.clone(), seed);
        let mut b = Driver::new(spec, seed);
        while let Some(op) = a.next_op() {
            prop_assert_eq!(Some(op.clone()), b.next_op());
            // Completions at fixed offsets keep closed-loop ready times in
            // lockstep on both drivers.
            a.complete(&op, op.at, op.at + 3, workload::OpStatus::Ok);
            b.complete(&op, op.at, op.at + 3, workload::OpStatus::Ok);
        }
        prop_assert_eq!(a.report(), b.report());
    }
}
