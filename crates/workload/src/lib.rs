//! Deterministic virtual-time load generation for NEAT scenarios.
//!
//! The paper's test listings drive a handful of globally-ordered client
//! operations — enough to detect *whether* a fault produces a violation,
//! never how a fault interacts with *traffic* (retry storms, overload
//! during a heal, backlog-driven flapping). This crate generates that
//! traffic without giving up determinism: every schedule is a pure
//! function of a `u64` seed drawn through the same vendored xoshiro
//! generator family the simulator world uses, all timestamps are virtual
//! milliseconds, and latency accounting uses exact integer histograms —
//! so a sharded `fleet --jobs K` run merges to byte-identical output for
//! any `K`.
//!
//! The pieces:
//!
//! - [`keyspace`]: which key the next operation addresses (uniform,
//!   zipfian, hot-key);
//! - [`arrival`]: when the next open-loop request arrives (Poisson,
//!   bursty, rate ramp);
//! - [`driver`]: the [`Driver`] walking a workload spec — open loop
//!   (arrivals independent of completions, so overload shows up as
//!   scheduling lag) or closed loop (N virtual clients with think time);
//! - [`stats`]: exact nearest-rank percentiles ([`Histogram`]) and the
//!   mergeable per-run [`LoadReport`].
//!
//! The driver is system-agnostic: scenario code in the system crates
//! pulls [`PlannedOp`]s, executes them against its own client wrapper,
//! and feeds completions back.

#![deny(missing_docs)]

pub mod arrival;
pub mod driver;
pub mod keyspace;
pub mod stats;

pub use arrival::Arrival;
pub use driver::{Driver, Mix, OpKind, OpStatus, Pacing, PlannedOp, WorkloadSpec};
pub use keyspace::{KeySampler, Keyspace};
pub use stats::{Histogram, LoadReport};

/// A uniform draw in `[0, 1)` from the top 53 bits of a `u64` — the same
/// idiom the `rand` shim's `gen_bool` uses, so every float in this crate
/// derives from one integer bit pattern (byte-deterministic everywhere).
pub(crate) fn unit<R: rand::RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}
