//! The workload driver: turns a spec and a seed into a deterministic
//! stream of [`PlannedOp`]s and accounts for their completions.
//!
//! The driver is pull-based and system-agnostic. Scenario code loops:
//!
//! ```text
//! while let Some(op) = driver.next_op() {
//!     // sleep virtual time up to op.at if the sim is early;
//!     // execute against the system's client wrapper;
//!     driver.complete(&op, start, end, status);
//! }
//! let report = driver.report();
//! ```
//!
//! Open loop: arrival times come from the [`Arrival`] process and never
//! wait for completions — with synchronous clients, an overloaded system
//! falls *behind* the schedule, visible as `behind`/`max_lag` and as
//! queue-wait inflating every latency (latency is measured from the
//! scheduled arrival). Closed loop: `clients` virtual clients each issue
//! their next op `think_ms` after their previous completion.

use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

use crate::{
    arrival::Arrival,
    keyspace::{KeySampler, Keyspace},
    stats::LoadReport,
};

/// What kind of operation a planned slot carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Read the key.
    Read,
    /// Write a unique value to the key.
    Write,
    /// Increment the key by 1.
    Incr,
    /// Enqueue a unique value onto the key (message queues).
    Enqueue,
    /// A batch of writes starting at the key (see [`WorkloadSpec::batch`]).
    Batch,
}

/// How one completed operation ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpStatus {
    /// Acknowledged success.
    Ok,
    /// Explicit failure answer.
    Fail,
    /// Client timeout; outcome unknown.
    Timeout,
}

/// One operation the driver scheduled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedOp {
    /// Global sequence number, from 0.
    pub seq: u64,
    /// Virtual client issuing the op (always 0 in open loop).
    pub client: usize,
    /// Scheduled arrival (open loop) or ready time (closed loop), virtual ms.
    pub at: u64,
    /// Operation kind, drawn from the [`Mix`].
    pub kind: OpKind,
    /// Key index into the keyspace.
    pub key: usize,
    /// Unique value for mutations (`seq + 1`, so 0 never collides).
    pub val: u64,
}

/// Relative weights of the operation kinds; zero excludes a kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Weight of [`OpKind::Read`].
    pub read: u32,
    /// Weight of [`OpKind::Write`].
    pub write: u32,
    /// Weight of [`OpKind::Incr`].
    pub incr: u32,
    /// Weight of [`OpKind::Enqueue`].
    pub enqueue: u32,
}

impl Mix {
    /// Only writes.
    pub fn writes() -> Self {
        Mix { read: 0, write: 1, incr: 0, enqueue: 0 }
    }

    /// Only increments.
    pub fn incrs() -> Self {
        Mix { read: 0, write: 0, incr: 1, enqueue: 0 }
    }

    /// Only enqueues.
    pub fn enqueues() -> Self {
        Mix { read: 0, write: 0, incr: 0, enqueue: 1 }
    }

    /// Reads and writes at the given weights.
    pub fn read_write(read: u32, write: u32) -> Self {
        Mix { read, write, incr: 0, enqueue: 0 }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> OpKind {
        let total = self.read + self.write + self.incr + self.enqueue;
        assert!(total > 0, "empty op mix");
        let mut pick = rng.gen_range(0..total);
        for (kind, w) in [
            (OpKind::Read, self.read),
            (OpKind::Write, self.write),
            (OpKind::Incr, self.incr),
            (OpKind::Enqueue, self.enqueue),
        ] {
            if pick < w {
                return kind;
            }
            pick -= w;
        }
        unreachable!("pick exceeded total weight")
    }
}

/// Open loop (arrivals independent of completions) or closed loop
/// (completions gate the next issue).
#[derive(Clone, Debug, PartialEq)]
pub enum Pacing {
    /// Open loop under the given arrival process.
    Open(Arrival),
    /// Closed loop: `clients` virtual clients, each waiting `think_ms`
    /// after a completion before its next issue.
    Closed {
        /// Number of virtual clients (`>= 1`).
        clients: usize,
        /// Think time between a completion and the client's next op, ms.
        think_ms: u64,
    },
}

/// Everything that defines a workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Open- or closed-loop pacing.
    pub pacing: Pacing,
    /// Key popularity distribution.
    pub keyspace: Keyspace,
    /// Operation mix.
    pub mix: Mix,
    /// Total operations to issue.
    pub ops: u64,
    /// Writes per batch; values `>= 2` turn every slot into an
    /// [`OpKind::Batch`] of this many writes to consecutive keys.
    pub batch: u32,
    /// Virtual time of the first arrival.
    pub start_at: u64,
}

/// The deterministic workload driver. See the [module docs](self) for the
/// pull/complete protocol.
#[derive(Debug)]
pub struct Driver {
    spec: WorkloadSpec,
    sampler: KeySampler,
    rng: StdRng,
    issued: u64,
    next_arrival: u64,
    /// Per-client ready times (closed loop).
    ready: Vec<u64>,
    report: LoadReport,
}

impl Driver {
    /// Builds a driver; the op stream is a pure function of
    /// `(spec, seed)`.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        let sampler = KeySampler::new(&spec.keyspace);
        // Decorrelate from world seeds that tend to be small integers.
        let rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let (next_arrival, ready) = match &spec.pacing {
            Pacing::Open(_) => (spec.start_at, Vec::new()),
            Pacing::Closed { clients, .. } => {
                assert!(*clients >= 1, "closed loop needs at least one client");
                (0, vec![spec.start_at; *clients])
            }
        };
        Self {
            spec,
            sampler,
            rng,
            issued: 0,
            next_arrival,
            ready,
            report: LoadReport::default(),
        }
    }

    /// The next operation to issue, or `None` once `spec.ops` have been
    /// produced. The caller is expected to execute ops in the order they
    /// are pulled (the simulation is single-threaded, so this is the only
    /// order there is).
    pub fn next_op(&mut self) -> Option<PlannedOp> {
        if self.issued >= self.spec.ops {
            return None;
        }
        let seq = self.issued;
        self.issued += 1;
        self.report.issued += 1;
        let (client, at) = match &self.spec.pacing {
            Pacing::Open(arrival) => {
                let at = self.next_arrival;
                self.next_arrival = at + arrival.gap(&mut self.rng, at);
                (0, at)
            }
            Pacing::Closed { .. } => {
                // The client that becomes ready first issues next; ties go
                // to the lowest client id.
                let client = (0..self.ready.len())
                    .min_by_key(|&c| (self.ready[c], c))
                    .unwrap_or(0);
                (client, self.ready[client])
            }
        };
        let kind = if self.spec.batch >= 2 {
            OpKind::Batch
        } else {
            self.spec.mix.choose(&mut self.rng)
        };
        let key = self.sampler.sample(&mut self.rng);
        Some(PlannedOp {
            seq,
            client,
            at,
            kind,
            key,
            val: seq + 1,
        })
    }

    /// Records that `op` was issued at `start` and completed at `end`
    /// with `status`. Latency counts from the *scheduled* arrival, so
    /// open-loop queue wait is part of it.
    pub fn complete(&mut self, op: &PlannedOp, start: u64, end: u64, status: OpStatus) {
        self.report.completed += 1;
        match status {
            OpStatus::Ok => self.report.ok += 1,
            OpStatus::Fail => self.report.failed += 1,
            OpStatus::Timeout => self.report.timed_out += 1,
        }
        let lag = start.saturating_sub(op.at);
        if lag > 0 {
            self.report.behind += 1;
            self.report.max_lag = self.report.max_lag.max(lag);
        }
        self.report.latency.record(end.saturating_sub(op.at));
        if let Pacing::Closed { think_ms, .. } = self.spec.pacing {
            if let Some(slot) = self.ready.get_mut(op.client) {
                *slot = end + think_ms;
            }
        }
    }

    /// Operations issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Issued minus completed.
    pub fn in_flight(&self) -> u64 {
        self.issued - self.report.completed
    }

    /// How many issued ops ran behind schedule so far.
    pub fn behind(&self) -> u64 {
        self.report.behind
    }

    /// The accumulated report.
    pub fn report(&self) -> &LoadReport {
        &self.report
    }

    /// Consumes the driver, yielding the final report.
    pub fn into_report(self) -> LoadReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_spec(ops: u64) -> WorkloadSpec {
        WorkloadSpec {
            pacing: Pacing::Open(Arrival::Poisson { rate: 100.0 }),
            keyspace: Keyspace::Uniform { keys: 4 },
            mix: Mix::read_write(1, 1),
            ops,
            batch: 0,
            start_at: 10,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Driver::new(open_spec(50), 8);
        let mut b = Driver::new(open_spec(50), 8);
        while let Some(op) = a.next_op() {
            assert_eq!(Some(op), b.next_op());
        }
        assert_eq!(b.next_op(), None);
    }

    #[test]
    fn open_loop_arrivals_are_nondecreasing_and_vals_unique() {
        let mut d = Driver::new(open_spec(100), 3);
        let mut last = 0;
        let mut vals = std::collections::BTreeSet::new();
        while let Some(op) = d.next_op() {
            assert!(op.at >= last);
            last = op.at;
            assert!(vals.insert(op.val));
        }
        assert_eq!(vals.len(), 100);
    }

    #[test]
    fn closed_loop_spaces_by_think_time() {
        let spec = WorkloadSpec {
            pacing: Pacing::Closed { clients: 2, think_ms: 30 },
            keyspace: Keyspace::Uniform { keys: 2 },
            mix: Mix::writes(),
            ops: 6,
            batch: 0,
            start_at: 0,
        };
        let mut d = Driver::new(spec, 1);
        let mut ends = [0u64; 2];
        while let Some(op) = d.next_op() {
            // Each op takes 5 virtual ms to execute.
            let start = op.at.max(ends[op.client]);
            let end = start + 5;
            ends[op.client] = end;
            d.complete(&op, start, end, OpStatus::Ok);
        }
        let r = d.report();
        assert_eq!(r.issued, 6);
        assert_eq!(r.ok, 6);
        // Three ops per client: 0..5, think to 35..40, think to 70..75.
        assert_eq!(r.latency.max(), Some(5));
    }

    #[test]
    fn behind_schedule_ops_count_and_lag() {
        let mut d = Driver::new(open_spec(10), 5);
        while let Some(op) = d.next_op() {
            // Execute everything 100 ms late.
            d.complete(&op, op.at + 100, op.at + 120, OpStatus::Timeout);
        }
        let r = d.report();
        assert_eq!(r.behind, 10);
        assert_eq!(r.max_lag, 100);
        assert_eq!(r.timed_out, 10);
        assert_eq!(r.latency.max(), Some(120));
    }

    #[test]
    fn batch_spec_yields_batch_ops() {
        let spec = WorkloadSpec {
            batch: 4,
            ..open_spec(5)
        };
        let mut d = Driver::new(spec, 2);
        while let Some(op) = d.next_op() {
            assert_eq!(op.kind, OpKind::Batch);
        }
    }

    #[test]
    fn mix_weights_respected() {
        let spec = WorkloadSpec {
            mix: Mix::incrs(),
            ..open_spec(40)
        };
        let mut d = Driver::new(spec, 4);
        while let Some(op) = d.next_op() {
            assert_eq!(op.kind, OpKind::Incr);
        }
    }
}
