//! Exact latency accounting: integer histograms with nearest-rank
//! percentiles, and the mergeable per-run [`LoadReport`].
//!
//! Latencies are virtual milliseconds (`u64`), so the histogram is a
//! sparse count map with no binning error: merging two shard histograms
//! is plain count addition, and every percentile of the merged histogram
//! equals the percentile of the concatenated samples. That is what makes
//! a sharded 1M-op run byte-identical to the serial one at any `--jobs`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A sparse integer histogram: exact counts per observed value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds every count of `other` into `self` (shard merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (&v, &n) in &other.counts {
            *self.counts.entry(v).or_insert(0) += n;
        }
        self.total += other.total;
    }

    /// The exact nearest-rank percentile `num/den` (e.g. `p99` is
    /// `percentile(99, 100)`): the smallest recorded value whose
    /// cumulative count reaches `ceil(total * num / den)`. `None` on an
    /// empty histogram.
    pub fn percentile(&self, num: u64, den: u64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = (self.total * num).div_ceil(den).max(1);
        let mut seen = 0;
        for (&v, &n) in &self.counts {
            seen += n;
            if seen >= rank {
                return Some(v);
            }
        }
        self.counts.keys().next_back().copied()
    }

    /// Median (nearest rank).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50, 100)
    }

    /// 99th percentile (nearest rank).
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99, 100)
    }

    /// 99.9th percentile (nearest rank).
    pub fn p999(&self) -> Option<u64> {
        self.percentile(999, 1000)
    }

    /// Largest recorded value.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }
}

/// Per-run load accounting: issue/outcome counts, schedule lag, and the
/// latency histogram. Reports from independent shards [`merge`] into the
/// same report a serial run would produce.
///
/// [`merge`]: LoadReport::merge
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Operations issued.
    pub issued: u64,
    /// Operations completed (any outcome).
    pub completed: u64,
    /// Completed with `Ok`.
    pub ok: u64,
    /// Completed with an explicit failure answer.
    pub failed: u64,
    /// Completed by client timeout (outcome unknown).
    pub timed_out: u64,
    /// Operations issued after their scheduled arrival (open-loop backlog).
    pub behind: u64,
    /// Largest issue-time lag behind the schedule, virtual ms.
    pub max_lag: u64,
    /// Completion latency (completion minus *scheduled* arrival, so queue
    /// wait counts), virtual ms.
    pub latency: Histogram,
}

impl LoadReport {
    /// Adds the counts of `other` (shard merge).
    pub fn merge(&mut self, other: &LoadReport) {
        self.issued += other.issued;
        self.completed += other.completed;
        self.ok += other.ok;
        self.failed += other.failed;
        self.timed_out += other.timed_out;
        self.behind += other.behind;
        self.max_lag = self.max_lag.max(other.max_lag);
        self.latency.merge(&other.latency);
    }

    /// One-line deterministic rendering, stable across shardings.
    pub fn render(&self) -> String {
        let p = |v: Option<u64>| match v {
            Some(v) => v.to_string(),
            None => "-".to_string(),
        };
        let mut out = String::new();
        let _ = write!(
            out,
            "issued={} ok={} fail={} timeout={} behind={} max-lag={} \
             p50={} p99={} p999={} max={}",
            self.issued,
            self.ok,
            self.failed,
            self.timed_out,
            self.behind,
            self.max_lag,
            p(self.latency.p50()),
            p(self.latency.p99()),
            p(self.latency.p999()),
            p(self.latency.max()),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank_exact() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.p50(), Some(50));
        assert_eq!(h.p99(), Some(99));
        assert_eq!(h.p999(), Some(100));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.percentile(1, 100), Some(1));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..1000u64 {
            all.record(v * 7 % 113);
            if v % 2 == 0 {
                a.record(v * 7 % 113);
            } else {
                b.record(v * 7 % 113);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        assert_eq!(merged.p999(), all.p999());
    }

    #[test]
    fn report_merge_and_render_are_stable() {
        let mut a = LoadReport::default();
        a.issued = 3;
        a.completed = 3;
        a.ok = 2;
        a.timed_out = 1;
        a.latency.record(5);
        a.latency.record(7);
        let mut b = LoadReport::default();
        b.issued = 1;
        b.completed = 1;
        b.failed = 1;
        b.max_lag = 9;
        b.latency.record(11);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.issued, 4);
        assert_eq!(m.max_lag, 9);
        assert_eq!(
            m.render(),
            "issued=4 ok=2 fail=1 timeout=1 behind=0 max-lag=9 p50=7 p99=11 p999=11 max=11"
        );
    }

    #[test]
    fn empty_report_renders_dashes() {
        assert_eq!(
            LoadReport::default().render(),
            "issued=0 ok=0 fail=0 timeout=0 behind=0 max-lag=0 p50=- p99=- p999=- max=-"
        );
    }
}
