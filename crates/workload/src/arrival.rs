//! Open-loop arrival processes in virtual milliseconds.
//!
//! An open-loop driver issues requests on a schedule that does *not* wait
//! for completions — the defining property that lets overload show up as
//! scheduling lag instead of silently throttling the workload. Gaps are
//! drawn by inverse-CDF exponential sampling from the 53-bit uniform draw
//! of [`crate::unit`], so the whole schedule is a pure function of the
//! driver seed.

use rand::RngCore;

/// When the next open-loop request arrives.
#[derive(Clone, Debug, PartialEq)]
pub enum Arrival {
    /// A Poisson process: independent exponential inter-arrival gaps.
    Poisson {
        /// Mean arrivals per second. Audited rate knob.
        rate: f64, // lint:allow(float-nondet) -- audited arrival-rate knob, seeded draws only
    },
    /// A Poisson baseline with periodic bursts: every `period_ms` the rate
    /// switches to `burst` for `burst_ms`, then falls back to `base`.
    Bursty {
        /// Baseline arrivals per second. Audited rate knob.
        base: f64, // lint:allow(float-nondet) -- audited arrival-rate knob, seeded draws only
        /// In-burst arrivals per second. Audited rate knob.
        burst: f64, // lint:allow(float-nondet) -- audited arrival-rate knob, seeded draws only
        /// Burst period, virtual ms.
        period_ms: u64,
        /// Burst length, virtual ms (`< period_ms`).
        burst_ms: u64,
    },
    /// A linear rate ramp from `from` to `to` arrivals per second over
    /// `ramp_ms`, flat at `to` afterwards.
    Ramp {
        /// Starting arrivals per second. Audited rate knob.
        from: f64, // lint:allow(float-nondet) -- audited arrival-rate knob, seeded draws only
        /// Final arrivals per second. Audited rate knob.
        to: f64, // lint:allow(float-nondet) -- audited arrival-rate knob, seeded draws only
        /// Ramp duration, virtual ms.
        ramp_ms: u64,
    },
}

impl Arrival {
    /// Arrivals per second in effect at virtual time `at`.
    fn rate_at(&self, at: u64) -> f64 {
        match self {
            Arrival::Poisson { rate } => *rate,
            Arrival::Bursty {
                base,
                burst,
                period_ms,
                burst_ms,
            } => {
                if *period_ms > 0 && at % *period_ms < *burst_ms {
                    *burst
                } else {
                    *base
                }
            }
            Arrival::Ramp { from, to, ramp_ms } => {
                if *ramp_ms == 0 || at >= *ramp_ms {
                    *to
                } else {
                    from + (to - from) * (at as f64 / *ramp_ms as f64)
                }
            }
        }
    }

    /// Draws the gap (virtual ms) between an arrival at `at` and the next
    /// one: an exponential with the mean the current rate implies. The
    /// floor cast keeps everything integral; sub-millisecond gaps collapse
    /// to zero (several arrivals in the same tick — a legitimate burst).
    pub fn gap<R: RngCore + ?Sized>(&self, rng: &mut R, at: u64) -> u64 {
        let rate = self.rate_at(at).max(1e-9);
        let mean_ms = 1000.0 / rate;
        let u = crate::unit(rng);
        (-(1.0 - u).ln() * mean_ms) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn poisson_mean_gap_tracks_the_rate() {
        let a = Arrival::Poisson { rate: 20.0 }; // mean gap 50 ms
        let mut rng = StdRng::seed_from_u64(1);
        let total: u64 = (0..4000).map(|_| a.gap(&mut rng, 0)).sum();
        let mean = total / 4000;
        assert!((40..60).contains(&mean), "mean gap = {mean}");
    }

    #[test]
    fn bursty_rate_switches_inside_the_window() {
        let a = Arrival::Bursty {
            base: 10.0,
            burst: 1000.0,
            period_ms: 1000,
            burst_ms: 200,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let in_burst: u64 = (0..200).map(|_| a.gap(&mut rng, 100)).sum();
        let off_burst: u64 = (0..200).map(|_| a.gap(&mut rng, 500)).sum();
        assert!(in_burst * 10 < off_burst, "{in_burst} vs {off_burst}");
    }

    #[test]
    fn ramp_interpolates_then_flattens() {
        let a = Arrival::Ramp {
            from: 10.0,
            to: 100.0,
            ramp_ms: 1000,
        };
        assert!(a.rate_at(0) < a.rate_at(500));
        assert!(a.rate_at(500) < a.rate_at(999));
        assert_eq!(a.rate_at(1000).to_bits(), 100.0f64.to_bits());
        assert_eq!(a.rate_at(5000).to_bits(), 100.0f64.to_bits());
    }

    #[test]
    fn same_seed_same_gaps() {
        let a = Arrival::Poisson { rate: 50.0 };
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gap(&mut r1, 0), a.gap(&mut r2, 0));
        }
    }
}
