//! Keyspace distributions: which key the next operation addresses.
//!
//! All sampling goes through the vendored `rand` shim (xoshiro256++), so
//! a distribution is a pure function of the driver seed. The zipfian and
//! hot-key shapes carry `f64` knobs; both are audited float sites — the
//! floats only ever combine with the 53-bit uniform draw of
//! [`crate::unit`], never with wall-clock or platform-dependent state.

use rand::{Rng, RngCore};

/// A bounded keyspace and the popularity distribution over it.
#[derive(Clone, Debug, PartialEq)]
pub enum Keyspace {
    /// Every key equally likely.
    Uniform {
        /// Number of keys (`>= 1`).
        keys: usize,
    },
    /// Zipf-distributed popularity: key `i` is drawn with weight
    /// `1 / (i + 1)^theta`, so low-index keys dominate.
    Zipfian {
        /// Number of keys (`>= 1`).
        keys: usize,
        /// Skew exponent; `0.0` degenerates to uniform, `~0.99` is the
        /// classic YCSB default. Audited rate knob.
        theta: f64, // lint:allow(float-nondet) -- audited skew knob, seeded draws only
    },
    /// One designated hot key (index 0) takes a fixed probability mass;
    /// the remaining mass spreads uniformly over the other keys.
    HotKey {
        /// Number of keys (`>= 2`).
        keys: usize,
        /// Probability mass of the hot key, in `[0, 1]`. Audited knob.
        hot_mass: f64, // lint:allow(float-nondet) -- audited probability knob, seeded draws only
    },
}

impl Keyspace {
    /// Number of distinct keys in the space.
    pub fn keys(&self) -> usize {
        match self {
            Keyspace::Uniform { keys }
            | Keyspace::Zipfian { keys, .. }
            | Keyspace::HotKey { keys, .. } => *keys,
        }
    }
}

/// A prepared sampler: the cumulative mass table is computed once at
/// construction, so per-draw work is one RNG call plus a binary search
/// (uniform spaces skip the float path entirely).
#[derive(Clone, Debug)]
pub struct KeySampler {
    keys: usize,
    /// Cumulative probability mass per key (empty for uniform spaces).
    cum: Vec<f64>, // lint:allow(float-nondet) -- derived table of the audited knobs above
}

impl KeySampler {
    /// Prepares a sampler for `space`.
    ///
    /// # Panics
    ///
    /// Panics on an empty keyspace, a hot-key space with fewer than two
    /// keys, or a hot-key mass outside `[0, 1]`.
    pub fn new(space: &Keyspace) -> Self {
        let keys = space.keys();
        assert!(keys >= 1, "keyspace must hold at least one key");
        let cum = match space {
            Keyspace::Uniform { .. } => Vec::new(),
            Keyspace::Zipfian { theta, .. } => {
                let mut weights: Vec<f64> = (0..keys)
                    .map(|i| 1.0 / ((i + 1) as f64).powf(*theta))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w / total;
                    *w = acc;
                }
                weights
            }
            Keyspace::HotKey { hot_mass, .. } => {
                assert!(keys >= 2, "hot-key space needs a cold remainder");
                assert!(
                    (0.0..=1.0).contains(hot_mass),
                    "hot_mass not in [0, 1]: {hot_mass}"
                );
                let cold = (1.0 - hot_mass) / (keys - 1) as f64;
                let mut acc = 0.0;
                (0..keys)
                    .map(|i| {
                        acc += if i == 0 { *hot_mass } else { cold };
                        acc
                    })
                    .collect()
            }
        };
        Self { keys, cum }
    }

    /// Draws the next key index.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        if self.cum.is_empty() {
            return rng.gen_range(0..self.keys);
        }
        let u = crate::unit(rng);
        // First index whose cumulative mass covers the draw. The table is
        // nondecreasing, so a plain binary search needs no float compare
        // beyond `<`.
        let mut lo = 0;
        let mut hi = self.cum.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cum[mid] < u {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_covers_every_key() {
        let s = KeySampler::new(&Keyspace::Uniform { keys: 8 });
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[s.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn zipfian_zero_theta_is_uniformish() {
        let s = KeySampler::new(&Keyspace::Zipfian { keys: 4, theta: 0.0 });
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[s.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipfian_skews_toward_low_indices() {
        let s = KeySampler::new(&Keyspace::Zipfian { keys: 16, theta: 1.2 });
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 16];
        for _ in 0..4000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] * 4, "{counts:?}");
    }

    #[test]
    fn hot_key_takes_its_mass() {
        let s = KeySampler::new(&Keyspace::HotKey { keys: 10, hot_mass: 0.8 });
        let mut rng = StdRng::seed_from_u64(9);
        let hot = (0..5000).filter(|_| s.sample(&mut rng) == 0).count();
        assert!((3700..4300).contains(&hot), "hot draws = {hot}");
    }

    #[test]
    fn samples_stay_in_bounds() {
        for space in [
            Keyspace::Uniform { keys: 3 },
            Keyspace::Zipfian { keys: 3, theta: 0.99 },
            Keyspace::HotKey { keys: 3, hot_mass: 0.5 },
        ] {
            let s = KeySampler::new(&space);
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..500 {
                assert!(s.sample(&mut rng) < 3);
            }
        }
    }
}
