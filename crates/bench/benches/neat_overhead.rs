//! Figure 4 counterpart: the NEAT framework's own overhead.
//!
//! The paper's NEAT is 1553 lines of Java driving real machines; ours is a
//! virtual-time engine, so the relevant costs are simulator throughput,
//! partition-rule installation/heal, and the per-operation cost of the
//! globally ordered test engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::{
    net::bidirectional_pairs, Application, Ctx, NodeId, TimerId, WorldBuilder,
};

/// Ping-pong forever between two nodes.
struct Pinger;
impl Application for Pinger {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if ctx.id() == NodeId(0) {
            ctx.send(NodeId(1), 0);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        ctx.send(from, msg + 1);
    }
    fn on_timer(&mut self, _: &mut Ctx<'_, u64>, _: TimerId, _: u64) {}
}

fn simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    for events in [1_000u64, 10_000, 100_000] {
        g.bench_with_input(
            BenchmarkId::new("ping_pong_events", events),
            &events,
            |b, &events| {
                b.iter(|| {
                    let mut w = WorldBuilder::new(1).build(2, |_| Pinger);
                    for _ in 0..events {
                        w.step();
                    }
                    w.trace().counters.delivered
                })
            },
        );
    }
    g.finish();
}

fn partition_rules(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioner");
    for nodes in [5usize, 20, 50] {
        g.bench_with_input(
            BenchmarkId::new("install_and_heal", nodes),
            &nodes,
            |b, &nodes| {
                let ids: Vec<NodeId> = (0..nodes).map(NodeId).collect();
                let (a, rest) = ids.split_at(nodes / 2);
                b.iter(|| {
                    let mut w = WorldBuilder::new(1).build(nodes, |_| Pinger);
                    let r = w.block_pairs(bidirectional_pairs(a, rest));
                    w.unblock(r);
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("delivery_with_rules", nodes),
            &nodes,
            |b, &nodes| {
                // Message delivery cost while many unrelated rules are
                // installed (the is_blocked scan).
                let mut w = WorldBuilder::new(1).build(nodes, |_| Pinger);
                for i in 2..nodes {
                    w.block_pairs(bidirectional_pairs(&[NodeId(i)], &[NodeId((i + 1) % nodes)]));
                }
                b.iter(|| {
                    for _ in 0..1_000 {
                        w.step();
                    }
                })
            },
        );
    }
    g.finish();
}

fn engine_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("repkv_write_read_pair", |b| {
        let mut cluster = repkv::Cluster::build(repkv::ClusterSpec::three_by_two(
            repkv::Config::fixed(),
            1,
        ));
        let leader = cluster.wait_for_leader(3000).expect("leader");
        let client = cluster.client(0).via(leader);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            client.write(&mut cluster.neat, "bench", i);
            client.read(&mut cluster.neat, "bench")
        })
    });
    g.bench_function("cluster_boot_to_leader", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut cluster = repkv::Cluster::build(repkv::ClusterSpec::three_by_two(
                repkv::Config::fixed(),
                seed,
            ));
            cluster.wait_for_leader(3000)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = simulator_throughput, partition_rules, engine_ops
}
criterion_main!(benches);
