//! Finding 13 / §5.4: the findings-guided test generator versus naive
//! random testing. Criterion measures cost per exploration batch; the
//! bench also prints the hit rates (the shape the paper claims: guided
//! testing reproduces the failures; unguided testing mostly misses).

use criterion::{criterion_group, criterion_main, Criterion};
use neat::explore::{explore, Strategy};

fn exploration(c: &mut Criterion) {
    // Print the efficiency comparison once, so `cargo bench` output
    // contains the Finding-13 evidence alongside the timings.
    for (name, config) in [
        ("voltdb-flawed", repkv::Config::voltdb()),
        ("es-flawed", repkv::Config::elasticsearch()),
        ("fixed-baseline", repkv::Config::fixed()),
    ] {
        let mut target = repkv::RepkvTarget::new(config);
        let guided = explore(&mut target, &Strategy::findings_guided(), 30, 99);
        let naive = explore(&mut target, &Strategy::naive(3), 30, 99);
        println!(
            "exploration {name:<16} guided {:>2}/30 (first #{:?})  naive {:>2}/30",
            guided.trials_with_violation, guided.first_violation_trial, naive.trials_with_violation
        );
    }

    let mut g = c.benchmark_group("exploration");
    g.bench_function("guided_10_trials_voltdb", |b| {
        let mut target = repkv::RepkvTarget::new(repkv::Config::voltdb());
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            explore(&mut target, &Strategy::findings_guided(), 10, seed).trials_with_violation
        })
    });
    g.bench_function("naive_10_trials_voltdb", |b| {
        let mut target = repkv::RepkvTarget::new(repkv::Config::voltdb());
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            explore(&mut target, &Strategy::naive(3), 10, seed).trials_with_violation
        })
    });
    g.bench_function("guided_10_trials_raft_baseline", |b| {
        let mut target = consensus::RaftTarget::new(consensus::RaftTweaks::default(), 3);
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            explore(&mut target, &Strategy::findings_guided(), 10, seed).trials_with_violation
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = exploration
}
criterion_main!(benches);
