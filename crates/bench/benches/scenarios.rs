//! Per-scenario benches: how long each reproduced failure takes to run end
//! to end under the NEAT engine, flawed configuration vs repaired baseline
//! (the DESIGN.md ablations). Virtual time is free; this measures the real
//! cost of simulating each manifestation sequence.

use criterion::{criterion_group, criterion_main, Criterion};

fn repkv_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("repkv");
    g.bench_function("fig2_dirty_read_flawed", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            repkv::scenarios::dirty_and_stale_read(repkv::Config::voltdb(), seed, false)
                .violations
                .len()
        })
    });
    g.bench_function("fig2_dirty_read_fixed", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            repkv::scenarios::dirty_and_stale_read(repkv::Config::fixed(), seed, false)
                .violations
                .len()
        })
    });
    g.bench_function("listing1_data_loss_flawed", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            repkv::scenarios::listing1_data_loss(repkv::Config::elasticsearch(), seed, false)
                .violations
                .len()
        })
    });
    g.finish();
}

fn grid_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("gridstore");
    g.bench_function("fig5_semaphore_flawed", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            gridstore::scenarios::semaphore_double_lock(gridstore::GridFlaws::flawed(), seed, false)
                .violations
                .len()
        })
    });
    g.bench_function("fig5_semaphore_protected", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            gridstore::scenarios::semaphore_double_lock(gridstore::GridFlaws::fixed(), seed, false)
                .violations
                .len()
        })
    });
    g.finish();
}

fn consensus_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus");
    g.bench_function("rethinkdb_reconfig_tweaked", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            consensus::scenarios::rethinkdb_reconfig_split_brain(
                consensus::RaftTweaks {
                    delete_log_on_remove: true,
                },
                seed,
                false,
            )
            .violations
            .len()
        })
    });
    g.bench_function("rethinkdb_reconfig_proven", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            consensus::scenarios::rethinkdb_reconfig_split_brain(
                consensus::RaftTweaks::default(),
                seed,
                false,
            )
            .violations
            .len()
        })
    });
    g.finish();
}

fn full_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("all_scenarios_flawed_and_fixed", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            neat_repro::campaign::run_all_scenarios(seed).len()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = repkv_scenarios, grid_scenarios, consensus_scenarios, full_campaign
}
criterion_main!(benches);
