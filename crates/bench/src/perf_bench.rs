//! Hot-path performance measurement behind `BENCH_perf.json`.
//!
//! Three layers, cheapest proof first:
//!
//! 1. **Simulator microbenches** — events/sec through the slab-backed
//!    event queue (ping-pong delivery and a timer storm), sampled via the
//!    vendored criterion shim and read back as [`criterion::Measurement`]s.
//! 2. **Wall-clock before/after** — the full campaign, plus the audit
//!    sweep done two ways over the *same* arms: streamed (the shipping
//!    fast path, `RunMode::Hash` twice per arm) against rendered (the
//!    pre-streaming behaviour, materializing both fingerprint strings and
//!    hashing them).
//! 3. **Deterministic counters** — numbers CI can gate exactly, unlike
//!    wall-clock: per-arm allocation deltas under
//!    [`alloc_counter::CountingAlloc`] (the streamed fingerprint must add
//!    *zero* allocations over a plain traced run) and the total events
//!    simulated across the campaign. `tests/perf_gate.rs` recomputes
//!    these and diffs them against the committed JSON.
//!
//! Wall-clock time is banned workspace-wide by the determinism lint; like
//! [`crate::fleet_bench`], this module is an audited exception that only
//! ever measures, never steers.

use std::fmt::Write as _;

use criterion::{BenchmarkId, Criterion};
use neat_repro::campaign::{self, RunMode};
use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};

/// Runs `f` once and returns its result plus elapsed wall-clock ns.
#[allow(clippy::disallowed_types)]
fn time_ns<T>(f: impl FnOnce() -> T) -> (T, u64) {
    // lint:allow(wall-clock) -- bench measurement only; never read inside a simulation
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as u64)
}

/// Ping-pong forever between two nodes: every step is one delivery.
struct Pinger;
impl Application for Pinger {
    type Msg = u64;
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        if ctx.id() == NodeId(0) {
            ctx.send(NodeId(1), 0);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        ctx.send(from, msg + 1);
    }
    fn on_timer(&mut self, _: &mut Ctx<'_, u64>, _: TimerId, _: u64) {}
}

/// Keeps eight timers armed per node: every step fires one and schedules
/// one, exercising the heap's push/pop churn and the slab free list.
struct TimerStorm;
impl Application for TimerStorm {
    type Msg = ();
    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        for i in 0..8 {
            ctx.set_timer(1 + i, i);
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerId, tag: u64) {
        ctx.set_timer(1 + (tag % 7), tag);
    }
}

/// One simulator microbench: median time for `events` events.
#[derive(Clone, Debug)]
pub struct MicroMeasurement {
    pub label: String,
    /// Events processed per sample (each sample builds a fresh world).
    pub events: u64,
    pub median_ns: u64,
    /// `events / median`, the headline throughput number.
    pub events_per_sec: u64,
}

/// The audit sweep timed two ways over the same arms and seed.
#[derive(Clone, Debug)]
pub struct AuditMeasurement {
    pub arms: usize,
    /// Shipping fast path: stream-hash both runs, never render.
    pub streamed_wall_clock_ns: u64,
    /// Pre-streaming behaviour: render both fingerprints, hash the strings.
    pub rendered_wall_clock_ns: u64,
    /// rendered / streamed.
    pub speedup: f64,
}

/// Exactly reproducible numbers — the part `tests/perf_gate.rs` asserts.
#[derive(Clone, Debug)]
pub struct DeterministicCounts {
    /// Whether the measuring binary had [`alloc_counter::CountingAlloc`]
    /// installed; allocation counts are only meaningful when true.
    pub counting_allocator: bool,
    pub arms: usize,
    /// Σ over arms of |allocations(Hash run) − allocations(Trace run)|.
    /// The streaming fingerprint's whole point is that this is **0**.
    pub fingerprint_alloc_delta_total: u64,
    /// Allocations the *rendered* fingerprint adds over a traced run for
    /// the first arm — the cost the fast path avoids per arm, per run.
    pub render_allocs_sample: u64,
    /// Σ over arms of the traced run's `events_simulated` counter.
    pub events_simulated_total: u64,
}

/// Everything `BENCH_perf.json` records.
#[derive(Clone, Debug)]
pub struct PerfBench {
    pub seed: u64,
    pub micro: Vec<MicroMeasurement>,
    /// One full campaign (`run_all_scenarios`, checker verdicts only).
    pub campaign_wall_clock_ns: u64,
    pub audit: AuditMeasurement,
    pub deterministic: DeterministicCounts,
}

fn micro_benches(sample_size: usize) -> Vec<MicroMeasurement> {
    let mut c = Criterion::default().sample_size(sample_size);
    // (label suffix, events per sample) pairs, matched back up below.
    let mut volumes: Vec<(String, u64)> = Vec::new();
    {
        let mut g = c.benchmark_group("simnet");
        for events in [10_000u64, 100_000] {
            volumes.push((format!("simnet/ping_pong/{events}"), events));
            g.bench_with_input(BenchmarkId::new("ping_pong", events), &events, |b, &events| {
                b.iter(|| {
                    let mut w = WorldBuilder::new(1).build(2, |_| Pinger);
                    for _ in 0..events {
                        w.step();
                    }
                    w.events_scheduled()
                })
            });
        }
        let timer_events = 50_000u64;
        volumes.push((format!("simnet/timer_storm/{timer_events}"), timer_events));
        g.bench_with_input(
            BenchmarkId::new("timer_storm", timer_events),
            &timer_events,
            |b, &events| {
                b.iter(|| {
                    let mut w = WorldBuilder::new(1).build(4, |_| TimerStorm);
                    for _ in 0..events {
                        w.step();
                    }
                    w.events_scheduled()
                })
            },
        );
        g.finish();
    }
    c.measurements()
        .iter()
        .map(|m| {
            let events = volumes
                .iter()
                .find(|(label, _)| *label == m.label)
                .map_or(0, |&(_, e)| e);
            let median_ns = m.median.as_nanos() as u64;
            MicroMeasurement {
                label: m.label.clone(),
                events,
                median_ns,
                events_per_sec: if median_ns == 0 {
                    0
                } else {
                    (events as u128 * 1_000_000_000 / median_ns as u128) as u64
                },
            }
        })
        .collect()
}

fn audit_both_ways(seed: u64, repetitions: usize) -> AuditMeasurement {
    let arms = campaign::arm_ids();
    let streamed_pass = || {
        arms.iter().all(|arm| {
            neat::audit::audit_double_run(
                &arm.name,
                seed,
                |s| {
                    campaign::run_arm(arm, s, RunMode::Hash)
                        .fingerprint
                        .hash()
                        .expect("Hash mode always yields a fingerprint hash")
                },
                |s| {
                    campaign::run_arm(arm, s, RunMode::Render)
                        .fingerprint
                        .into_rendered()
                        .expect("Render mode always yields a rendered fingerprint")
                },
            )
            .is_ok()
        })
    };
    let rendered_pass = || {
        arms.iter().all(|arm| {
            let render = |s: u64| {
                campaign::run_arm(arm, s, RunMode::Render)
                    .fingerprint
                    .into_rendered()
                    .expect("Render mode always yields a rendered fingerprint")
            };
            neat::audit::trace_hash(&render(seed)) == neat::audit::trace_hash(&render(seed))
        })
    };
    // Warm-up sweep (both timed passes should see warm caches), then the
    // min over `repetitions` of each pass — single samples of a ~50ms
    // sweep are far too noisy to compare.
    assert!(rendered_pass(), "rendered audit found a divergence (warm-up)");
    let mut streamed_ns = u64::MAX;
    let mut rendered_ns = u64::MAX;
    for _ in 0..repetitions.max(1) {
        let (ok, ns) = time_ns(streamed_pass);
        assert!(ok, "streamed audit found a divergence");
        streamed_ns = streamed_ns.min(ns);
        let (ok, ns) = time_ns(rendered_pass);
        assert!(ok, "rendered audit found a divergence");
        rendered_ns = rendered_ns.min(ns);
    }
    AuditMeasurement {
        arms: arms.len(),
        streamed_wall_clock_ns: streamed_ns,
        rendered_wall_clock_ns: rendered_ns,
        speedup: rendered_ns as f64 / streamed_ns.max(1) as f64,
    }
}

/// Recomputes the deterministic counters (no timing involved), so the
/// perf gate can share the exact logic the artifact was generated with.
pub fn deterministic_counts(seed: u64) -> DeterministicCounts {
    let arms = campaign::arm_ids();
    let mut delta_total = 0u64;
    let mut events_total = 0u64;
    let mut render_allocs_sample = 0u64;
    for (i, arm) in arms.iter().enumerate() {
        let (traced, trace_allocs) =
            alloc_counter::count_allocations(|| campaign::run_arm(arm, seed, RunMode::Trace));
        let (_, hash_allocs) =
            alloc_counter::count_allocations(|| campaign::run_arm(arm, seed, RunMode::Hash));
        delta_total += hash_allocs.abs_diff(trace_allocs);
        events_total += traced.timeline.counters.events_simulated;
        if i == 0 {
            let (_, render_allocs) =
                alloc_counter::count_allocations(|| campaign::run_arm(arm, seed, RunMode::Render));
            render_allocs_sample = render_allocs.saturating_sub(trace_allocs);
        }
    }
    DeterministicCounts {
        counting_allocator: alloc_counter::is_counting(),
        arms: arms.len(),
        fingerprint_alloc_delta_total: delta_total,
        render_allocs_sample,
        events_simulated_total: events_total,
    }
}

/// Runs every layer. `sample_size` feeds the criterion shim (the binary
/// uses 10; tests use fewer to stay quick).
pub fn measure(seed: u64, sample_size: usize) -> PerfBench {
    measure_repeat(seed, sample_size, 1)
}

/// [`measure`] with min-of-N folding over the wall-clock layers: the
/// micro benches and the campaign timing run `repeat` times and each
/// label keeps its *minimum* median (the least-interfered-with sample —
/// noise on a shared box only ever inflates a timing). The deterministic
/// counters are computed once; repetition cannot change them. This backs
/// the `--repeat N` flag of `bench --bin perf`, so golden throughput
/// numbers are less hostage to scheduler luck.
pub fn measure_repeat(seed: u64, sample_size: usize, repeat: usize) -> PerfBench {
    let repeat = repeat.max(1);
    let mut micro = micro_benches(sample_size);
    let (_, mut campaign_ns) = time_ns(|| campaign::run_all_scenarios(seed));
    for _ in 1..repeat {
        for again in micro_benches(sample_size) {
            if let Some(m) = micro.iter_mut().find(|m| m.label == again.label) {
                if again.median_ns < m.median_ns {
                    *m = again;
                }
            }
        }
        let (_, ns) = time_ns(|| campaign::run_all_scenarios(seed));
        campaign_ns = campaign_ns.min(ns);
    }
    let audit = audit_both_ways(seed, sample_size.min(5));
    let deterministic = deterministic_counts(seed);
    PerfBench {
        seed,
        micro,
        campaign_wall_clock_ns: campaign_ns,
        audit,
        deterministic,
    }
}

fn push_f64(out: &mut String, v: f64) {
    let _ = write!(out, "{v:.3}");
}

impl PerfBench {
    /// Compact JSON, field order fixed by this function.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"bench\":\"perf\"");
        let _ = write!(out, ",\"seed\":{}", self.seed);
        out.push_str(",\"micro\":[");
        for (i, m) in self.micro.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"events\":{},\"median_ns\":{},\"events_per_sec\":{}}}",
                m.label, m.events, m.median_ns, m.events_per_sec
            );
        }
        let _ = write!(
            out,
            "],\"campaign_wall_clock_ns\":{}",
            self.campaign_wall_clock_ns
        );
        let _ = write!(
            out,
            ",\"audit\":{{\"arms\":{},\"streamed_wall_clock_ns\":{},\
             \"rendered_wall_clock_ns\":{},\"speedup\":",
            self.audit.arms,
            self.audit.streamed_wall_clock_ns,
            self.audit.rendered_wall_clock_ns,
        );
        push_f64(&mut out, self.audit.speedup);
        let _ = write!(
            out,
            "}},\"deterministic\":{{\"counting_allocator\":{},\"arms\":{},\
             \"fingerprint_alloc_delta_total\":{},\"render_allocs_sample\":{},\
             \"events_simulated_total\":{}}}}}",
            self.deterministic.counting_allocator,
            self.deterministic.arms,
            self.deterministic.fingerprint_alloc_delta_total,
            self.deterministic.render_allocs_sample,
            self.deterministic.events_simulated_total,
        );
        out
    }

    /// The pretty form written to `BENCH_perf.json`.
    pub fn to_pretty_json(&self) -> String {
        format!("{}\n", study::json::pretty(&self.to_json()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_the_full_schema() {
        // One sample per bench: schema and invariants, not timings.
        let b = measure(8, 1);
        assert_eq!(b.micro.len(), 3);
        assert!(b.micro.iter().all(|m| m.events > 0));
        assert_eq!(b.audit.arms, campaign::arm_ids().len());
        assert!(b.deterministic.events_simulated_total > 0);
        // Without the counting allocator installed, every count is zero —
        // and with it installed, the fast-path delta must still be zero.
        assert_eq!(b.deterministic.fingerprint_alloc_delta_total, 0);
        let json = b.to_json();
        assert!(json.contains("\"bench\":\"perf\""), "{json}");
        assert!(json.contains("\"events_per_sec\":"), "{json}");
        assert!(json.contains("\"fingerprint_alloc_delta_total\":0"), "{json}");
        let pretty = b.to_pretty_json();
        assert!(pretty.contains("\"speedup\": "), "{pretty}");
        assert!(pretty.ends_with('\n'));
    }

    #[test]
    fn deterministic_counts_are_stable_across_invocations() {
        let a = deterministic_counts(8);
        let b = deterministic_counts(8);
        assert_eq!(a.events_simulated_total, b.events_simulated_total);
        assert_eq!(
            a.fingerprint_alloc_delta_total,
            b.fingerprint_alloc_delta_total
        );
    }
}
