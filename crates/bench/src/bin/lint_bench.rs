//! Regenerates `BENCH_lint.json` at the repo root: the determinism-lint
//! scan of the whole workspace reduced to deterministic counters, plus
//! the registry-consistency verdict. A pure function of the committed
//! source tree, so the tier-1 golden tests regenerate the identical
//! bytes in-process.
//!
//! ```text
//! cargo run --release -p bench --bin lint_bench            # writes the artifact
//! cargo run --release -p bench --bin lint_bench -- --print # JSON to stdout only
//! ```

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let json = bench::reports::lint_machine_json();
    if std::env::args().skip(1).any(|a| a == "--print") {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        return match out.write_all(json.as_bytes()).and_then(|()| out.flush()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("lint_bench: failed to write to stdout: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // The manifest dir is crates/bench; the artifact lives at the root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lint.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("lint_bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}
