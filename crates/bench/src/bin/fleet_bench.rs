//! Measures the fleet runner and writes `BENCH_fleet.json` at the repo
//! root: multi-seed campaign sweep wall-clock at each rung of a jobs
//! ladder, speedup vs serial, byte-identity of every parallel run, the
//! same for an exploration sweep, the work-stealing grid's scheduling
//! counters at the top rung, and a 32-seed §5.4 detection-probability
//! curve.
//!
//! ```text
//! cargo run --release -p bench --bin fleet_bench            # writes BENCH_fleet.json
//! cargo run --release -p bench --bin fleet_bench -- --print # stdout only
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let print_only = std::env::args().any(|a| a == "--print");
    // 32 curve seeds: one detection-probability point per budget 1..=32,
    // a much finer §5.4 curve than the 8-seed sweep alone gives.
    let bench = bench::fleet_bench::measure(8, &[1, 2, 4, 8], 32);
    let json = bench.to_pretty_json();
    if print_only {
        print!("{json}");
        return ExitCode::SUCCESS;
    }
    // The manifest dir is crates/bench; the artifact lives at the root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("fleet_bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    print!("{json}");
    ExitCode::SUCCESS
}
