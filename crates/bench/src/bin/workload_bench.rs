//! Regenerates `BENCH_workload.json` at the repo root: the campaign's
//! load-driven scenarios at the historical seed 8 — both arms' verdicts
//! plus the flawed arm's per-op latency percentiles — and the million-op
//! sharded open-loop read ladder, byte-compared across `--jobs 1/2/4/8`.
//! Every number is virtual-time, so the artifact is fully deterministic.
//!
//! ```text
//! cargo run --release -p bench --bin workload_bench            # writes the artifact
//! cargo run --release -p bench --bin workload_bench -- --print # JSON to stdout only
//! ```

use std::io::Write;
use std::process::ExitCode;

/// Total operations of the open-loop read ladder (split over 8 shards).
const LADDER_OPS: u64 = 1_000_000;

fn main() -> ExitCode {
    let json = bench::reports::workload_machine_json(LADDER_OPS);
    if std::env::args().skip(1).any(|a| a == "--print") {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        return match out.write_all(json.as_bytes()).and_then(|()| out.flush()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("workload_bench: failed to write to stdout: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // The manifest dir is crates/bench; the artifact lives at the root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workload.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("workload_bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}
