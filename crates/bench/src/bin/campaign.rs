//! Runs the full NEAT campaign (§6.4): every scenario, flawed vs fixed,
//! and the regenerated Table 15.

fn main() {
    let results = neat_repro::campaign::run_all_scenarios(8);
    println!("{}", neat_repro::campaign::render(&results));
}
