//! Runs the full NEAT campaign (§6.4): every scenario, flawed vs fixed,
//! and the regenerated Table 15.
//!
//! With no arguments this prints the historical serial seed-8 campaign,
//! byte-for-byte. `--jobs K` fans the scenarios across K fleet workers
//! (same bytes for any K); `--seeds N` switches to the multi-seed sweep
//! report; `--seed` moves the base seed. The flags and execution are
//! shared with `cargo run -p fleet` via `fleet::cli`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match fleet::cli::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", fleet::cli::usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("campaign: {msg}\n{}", fleet::cli::usage());
            return ExitCode::from(2);
        }
    };
    println!("{}", fleet::cli::report(&opts));
    ExitCode::SUCCESS
}
