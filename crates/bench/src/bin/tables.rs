//! Regenerates every table of the paper's evaluation (Tables 1–13 and the
//! headline findings), printing the published value next to the value
//! recomputed from the catalog.

use study::{catalog, stats, PartitionType, Source, Timing};

fn render_appendix() {
    println!("Table 14/15 — the failure catalog (appendix fields as transcribed)");
    println!(
        "  {:>3} {:<15} {:<8} {:<7} {:<30} {:<9} {:<14}",
        "id", "system", "source", "ref", "impact", "partition", "timing"
    );
    for f in catalog() {
        let source = match f.source {
            Source::IssueTracker => "tracker",
            Source::Jepsen => "jepsen",
            Source::Neat => "NEAT",
        };
        let partition = match f.partition {
            PartitionType::Complete => "complete",
            PartitionType::Partial => "partial",
            PartitionType::Simplex => "simplex",
        };
        let timing = match f.timing {
            Timing::Deterministic => "deterministic",
            Timing::Fixed => "fixed",
            Timing::Bounded => "bounded",
            Timing::Unknown => "unknown",
        };
        println!(
            "  {:>3} {:<15} {:<8} {:<7} {:<30} {:<9} {:<14}",
            f.id,
            f.system.name(),
            source,
            f.reference,
            f.impact.label(),
            partition,
            timing
        );
    }
    println!();
}

fn main() -> std::process::ExitCode {
    println!("== An Analysis of Network-Partitioning Failures in Cloud Systems ==");
    println!("== Table regeneration: paper vs this reproduction ==\n");

    // Table 1 has a different shape (absolute counts per system).
    println!("Table 1 — List of studied systems");
    println!(
        "  {:<15} {:<16} {:>8} {:>8} {:>10} {:>10}",
        "system", "consistency", "paper#", "ours#", "paper-cat", "ours-cat"
    );
    let mut totals = (0, 0, 0, 0);
    for (s, consistency, pt, t, pc, c) in stats::table1() {
        println!(
            "  {:<15} {:<16} {:>8} {:>8} {:>10} {:>10}",
            s.name(),
            consistency,
            pt,
            t,
            pc,
            c
        );
        totals = (totals.0 + pt, totals.1 + t, totals.2 + pc, totals.3 + c);
    }
    println!(
        "  {:<15} {:<16} {:>8} {:>8} {:>10} {:>10}\n",
        "Total", "-", totals.0, totals.1, totals.2, totals.3
    );

    for t in stats::all_tables() {
        println!("{}", t.render());
    }

    let (_, design_days, impl_days) = stats::table12();
    println!(
        "Table 12 resolution times: design {design_days:.0} days (paper: 205), \
         implementation {impl_days:.0} days (paper: 81)\n"
    );

    render_appendix();

    let Some(worst) = stats::all_tables()
        .into_iter()
        .map(|t| (t.id, t.max_delta()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
    else {
        eprintln!("tables: statistics engine produced no tables");
        return std::process::ExitCode::FAILURE;
    };
    println!(
        "largest paper-vs-measured delta across all tables: {:.1} points ({})",
        worst.1, worst.0
    );
    std::process::ExitCode::SUCCESS
}
