//! Regenerates every table of the paper's evaluation (Tables 1–13 and the
//! headline findings), printing the published value next to the value
//! recomputed from the catalog. Thin wrapper over
//! [`bench::reports::tables_report`] so the golden-file test regenerates
//! the identical bytes in-process.

fn main() -> std::process::ExitCode {
    match bench::reports::tables_report() {
        Ok(out) => {
            print!("{out}");
            std::process::ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::ExitCode::FAILURE
        }
    }
}
