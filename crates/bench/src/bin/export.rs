//! Exports the 136-failure catalog as JSON — the reproduction's analogue
//! of the paper's released data set. Writes to stdout; exits non-zero if
//! the stream cannot be written (e.g. a closed pipe mid-document).

use std::io::Write;
use std::process::ExitCode;

use study::ToJson;

fn run() -> std::io::Result<()> {
    let catalog = study::catalog();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "{}", study::json::pretty(&catalog.to_json()))?;
    out.flush()
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("export: failed to write catalog JSON: {e}");
            ExitCode::FAILURE
        }
    }
}
