//! Exports the 136-failure catalog as JSON — the reproduction's analogue
//! of the paper's released data set. Writes to stdout.

fn main() {
    let catalog = study::catalog();
    println!(
        "{}",
        serde_json::to_string_pretty(&catalog).expect("catalog serializes")
    );
}
