//! Regenerates the failure-forensics artifacts at the repo root: every
//! flawed arm of the campaign, run at the historical seed 8 with trace
//! recording on, explained as Listing-1/2-style failure timelines
//! (`forensics_output.txt`) with the simulation counters in
//! `BENCH_forensics.json`. Both are fully deterministic, so the tier-1
//! golden tests regenerate the identical bytes in-process.
//!
//! ```text
//! cargo run --release -p bench --bin forensics            # writes both artifacts
//! cargo run --release -p bench --bin forensics -- --print # narrative to stdout only
//! cargo run --release -p bench --bin forensics -- --jsonl # JSONL stream to stdout
//! ```

use std::io::Write;
use std::process::ExitCode;

/// Writes to stdout, exiting non-zero on a write error (e.g. a closed
/// pipe mid-stream) instead of panicking like the `print!` macros do.
fn emit(content: &str) -> ExitCode {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match out.write_all(content.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("forensics: failed to write to stdout: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--jsonl") {
        return emit(&bench::reports::forensics_jsonl());
    }
    let text = bench::reports::forensics_report();
    if args.iter().any(|a| a == "--print") {
        return emit(&text);
    }
    // The manifest dir is crates/bench; the artifacts live at the root.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for (name, content) in [
        ("forensics_output.txt", text),
        ("BENCH_forensics.json", bench::reports::forensics_machine_json()),
    ] {
        let path = format!("{root}/{name}");
        if let Err(e) = std::fs::write(&path, &content) {
            eprintln!("forensics: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
