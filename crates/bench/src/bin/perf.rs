//! Measures the fingerprinting and simulator hot paths and writes
//! `BENCH_perf.json` at the repo root: simulator events/sec, full-campaign
//! and audit wall-clock (streamed vs rendered fingerprints), and the
//! deterministic allocation/event counters the perf gate asserts.
//!
//! ```text
//! cargo run --release -p bench --bin perf               # writes BENCH_perf.json
//! cargo run --release -p bench --bin perf -- --print    # stdout only
//! cargo run --release -p bench --bin perf -- --repeat 5 # min-of-5 wall clocks
//! ```

use std::process::ExitCode;

// The allocation counters in the `deterministic` section only count when
// the measuring binary routes its heap through the counting allocator.
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let print_only = args.iter().any(|a| a == "--print");
    // `--repeat N`: rerun the wall-clock layers N times and keep each
    // label's minimum, so the committed numbers are less noise-hostage.
    let repeat = args
        .iter()
        .position(|a| a == "--repeat")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    let bench = bench::perf_bench::measure_repeat(8, 10, repeat);
    let json = bench.to_pretty_json();
    if print_only {
        print!("{json}");
        return ExitCode::SUCCESS;
    }
    // The manifest dir is crates/bench; the artifact lives at the root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("perf: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    print!("{json}");
    ExitCode::SUCCESS
}
