//! Regenerates `BENCH_explore.json` at the repo root: the coverage-guided
//! exploration pipeline at the historical seed 8 — naive vs guided vs
//! coverage hit rates at equal budget, the sharded-merge invariance
//! check, and every delta-minimized registry regression with a fresh
//! 1-minimality proof. Fully deterministic, so the tier-1 golden tests
//! regenerate the identical bytes in-process.
//!
//! ```text
//! cargo run --release -p bench --bin explore_bench            # writes the artifact
//! cargo run --release -p bench --bin explore_bench -- --print # JSON to stdout only
//! ```

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let json = bench::reports::explore_machine_json();
    if std::env::args().skip(1).any(|a| a == "--print") {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        return match out.write_all(json.as_bytes()).and_then(|()| out.flush()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("explore_bench: failed to write to stdout: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // The manifest dir is crates/bench; the artifact lives at the root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("explore_bench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}
