//! Regenerates the paper's figures as executable scenarios with printed
//! manifestation traces: Figure 1 (partition taxonomy), Figure 2 (VoltDB
//! dirty read), Figure 3 (MapReduce double execution), Figure 5 (Ignite
//! semaphore double locking), Figure 6 (ActiveMQ hang), plus the
//! Finding-13 exploration experiment (the §5.4 testability claim).
//! Thin wrapper over [`bench::reports::figures_report`] so the
//! golden-file test regenerates the identical bytes in-process.

fn main() {
    print!("{}", bench::reports::figures_report());
}
