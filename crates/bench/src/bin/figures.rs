//! Regenerates the paper's figures as executable scenarios with printed
//! manifestation traces: Figure 1 (partition taxonomy), Figure 2 (VoltDB
//! dirty read), Figure 3 (MapReduce double execution), Figure 5 (Ignite
//! semaphore double locking), Figure 6 (ActiveMQ hang), plus the
//! Finding-13 exploration experiment (the §5.4 testability claim).

use neat::explore::{explore, Strategy};
use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};

/// A do-nothing application for the Figure 1 connectivity demo.
struct Idle;
impl Application for Idle {
    type Msg = ();
    fn on_start(&mut self, _: &mut Ctx<'_, ()>) {}
    fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
    fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerId, _: u64) {}
}

fn figure1() {
    println!("== Figure 1: the three network-partitioning fault types ==\n");
    let show = |title: &str, f: &dyn Fn(&mut neat::Neat<Idle>) -> neat::Partition| {
        let mut engine = neat::Neat::new(WorldBuilder::new(1).build(5, |_| Idle));
        let p = f(&mut engine);
        println!("{title} (1 = i→j flows):");
        println!("{}", engine.world.net().connectivity_matrix(5));
        engine.heal(&p);
        println!("after heal:");
        println!("{}", engine.world.net().connectivity_matrix(5));
    };
    let g1 = [NodeId(0), NodeId(1)];
    let g2 = [NodeId(2), NodeId(3), NodeId(4)];
    show("(a) complete partition {0,1} | {2,3,4}", &|e| {
        e.partition_complete(&g1, &g2)
    });
    let g2b = [NodeId(2), NodeId(3)];
    show("(b) partial partition {0,1} | {2,3}; node 4 bridges", &|e| {
        e.partition_partial(&g1, &g2b)
    });
    show("(c) simplex partition: {0,1} → {2,3,4} dropped", &|e| {
        e.partition_simplex(&g1, &g2)
    });
}

fn figure2() {
    println!("== Figure 2: dirty read in VoltDB (ENG-10389) ==\n");
    let out = repkv::scenarios::dirty_and_stale_read(repkv::Config::voltdb(), 7, true);
    println!("{}", out.trace);
    println!("history:\n{}", out.history);
    for v in &out.violations {
        println!("  VIOLATION: {v}");
    }
    let fixed = repkv::scenarios::dirty_and_stale_read(repkv::Config::fixed(), 7, false);
    println!("  fixed profile violations: {}\n", fixed.violations.len());
}

fn figure3() {
    println!("== Figure 3: MapReduce double execution (MAPREDUCE-4819) ==\n");
    let (violations, trace) = sched::double_execution(
        sched::MrFlaws {
            relaunch_without_checking: true,
        },
        81,
        true,
    );
    println!("{trace}");
    for v in &violations {
        println!("  VIOLATION: {v}");
    }
    let (fixed, _) = sched::double_execution(
        sched::MrFlaws {
            relaunch_without_checking: false,
        },
        81,
        false,
    );
    println!("  fixed ResourceManager violations: {}\n", fixed.len());
}

fn figure5() {
    println!("== Figure 5: Ignite semaphore double locking (IGNITE-8882) ==\n");
    let out = gridstore::scenarios::semaphore_double_lock(gridstore::GridFlaws::flawed(), 61, true);
    println!("{}", out.trace);
    for v in &out.violations {
        println!("  VIOLATION: {v}");
    }
    let fixed =
        gridstore::scenarios::semaphore_double_lock(gridstore::GridFlaws::fixed(), 61, false);
    println!(
        "  with split-brain protection: {} violations\n",
        fixed.violations.len()
    );
}

fn figure6() {
    println!("== Figure 6: ActiveMQ hangs under a partial partition (AMQ-7064) ==\n");
    let out = mqueue::scenarios::fig6_hang(mqueue::BrokerFlaws::flawed(), 41, true);
    println!("{}", out.trace);
    for v in &out.violations {
        println!("  VIOLATION: {v}");
    }
    let fixed = mqueue::scenarios::fig6_hang(mqueue::BrokerFlaws::fixed(), 41, false);
    println!("  fixed brokers violations: {}\n", fixed.violations.len());
}

fn bounded_timing() {
    println!("== §5.2: a bounded-timing failure — the fault must overlap a sync ==\n");
    let flawed = coord::CoordFlaws {
        apply_chunks_in_place: true,
        ..coord::CoordFlaws::default()
    };
    let out = coord::scenarios::sync_interrupted_corruption(flawed, 57, true);
    println!("{}", out.trace);
    for v in &out.violations {
        println!("  VIOLATION: {v}");
    }
    let fixed = coord::scenarios::sync_interrupted_corruption(coord::CoordFlaws::default(), 57, false);
    println!(
        "  atomic chunk installation (fixed): {} violations\n",
        fixed.violations.len()
    );
}

fn finding13() {
    println!("== Finding 13 / §5.4: findings-guided vs naive random testing ==\n");
    let trials = 40;
    for (name, config) in [
        ("VoltDB profile", repkv::Config::voltdb()),
        ("Elasticsearch profile", repkv::Config::elasticsearch()),
        ("fixed baseline", repkv::Config::fixed()),
    ] {
        let mut target = repkv::RepkvTarget::new(config);
        let guided = explore(&mut target, &Strategy::findings_guided(), trials, 99);
        let naive = explore(&mut target, &Strategy::naive(3), trials, 99);
        println!(
            "  {name:<24} guided: {:>2}/{trials} trials hit (first at #{:?})   naive: {:>2}/{trials}",
            guided.trials_with_violation,
            guided.first_violation_trial,
            naive.trials_with_violation,
        );
    }
    // The data grid gives the explorer the full Table 8 palette (locks,
    // queues, counters).
    for (name, flaws) in [
        ("Ignite-like grid (flawed)", gridstore::GridFlaws::flawed()),
        ("grid + protection (fixed)", gridstore::GridFlaws::fixed()),
    ] {
        let mut target = gridstore::GridTarget::new(flaws);
        let guided = explore(&mut target, &Strategy::findings_guided(), trials, 99);
        let naive = explore(&mut target, &Strategy::naive(3), trials, 99);
        println!(
            "  {name:<24} guided: {:>2}/{trials} trials hit (first at #{:?})   naive: {:>2}/{trials}",
            guided.trials_with_violation,
            guided.first_violation_trial,
            naive.trials_with_violation,
        );
    }
    println!(
        "\n  Shape check: guided >> naive on flawed profiles, both zero on the fixed\n  \
         baseline — the paper's testability claim (93% reproducible via guided tests)."
    );
}

fn main() {
    figure1();
    figure2();
    figure3();
    figure5();
    figure6();
    bounded_timing();
    finding13();
    println!("(Figure 4 — the NEAT architecture — is this framework itself; its \
              overhead is measured by `cargo bench -p bench`.)");
}
