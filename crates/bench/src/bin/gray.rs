//! Regenerates `BENCH_gray.json` at the repo root: the campaign's
//! gray-failure scenarios (degraded, not severed, links) at the
//! historical seed 8 — both arms' verdicts plus the degradation counters.
//! Fully deterministic, so the tier-1 golden tests regenerate the
//! identical bytes in-process.
//!
//! ```text
//! cargo run --release -p bench --bin gray            # writes the artifact
//! cargo run --release -p bench --bin gray -- --print # JSON to stdout only
//! ```

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let json = bench::reports::gray_machine_json();
    if std::env::args().skip(1).any(|a| a == "--print") {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        return match out.write_all(json.as_bytes()).and_then(|()| out.flush()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gray: failed to write to stdout: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // The manifest dir is crates/bench; the artifact lives at the root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gray.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("gray: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}
