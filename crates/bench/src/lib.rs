//! Shared helpers for the table/figure regenerators and benches.
//!
//! The binaries:
//!
//! - `cargo run -p bench --bin tables` — Tables 1–13 plus the headline
//!   findings, paper value vs recomputed value.
//! - `cargo run -p bench --bin figures` — Figures 1, 2, 3, 5, 6 and the
//!   Finding-13 exploration experiment, with manifestation traces.
//! - `cargo run -p bench --bin campaign` — the §6.4 campaign and Table 15.
//! - `cargo run -p bench --bin export` — the failure catalog as JSON (the
//!   paper's released data set).
//!
//! The Criterion benches (`cargo bench -p bench`) measure framework
//! overhead (Figure 4's architecture), scenario runtimes (flawed vs fixed),
//! and the exploration strategies' bug-finding efficiency.
//!
//! The binaries are thin wrappers over [`reports`] so the golden-file
//! tests (`tests/golden_outputs.rs` at the workspace root) can regenerate
//! the committed artifacts — `campaign_output.txt`, `tables_output.txt`,
//! `figures_output.txt` — and diff them without spawning processes;
//! [`fleet_bench`] is the serial-vs-parallel wall-clock measurement
//! behind `BENCH_fleet.json` (`cargo run -p bench --bin fleet_bench`),
//! and [`perf_bench`] is the hot-path measurement behind
//! `BENCH_perf.json` (`cargo run -p bench --bin perf`).

pub mod fleet_bench;
pub mod perf_bench;
pub mod reports;

/// Renders a horizontal bar for quick shape comparison in terminal output.
pub fn bar(pct: f64) -> String {
    let n = (pct / 2.0).round().clamp(0.0, 50.0) as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.0), "");
        assert_eq!(bar(100.0).len(), 50);
        assert_eq!(bar(10.0).len(), 5);
    }
}
