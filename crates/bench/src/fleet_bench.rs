//! Serial-vs-parallel wall-clock measurement for the fleet runner.
//!
//! Produces the numbers behind `BENCH_fleet.json` at the repo root: a
//! multi-seed campaign sweep run at each rung of a jobs ladder, the
//! speedup relative to the serial run, and — the property that actually
//! matters — whether every parallel rendering was byte-identical to the
//! serial one. An exploration sweep (`neat::explore` fanned across seeds)
//! is measured the same way.
//!
//! Wall-clock time is banned workspace-wide by the determinism lint
//! because it must never influence a *simulation*; this module is the one
//! audited exception, and only ever measures, never steers.

use std::fmt::Write as _;

use neat::explore::Strategy;

/// Runs `f` once and returns its result plus elapsed wall-clock ns.
#[allow(clippy::disallowed_types)]
fn time_ns<T>(f: impl FnOnce() -> T) -> (T, u64) {
    // lint:allow(wall-clock) -- bench measurement only; never read inside a simulation
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as u64)
}

/// One rung of the jobs ladder.
#[derive(Clone, Debug)]
pub struct JobsMeasurement {
    pub jobs: usize,
    pub wall_clock_ns: u64,
    /// Serial wall-clock divided by this rung's wall-clock.
    pub speedup: f64,
    /// Whether this rung's rendered report matched the serial bytes.
    pub byte_identical: bool,
}

/// The exploration sweep measured serial vs at the ladder's top rung.
#[derive(Clone, Debug)]
pub struct ExploreMeasurement {
    pub seeds: usize,
    pub trials: usize,
    pub jobs: usize,
    pub serial_wall_clock_ns: u64,
    pub parallel_wall_clock_ns: u64,
    pub speedup: f64,
    /// Whether the parallel per-seed reports matched the serial ones.
    pub identical: bool,
}

/// Scheduling counters of the work-stealing grid at the ladder's top
/// rung (see [`fleet::pool::GridStats`]): `workers`, `batch`, and
/// `batches` are pure functions of `(jobs, items)` and safe to pin;
/// `steals` depends on OS scheduling and is shape-gated only.
#[derive(Clone, Debug)]
pub struct GridMeasurement {
    pub workers: usize,
    pub batch: usize,
    pub batches: u64,
    pub steals: u64,
}

/// The high-resolution §5.4 detection-probability curve. Campaign
/// scenarios detect deterministically (their curve is flat at 1.0 from
/// budget 1 — see `SweepReport::detection_curve`), so the interesting
/// budget axis is *exploration trials*: `points[b-1]` is the fraction of
/// `sweep_seeds` independent exploration runs whose first violation
/// arrived within `b` trials. Deterministic — a pure function of the
/// seed list — so the rendered points are safe to pin in the golden.
#[derive(Clone, Debug)]
pub struct CurveMeasurement {
    pub sweep_seeds: usize,
    pub trials: usize,
    pub points: Vec<f64>,
}

/// Everything `BENCH_fleet.json` records.
#[derive(Clone, Debug)]
pub struct FleetBench {
    pub scenarios: usize,
    pub arms: usize,
    pub seeds: usize,
    /// `std::thread::available_parallelism()` on the measuring machine —
    /// speedups only make sense relative to this.
    pub machine_workers: usize,
    pub campaign: Vec<JobsMeasurement>,
    /// Grid scheduling counters for the top campaign rung.
    pub grid: GridMeasurement,
    pub explore: ExploreMeasurement,
    pub detection_curve: CurveMeasurement,
}

/// Measures a multi-seed campaign sweep at each rung of `jobs_ladder`
/// (the first rung is forced to 1 as the serial baseline) plus an
/// exploration sweep, over `seed_count` seeds starting at the default
/// campaign seed — and a `curve_seeds`-seed sweep for the
/// high-resolution §5.4 detection-probability curve.
pub fn measure(seed_count: usize, jobs_ladder: &[usize], curve_seeds: usize) -> FleetBench {
    let opts = fleet::cli::Opts {
        seeds: Some(seed_count),
        ..fleet::cli::Opts::default()
    };
    let seeds = fleet::cli::sweep_seeds(&opts);

    let (serial, serial_ns) = time_ns(|| fleet::campaign::sweep(&seeds, 1));
    let serial_bytes = neat_repro::campaign::render_sweep(&serial);
    let mut campaign = vec![JobsMeasurement {
        jobs: 1,
        wall_clock_ns: serial_ns,
        speedup: 1.0,
        byte_identical: true,
    }];
    let mut grid = GridMeasurement {
        workers: 1,
        batch: 0,
        batches: 0,
        steals: 0,
    };
    let top_rung = jobs_ladder.iter().copied().max().unwrap_or(1);
    for &jobs in jobs_ladder.iter().filter(|&&j| j > 1) {
        let ((report, stats), ns) = time_ns(|| fleet::campaign::sweep_grid(&seeds, jobs));
        if jobs == top_rung {
            grid = GridMeasurement {
                workers: stats.workers,
                batch: stats.batch,
                batches: stats.batches,
                steals: stats.steals,
            };
        }
        campaign.push(JobsMeasurement {
            jobs,
            wall_clock_ns: ns,
            speedup: serial_ns as f64 / ns.max(1) as f64,
            byte_identical: neat_repro::campaign::render_sweep(&report) == serial_bytes,
        });
    }

    let trials = 40;
    let top_jobs = jobs_ladder.iter().copied().max().unwrap_or(1).max(2);
    let strategy = Strategy::findings_guided();
    let run_explore = |jobs: usize| {
        fleet::explore::explore_sweep(
            jobs,
            &seeds,
            || repkv::RepkvTarget::new(repkv::Config::voltdb()),
            &strategy,
            trials,
        )
    };
    let (serial_reports, explore_serial_ns) = time_ns(|| run_explore(1));
    let (parallel_reports, explore_parallel_ns) = time_ns(|| run_explore(top_jobs));
    let identical = serial_reports
        .iter()
        .zip(parallel_reports.iter())
        .all(|(a, b)| {
            a.trials == b.trials
                && a.trials_with_violation == b.trials_with_violation
                && a.first_violation_trial == b.first_violation_trial
        })
        && serial_reports.len() == parallel_reports.len();

    // The high-resolution curve: many independent exploration runs, one
    // per curve seed, each probing the same flawed target. Budget `b`
    // detects iff the run's first violation arrived within `b` trials.
    let curve_opts = fleet::cli::Opts {
        seeds: Some(curve_seeds),
        ..fleet::cli::Opts::default()
    };
    let curve_seed_list = fleet::cli::sweep_seeds(&curve_opts);
    let curve_reports = fleet::explore::explore_sweep(
        top_jobs,
        &curve_seed_list,
        || repkv::RepkvTarget::new(repkv::Config::voltdb()),
        &strategy,
        trials,
    );
    let points = (1..=trials)
        .map(|b| {
            let hit = curve_reports
                .iter()
                .filter(|r| r.first_violation_trial.is_some_and(|t| t <= b))
                .count();
            hit as f64 / curve_reports.len().max(1) as f64
        })
        .collect();
    let detection_curve = CurveMeasurement {
        sweep_seeds: curve_seed_list.len(),
        trials,
        points,
    };

    FleetBench {
        scenarios: neat_repro::campaign::scenario_count(),
        arms: neat_repro::campaign::arm_ids().len(),
        seeds: seeds.len(),
        machine_workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        campaign,
        grid,
        explore: ExploreMeasurement {
            seeds: seeds.len(),
            trials,
            jobs: top_jobs,
            serial_wall_clock_ns: explore_serial_ns,
            parallel_wall_clock_ns: explore_parallel_ns,
            speedup: explore_serial_ns as f64 / explore_parallel_ns.max(1) as f64,
            identical,
        },
        detection_curve,
    }
}

fn push_f64(out: &mut String, v: f64) {
    // Three decimals is plenty for a speedup ratio and keeps the JSON
    // free of float noise.
    let _ = write!(out, "{v:.3}");
}

impl FleetBench {
    /// Compact JSON, field order fixed by this function.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"bench\":\"fleet\"");
        let _ = write!(
            out,
            ",\"scenarios\":{},\"arms\":{},\"seeds\":{},\"machine_workers\":{}",
            self.scenarios, self.arms, self.seeds, self.machine_workers
        );
        out.push_str(",\"campaign\":[");
        for (i, m) in self.campaign.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"jobs\":{},\"wall_clock_ns\":{},\"speedup\":",
                m.jobs, m.wall_clock_ns
            );
            push_f64(&mut out, m.speedup);
            let _ = write!(out, ",\"byte_identical\":{}}}", m.byte_identical);
        }
        let _ = write!(
            out,
            "],\"grid\":{{\"workers\":{},\"batch\":{},\"batches\":{},\"steals\":{}}}",
            self.grid.workers, self.grid.batch, self.grid.batches, self.grid.steals
        );
        out.push_str(",\"explore\":{");
        let _ = write!(
            out,
            "\"seeds\":{},\"trials\":{},\"jobs\":{},\"serial_wall_clock_ns\":{},\
             \"parallel_wall_clock_ns\":{},\"speedup\":",
            self.explore.seeds,
            self.explore.trials,
            self.explore.jobs,
            self.explore.serial_wall_clock_ns,
            self.explore.parallel_wall_clock_ns,
        );
        push_f64(&mut out, self.explore.speedup);
        let _ = write!(out, ",\"identical\":{}}}", self.explore.identical);
        let _ = write!(
            out,
            ",\"detection_curve\":{{\"sweep_seeds\":{},\"trials\":{},\"points\":[",
            self.detection_curve.sweep_seeds, self.detection_curve.trials
        );
        for (i, p) in self.detection_curve.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_f64(&mut out, *p);
        }
        out.push_str("]}}");
        out
    }

    /// The pretty form written to `BENCH_fleet.json`.
    pub fn to_pretty_json(&self) -> String {
        format!("{}\n", study::json::pretty(&self.to_json()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_identical_parallel_runs() {
        // Tiny configuration: 2 seeds, ladder [1, 2]. The point is the
        // equivalence bits and the schema, not the timings.
        let b = measure(2, &[1, 2], 3);
        assert_eq!(b.scenarios, neat_repro::campaign::scenario_count());
        assert_eq!(b.seeds, 2);
        assert!(b.campaign.iter().all(|m| m.byte_identical));
        assert!(b.explore.identical);
        assert_eq!(b.grid.workers, 2);
        assert!(b.grid.batches > 0);
        assert_eq!(b.detection_curve.sweep_seeds, 3);
        assert_eq!(b.detection_curve.points.len(), b.detection_curve.trials);
        assert!(b
            .detection_curve
            .points
            .windows(2)
            .all(|w| w[0] <= w[1]), "curve must be monotone");
        let json = b.to_json();
        assert!(json.contains("\"bench\":\"fleet\""), "{json}");
        assert!(json.contains("\"machine_workers\":"), "{json}");
        assert!(json.contains("\"byte_identical\":true"), "{json}");
        assert!(json.contains("\"grid\":{\"workers\":2"), "{json}");
        assert!(json.contains("\"detection_curve\":{\"sweep_seeds\":3"), "{json}");
        // Pretty form round-trips the same keys.
        let pretty = b.to_pretty_json();
        assert!(pretty.contains("\"speedup\": "), "{pretty}");
        assert!(pretty.ends_with('\n'));
    }
}
