//! The exact stdout of the `campaign`, `tables`, and `figures` binaries.
//!
//! Everything here returns the full byte stream the corresponding binary
//! writes, so the tier-1 golden tests can regenerate the committed
//! `*_output.txt` artifacts in-process and fail the build when they go
//! stale. The binaries call these functions and `print!` the result.

use std::fmt::Write as _;

use neat::explore::{explore, Strategy};
use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};
use study::{catalog, stats, PartitionType, Source, Timing};

/// `writeln!` into a `String` (which cannot fail).
macro_rules! w {
    ($out:expr) => { let _ = writeln!($out); };
    ($out:expr, $($t:tt)*) => { let _ = writeln!($out, $($t)*); };
}

// --- campaign ------------------------------------------------------------

/// Exact stdout of `cargo run -p bench --bin campaign` with no arguments:
/// the full serial campaign at the historical seed 8.
pub fn campaign_report() -> String {
    format!("{}\n", fleet::cli::report(&fleet::cli::Opts::default()))
}

// --- tables --------------------------------------------------------------

fn render_appendix(out: &mut String) {
    w!(out, "Table 14/15 — the failure catalog (appendix fields as transcribed)");
    w!(
        out,
        "  {:>3} {:<15} {:<8} {:<7} {:<30} {:<9} {:<14}",
        "id", "system", "source", "ref", "impact", "partition", "timing"
    );
    for f in catalog() {
        let source = match f.source {
            Source::IssueTracker => "tracker",
            Source::Jepsen => "jepsen",
            Source::Neat => "NEAT",
        };
        let partition = match f.partition {
            PartitionType::Complete => "complete",
            PartitionType::Partial => "partial",
            PartitionType::Simplex => "simplex",
        };
        let timing = match f.timing {
            Timing::Deterministic => "deterministic",
            Timing::Fixed => "fixed",
            Timing::Bounded => "bounded",
            Timing::Unknown => "unknown",
        };
        w!(
            out,
            "  {:>3} {:<15} {:<8} {:<7} {:<30} {:<9} {:<14}",
            f.id,
            f.system.name(),
            source,
            f.reference,
            f.impact.label(),
            partition,
            timing
        );
    }
    w!(out);
}

/// Exact stdout of `cargo run -p bench --bin tables`. `Err` carries the
/// diagnostic the binary prints to stderr before exiting non-zero.
pub fn tables_report() -> Result<String, String> {
    let mut out = String::new();
    w!(out, "== An Analysis of Network-Partitioning Failures in Cloud Systems ==");
    w!(out, "== Table regeneration: paper vs this reproduction ==\n");

    // Table 1 has a different shape (absolute counts per system).
    w!(out, "Table 1 — List of studied systems");
    w!(
        out,
        "  {:<15} {:<16} {:>8} {:>8} {:>10} {:>10}",
        "system", "consistency", "paper#", "ours#", "paper-cat", "ours-cat"
    );
    let mut totals = (0, 0, 0, 0);
    for (s, consistency, pt, t, pc, c) in stats::table1() {
        w!(
            out,
            "  {:<15} {:<16} {:>8} {:>8} {:>10} {:>10}",
            s.name(),
            consistency,
            pt,
            t,
            pc,
            c
        );
        totals = (totals.0 + pt, totals.1 + t, totals.2 + pc, totals.3 + c);
    }
    w!(
        out,
        "  {:<15} {:<16} {:>8} {:>8} {:>10} {:>10}\n",
        "Total", "-", totals.0, totals.1, totals.2, totals.3
    );

    for t in stats::all_tables() {
        w!(out, "{}", t.render());
    }

    let (_, design_days, impl_days) = stats::table12();
    w!(
        out,
        "Table 12 resolution times: design {design_days:.0} days (paper: 205), \
         implementation {impl_days:.0} days (paper: 81)\n"
    );

    render_appendix(&mut out);

    let Some(worst) = stats::all_tables()
        .into_iter()
        .map(|t| (t.id, t.max_delta()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
    else {
        return Err("tables: statistics engine produced no tables".to_string());
    };
    w!(
        out,
        "largest paper-vs-measured delta across all tables: {:.1} points ({})",
        worst.1, worst.0
    );
    Ok(out)
}

// --- figures -------------------------------------------------------------

/// A do-nothing application for the Figure 1 connectivity demo.
struct Idle;
impl Application for Idle {
    type Msg = ();
    fn on_start(&mut self, _: &mut Ctx<'_, ()>) {}
    fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
    fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerId, _: u64) {}
}

fn figure1(out: &mut String) {
    w!(out, "== Figure 1: the three network-partitioning fault types ==\n");
    fn show(out: &mut String, title: &str, f: &dyn Fn(&mut neat::Neat<Idle>) -> neat::Partition) {
        let mut engine = neat::Neat::new(WorldBuilder::new(1).build(5, |_| Idle));
        let p = f(&mut engine);
        w!(out, "{title} (1 = i→j flows):");
        w!(out, "{}", engine.world.net().connectivity_matrix(5));
        engine.heal(&p);
        w!(out, "after heal:");
        w!(out, "{}", engine.world.net().connectivity_matrix(5));
    }
    let g1 = [NodeId(0), NodeId(1)];
    let g2 = [NodeId(2), NodeId(3), NodeId(4)];
    show(out, "(a) complete partition {0,1} | {2,3,4}", &|e| {
        e.partition_complete(&g1, &g2)
    });
    let g2b = [NodeId(2), NodeId(3)];
    show(out, "(b) partial partition {0,1} | {2,3}; node 4 bridges", &|e| {
        e.partition_partial(&g1, &g2b)
    });
    show(out, "(c) simplex partition: {0,1} → {2,3,4} dropped", &|e| {
        e.partition_simplex(&g1, &g2)
    });
}

fn figure2(out: &mut String) {
    w!(out, "== Figure 2: dirty read in VoltDB (ENG-10389) ==\n");
    let o = repkv::scenarios::dirty_and_stale_read(repkv::Config::voltdb(), 7, true);
    w!(out, "{}", o.trace);
    w!(out, "history:\n{}", o.history);
    for v in &o.violations {
        w!(out, "  VIOLATION: {v}");
    }
    let fixed = repkv::scenarios::dirty_and_stale_read(repkv::Config::fixed(), 7, false);
    w!(out, "  fixed profile violations: {}\n", fixed.violations.len());
}

fn figure3(out: &mut String) {
    w!(out, "== Figure 3: MapReduce double execution (MAPREDUCE-4819) ==\n");
    let (violations, trace, _timeline) = sched::double_execution(
        sched::MrFlaws {
            relaunch_without_checking: true,
        },
        81,
        true,
    );
    w!(out, "{trace}");
    for v in &violations {
        w!(out, "  VIOLATION: {v}");
    }
    let (fixed, _, _) = sched::double_execution(
        sched::MrFlaws {
            relaunch_without_checking: false,
        },
        81,
        false,
    );
    w!(out, "  fixed ResourceManager violations: {}\n", fixed.len());
}

fn figure5(out: &mut String) {
    w!(out, "== Figure 5: Ignite semaphore double locking (IGNITE-8882) ==\n");
    let o = gridstore::scenarios::semaphore_double_lock(gridstore::GridFlaws::flawed(), 61, true);
    w!(out, "{}", o.trace);
    for v in &o.violations {
        w!(out, "  VIOLATION: {v}");
    }
    let fixed =
        gridstore::scenarios::semaphore_double_lock(gridstore::GridFlaws::fixed(), 61, false);
    w!(
        out,
        "  with split-brain protection: {} violations\n",
        fixed.violations.len()
    );
}

fn figure6(out: &mut String) {
    w!(out, "== Figure 6: ActiveMQ hangs under a partial partition (AMQ-7064) ==\n");
    let o = mqueue::scenarios::fig6_hang(mqueue::BrokerFlaws::flawed(), 41, true);
    w!(out, "{}", o.trace);
    for v in &o.violations {
        w!(out, "  VIOLATION: {v}");
    }
    let fixed = mqueue::scenarios::fig6_hang(mqueue::BrokerFlaws::fixed(), 41, false);
    w!(out, "  fixed brokers violations: {}\n", fixed.violations.len());
}

fn bounded_timing(out: &mut String) {
    w!(out, "== §5.2: a bounded-timing failure — the fault must overlap a sync ==\n");
    let flawed = coord::CoordFlaws {
        apply_chunks_in_place: true,
        ..coord::CoordFlaws::default()
    };
    let o = coord::scenarios::sync_interrupted_corruption(flawed, 57, true);
    w!(out, "{}", o.trace);
    for v in &o.violations {
        w!(out, "  VIOLATION: {v}");
    }
    let fixed = coord::scenarios::sync_interrupted_corruption(coord::CoordFlaws::default(), 57, false);
    w!(
        out,
        "  atomic chunk installation (fixed): {} violations\n",
        fixed.violations.len()
    );
}

fn finding13(out: &mut String) {
    w!(out, "== Finding 13 / §5.4: findings-guided vs naive random testing ==\n");
    let trials = 40;
    for (name, config) in [
        ("VoltDB profile", repkv::Config::voltdb()),
        ("Elasticsearch profile", repkv::Config::elasticsearch()),
        ("fixed baseline", repkv::Config::fixed()),
    ] {
        let mut target = repkv::RepkvTarget::new(config);
        let guided = explore(&mut target, &Strategy::findings_guided(), trials, 99);
        let naive = explore(&mut target, &Strategy::naive(3), trials, 99);
        w!(
            out,
            "  {name:<24} guided: {:>2}/{trials} trials hit (first at #{:?})   naive: {:>2}/{trials}",
            guided.trials_with_violation,
            guided.first_violation_trial,
            naive.trials_with_violation,
        );
    }
    // The data grid gives the explorer the full Table 8 palette (locks,
    // queues, counters).
    for (name, flaws) in [
        ("Ignite-like grid (flawed)", gridstore::GridFlaws::flawed()),
        ("grid + protection (fixed)", gridstore::GridFlaws::fixed()),
    ] {
        let mut target = gridstore::GridTarget::new(flaws);
        let guided = explore(&mut target, &Strategy::findings_guided(), trials, 99);
        let naive = explore(&mut target, &Strategy::naive(3), trials, 99);
        w!(
            out,
            "  {name:<24} guided: {:>2}/{trials} trials hit (first at #{:?})   naive: {:>2}/{trials}",
            guided.trials_with_violation,
            guided.first_violation_trial,
            naive.trials_with_violation,
        );
    }
    w!(
        out,
        "\n  Shape check: guided >> naive on flawed profiles, both zero on the fixed\n  \
         baseline — the paper's testability claim (93% reproducible via guided tests)."
    );
}

/// Exact stdout of `cargo run -p bench --bin figures`.
pub fn figures_report() -> String {
    let mut out = String::new();
    figure1(&mut out);
    figure2(&mut out);
    figure3(&mut out);
    figure5(&mut out);
    figure6(&mut out);
    bounded_timing(&mut out);
    finding13(&mut out);
    w!(
        out,
        "(Figure 4 — the NEAT architecture — is this framework itself; its \
              overhead is measured by `cargo bench -p bench`.)"
    );
    out
}

// --- forensics -----------------------------------------------------------

/// Exact content of `forensics_output.txt`: every flawed arm of the
/// campaign run at the historical seed 8 with trace recording on, each
/// explained as a Listing-1/2-style failure timeline.
pub fn forensics_report() -> String {
    let reports = neat_repro::campaign::forensic_reports(8);
    neat_repro::campaign::render_forensics(8, &reports)
}

/// The machine-readable companion stream (`--jsonl`): the same seed-8
/// sweep as JSONL, one `report` header line per scenario followed by its
/// timeline events.
pub fn forensics_jsonl() -> String {
    neat_repro::campaign::forensics_jsonl(&neat_repro::campaign::forensic_reports(8))
}

/// Exact content of `BENCH_forensics.json`: the simulation counters of
/// the seed-8 forensics sweep, aggregate and per scenario. Unlike
/// `BENCH_fleet.json` this records no wall-clock numbers, so it is fully
/// deterministic and golden-tested byte-for-byte.
pub fn forensics_machine_json() -> String {
    let reports = neat_repro::campaign::forensic_reports(8);
    let detected = reports.iter().filter(|r| r.detected()).count();
    let mut total = neat::obs::Counters::default();
    for r in &reports {
        total.merge(&r.timeline.counters);
    }
    let counters = |out: &mut String, c: &neat::obs::Counters| {
        let _ = write!(
            out,
            "{{\"events_simulated\":{},\"messages_dropped\":{},\"ops_ordered\":{},\
             \"partitions_installed\":{},\"heals\":{},\"degrades_installed\":{},\
             \"degrade_heals\":{},\"crashes\":{},\"restarts\":{},\
             \"verdicts\":{},\"load_samples\":{}}}",
            c.events_simulated,
            c.messages_dropped,
            c.ops_ordered,
            c.partitions_installed,
            c.heals,
            c.degrades_installed,
            c.degrade_heals,
            c.crashes,
            c.restarts,
            c.verdicts,
            c.load_samples,
        );
    };
    let mut out = format!(
        "{{\"bench\":\"forensics\",\"seed\":8,\"scenarios\":{},\"detected\":{detected},\
         \"counters\":",
        reports.len()
    );
    counters(&mut out, &total);
    out.push_str(",\"per_scenario\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"scenario\":");
        study::json::push_json_str(&mut out, &r.scenario);
        let _ = write!(
            out,
            ",\"violations\":{},\"events\":{},\"counters\":",
            r.violations.len(),
            r.timeline.len()
        );
        counters(&mut out, &r.timeline.counters);
        out.push('}');
    }
    out.push_str("]}");
    format!("{}\n", study::json::pretty(&out))
}

// --- gray failures -------------------------------------------------------

/// The registry's gray-failure scenarios: degraded, not severed, links
/// (`gray-partial`, `gray-simplex`, and `flapping` partition labels).
fn gray_partition(partition: &str) -> bool {
    matches!(partition, "gray-partial" | "gray-simplex" | "flapping")
}

/// Exact content of `BENCH_gray.json`: every gray-failure scenario of the
/// campaign at the historical seed 8 — both arms' checker verdicts side
/// by side (the no-retry vs retry-with-backoff contrast) plus the
/// degradation counters of the flawed run. Like `BENCH_forensics.json`
/// this records no wall-clock numbers, so it is fully deterministic and
/// golden-tested byte-for-byte.
pub fn gray_machine_json() -> String {
    let specs = neat_repro::campaign::registry();
    let gray: Vec<&neat_repro::campaign::ScenarioSpec> = specs
        .iter()
        .filter(|s| gray_partition(s.partition))
        .collect();
    let arms: usize = gray
        .iter()
        .map(|s| 1 + usize::from(s.fixed.is_some()))
        .sum();
    let kinds = |vs: &[neat::Violation]| {
        let mut ks: Vec<String> = vs.iter().map(|v| v.kind.to_string()).collect();
        ks.sort();
        ks.dedup();
        ks
    };
    let push_kinds = |out: &mut String, ks: &[String]| {
        out.push('[');
        for (i, k) in ks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            study::json::push_json_str(out, k);
        }
        out.push(']');
    };
    let mut out = format!(
        "{{\"bench\":\"gray\",\"seed\":8,\"scenarios\":{},\"arms\":{arms},\
         \"per_scenario\":[",
        gray.len()
    );
    for (i, s) in gray.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let flawed = (s.flawed)(8, neat_repro::campaign::RunMode::Trace);
        let fixed = s.fixed.as_ref().map(|f| f(8, neat_repro::campaign::RunMode::Trace));
        out.push_str("{\"scenario\":");
        study::json::push_json_str(&mut out, s.name);
        out.push_str(",\"partition\":");
        study::json::push_json_str(&mut out, s.partition);
        out.push_str(",\"flawed\":");
        push_kinds(&mut out, &kinds(&flawed.violations));
        out.push_str(",\"fixed\":");
        push_kinds(
            &mut out,
            &fixed.map(|f| kinds(&f.violations)).unwrap_or_default(),
        );
        let c = &flawed.timeline.counters;
        let _ = write!(
            out,
            ",\"degrades_installed\":{},\"degrade_heals\":{},\
             \"messages_dropped\":{},\"verdicts\":{}}}",
            c.degrades_installed, c.degrade_heals, c.messages_dropped, c.verdicts,
        );
    }
    out.push_str("]}");
    format!("{}\n", study::json::pretty(&out))
}

// --- load workloads ------------------------------------------------------

/// The registry's load-driven scenarios: every partition label the
/// workload family registers starts with `load` (so the gray filters
/// above never claim them, and vice versa).
fn workload_partition(partition: &str) -> bool {
    partition.starts_with("load")
}

/// Shards of the sharded open-loop read ladder; fixed, so the shard
/// decomposition — and therefore every shard's report — never depends on
/// the `--jobs` rung being measured.
const LADDER_SHARDS: usize = 8;

/// The `--jobs` rungs the determinism ladder climbs.
const LADDER_JOBS: [usize; 4] = [1, 2, 4, 8];

/// Exact content of `BENCH_workload.json`: every load-driven scenario of
/// the campaign at the historical seed 8 — both arms' checker verdicts,
/// the flawed arm's per-op outcome counts and latency percentiles from
/// the forensic timeline — plus the sharded open-loop read ladder:
/// `ladder_ops` operations split over [`LADDER_SHARDS`] shards, run at
/// every [`LADDER_JOBS`] rung, with the merged reports compared
/// byte-for-byte. All numbers are virtual-time, so the artifact is fully
/// deterministic; the binary runs the ladder at a million ops.
pub fn workload_machine_json(ladder_ops: u64) -> String {
    let specs = neat_repro::campaign::registry();
    let load: Vec<&neat_repro::campaign::ScenarioSpec> = specs
        .iter()
        .filter(|s| workload_partition(s.partition))
        .collect();
    let arms: usize = load
        .iter()
        .map(|s| 1 + usize::from(s.fixed.is_some()))
        .sum();
    let kinds = |vs: &[neat::Violation]| {
        let mut ks: Vec<String> = vs.iter().map(|v| v.kind.to_string()).collect();
        ks.sort();
        ks.dedup();
        ks
    };
    let push_kinds = |out: &mut String, ks: &[String]| {
        out.push('[');
        for (i, k) in ks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            study::json::push_json_str(out, k);
        }
        out.push(']');
    };
    let mut out = format!(
        "{{\"bench\":\"workload\",\"seed\":8,\"load_scenarios\":{},\"arms\":{arms},\
         \"per_scenario\":[",
        load.len()
    );
    for (i, s) in load.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let flawed = (s.flawed)(8, neat_repro::campaign::RunMode::Trace);
        let fixed = s.fixed.as_ref().map(|f| f(8, neat_repro::campaign::RunMode::Trace));
        out.push_str("{\"scenario\":");
        study::json::push_json_str(&mut out, s.name);
        out.push_str(",\"partition\":");
        study::json::push_json_str(&mut out, s.partition);
        out.push_str(",\"flawed\":");
        push_kinds(&mut out, &kinds(&flawed.violations));
        out.push_str(",\"fixed\":");
        push_kinds(
            &mut out,
            &fixed.map(|f| kinds(&f.violations)).unwrap_or_default(),
        );
        let (ok, fail, timeout) = flawed.timeline.op_outcome_counts();
        let (p50, p99, p999, max) = flawed
            .timeline
            .latency_percentiles()
            .unwrap_or((0, 0, 0, 0));
        let _ = write!(
            out,
            ",\"ops\":{},\"ok\":{ok},\"fail\":{fail},\"timeout\":{timeout},\
             \"p50\":{p50},\"p99\":{p99},\"p999\":{p999},\"max\":{max},\
             \"load_samples\":{}}}",
            ok + fail + timeout,
            flawed.timeline.counters.load_samples,
        );
    }
    out.push_str("],\"open_loop\":");

    // The determinism ladder: the same sharded run at every jobs rung
    // must merge to the same bytes (fleet's index-sorted reduce plus
    // shard-pure reports make scheduling invisible).
    let per_shard = ladder_ops / LADDER_SHARDS as u64;
    let mut rendered: Vec<String> = Vec::new();
    let mut merged = workload::LoadReport::default();
    for (r, &jobs) in LADDER_JOBS.iter().enumerate() {
        let shards = fleet::pool::map(jobs, LADDER_SHARDS, |i| {
            repkv::load::open_loop_read_shard(i as u64, per_shard)
        });
        let mut total = workload::LoadReport::default();
        for s in &shards {
            total.merge(s);
        }
        if r == 0 {
            merged = total.clone();
        }
        rendered.push(total.render());
    }
    let byte_identical = rendered.iter().all(|r| *r == rendered[0]);
    let _ = write!(
        out,
        "{{\"ops\":{},\"shards\":{LADDER_SHARDS},\"jobs\":[1,2,4,8],\
         \"byte_identical\":{byte_identical},\"issued\":{},\"ok\":{},\
         \"fail\":{},\"timeout\":{},\"p50\":{},\"p99\":{},\"p999\":{},\
         \"max\":{},\"report\":",
        per_shard * LADDER_SHARDS as u64,
        merged.issued,
        merged.ok,
        merged.failed,
        merged.timed_out,
        merged.latency.p50().unwrap_or(0),
        merged.latency.p99().unwrap_or(0),
        merged.latency.p999().unwrap_or(0),
        merged.latency.max().unwrap_or(0),
    );
    study::json::push_json_str(&mut out, &rendered[0]);
    out.push_str("}}");
    format!("{}\n", study::json::pretty(&out))
}

// --- lint scan counters --------------------------------------------------

/// Exact content of `BENCH_lint.json`: the determinism-lint scan of the
/// whole workspace reduced to deterministic counters — files, lines, and
/// tokens scanned, `use` declarations resolved, allow sites and how many
/// of them suppress something, per-rule finding/allow counts, and the
/// registry-consistency verdict. A pure function of the committed source
/// tree (no wall-clock numbers), so it is golden-tested byte-for-byte
/// and regenerating it flags any scan regression as a diff.
pub fn lint_machine_json() -> String {
    use std::fmt::Write as _;

    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let report = match lint::analyze_workspace(root) {
        Ok(r) => r,
        Err(e) => panic!("lint scan of {} failed: {e}", root.display()),
    };
    let registry = lint::check_registry(root);
    let s = &report.stats;
    let mut out = format!(
        "{{\"bench\":\"lint\",\"files\":{},\"lines\":{},\"tokens\":{},\
         \"use_decls\":{},\"allow_sites\":{},\"allows_used\":{},\
         \"unused_allows\":{},\"findings_total\":{},\"per_rule\":[",
        s.files,
        s.lines,
        s.tokens,
        s.use_decls,
        s.allow_sites,
        s.allows_used,
        report.unused_allows.len(),
        report.findings.len(),
    );
    for (i, (rule, findings, allows)) in s.per_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        study::json::push_json_str(&mut out, rule.name());
        let _ = write!(out, ",\"findings\":{findings},\"allows\":{allows}}}");
    }
    let _ = write!(
        out,
        "],\"registry\":{{\"scenarios\":{},\"arms\":{},\"findings\":{}}}}}",
        registry.scenarios,
        registry.arms,
        registry.findings.len(),
    );
    format!("{}\n", study::json::pretty(&out))
}

// --- coverage-guided exploration -----------------------------------------

/// The registry's delta-minimized explorer regressions: every scenario the
/// exploration pipeline ships carries an `explored*` partition label (so
/// the gray and load filters above never claim them, and vice versa).
fn explored_partition(partition: &str) -> bool {
    partition.starts_with("explored")
}

/// Trial budget per strategy/target pair — the equal budget at which the
/// acceptance criterion compares coverage-guided search against naive
/// random testing.
const EXPLORE_TRIALS: usize = 30;

/// Base seed of the exploration comparison (the campaign's historical 8).
const EXPLORE_SEED: u64 = 8;

/// Shard layout of the jobs-invariance check: [`EXPLORE_SHARDS`] shards of
/// [`EXPLORE_SHARD_TRIALS`] trials each, merged at every jobs rung.
const EXPLORE_SHARDS: usize = 4;

/// Trials per shard in the jobs-invariance check.
const EXPLORE_SHARD_TRIALS: usize = 6;

/// Runs one strategy at the standard budget and serializes its report.
fn push_explore_arm(out: &mut String, label: &str, report: &neat::explore::ExplorationReport) {
    use std::fmt::Write as _;

    out.push('"');
    out.push_str(label);
    out.push_str("\":{\"hits\":");
    let _ = write!(out, "{}", report.trials_with_violation);
    out.push_str(",\"first\":");
    match report.first_violation_trial {
        Some(t) => {
            let _ = write!(out, "{t}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"distinct_kinds\":{},\"signatures\":{},\"kinds\":[",
        report.distinct_kinds(),
        report.signatures.len()
    );
    for (i, kind) in report.kinds.keys().enumerate() {
        if i > 0 {
            out.push(',');
        }
        study::json::push_json_str(out, &kind.to_string());
    }
    out.push_str("]}");
}

/// Builds the baked plan for one explored registry scenario at
/// [`EXPLORE_SEED`] and re-proves its 1-minimality by replay.
fn explored_plan_facts<T: neat::explore::TestTarget>(
    mut probe: T,
    mut target: T,
    build: impl Fn(&[simnet::NodeId], simnet::NodeId) -> neat::explore::SchedulePlan,
    kind: neat::ViolationKind,
) -> (usize, String, bool) {
    use neat::explore::{minimize::is_one_minimal, run_schedule, SchedulePlan};

    probe.reset(EXPLORE_SEED, false);
    let servers = probe.servers();
    let victim = probe.leader().unwrap_or(servers[0]);
    let plan = build(&servers, victim);
    let one_minimal = is_one_minimal(&plan.steps, |steps| {
        target.reset(EXPLORE_SEED, false);
        run_schedule(&mut target, &SchedulePlan { steps: steps.to_vec() })
            .iter()
            .any(|v| v.kind == kind)
    });
    (plan.steps.len(), plan.render(), one_minimal)
}

/// Exact content of `BENCH_explore.json`: the coverage-guided exploration
/// pipeline measured end to end at the historical seed 8.
///
/// Three sections:
/// - `targets`: naive vs findings-guided vs coverage-guided hit rates and
///   distinct violation kinds on three real flawed systems at an equal
///   [`EXPLORE_TRIALS`]-trial budget, with the acceptance verdict
///   (`coverage_strictly_better_targets >= 2`) computed from the same
///   numbers the tier-1 test asserts on.
/// - `sharded`: the fleet's sharded exploration merged at 1, 2, and 4
///   jobs, compared byte-for-byte.
/// - `minimized`: every delta-minimized registry regression — both arms'
///   verdicts at seed 8 plus a fresh 1-minimality proof by replay.
///
/// All numbers are virtual-time and seed-pure, so the artifact is fully
/// deterministic and golden-tested byte-for-byte.
pub fn explore_machine_json() -> String {
    use std::fmt::Write as _;

    use neat::explore::{explore, Strategy, TestTarget};

    let kinds = |vs: &[neat::Violation]| {
        let mut ks: Vec<String> = vs.iter().map(|v| v.kind.to_string()).collect();
        ks.sort();
        ks.dedup();
        ks
    };
    let push_kinds = |out: &mut String, ks: &[String]| {
        out.push('[');
        for (i, k) in ks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            study::json::push_json_str(out, k);
        }
        out.push(']');
    };

    let mut out = format!(
        "{{\"bench\":\"explore\",\"seed\":{EXPLORE_SEED},\
         \"trials_per_strategy\":{EXPLORE_TRIALS},\"targets\":["
    );

    // Strategy comparison at equal budget on three real flawed systems.
    type MakeTarget = Box<dyn Fn() -> Box<dyn TestTarget>>;
    let targets: Vec<(&str, MakeTarget)> = vec![
        (
            "repkv-voltdb",
            Box::new(|| Box::new(repkv::RepkvTarget::new(repkv::Config::voltdb()))),
        ),
        (
            "gridstore-flawed",
            Box::new(|| Box::new(gridstore::GridTarget::new(gridstore::GridFlaws::flawed()))),
        ),
        (
            "mqueue-flawed",
            Box::new(|| {
                Box::new(mqueue::explorer::MqTarget::new(mqueue::BrokerFlaws::flawed()))
            }),
        ),
    ];
    let mut strictly_better = 0usize;
    for (i, (name, make)) in targets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut target = make();
        let naive = explore(target.as_mut(), &Strategy::naive(4), EXPLORE_TRIALS, EXPLORE_SEED);
        let guided = explore(
            target.as_mut(),
            &Strategy::findings_guided(),
            EXPLORE_TRIALS,
            EXPLORE_SEED,
        );
        let coverage = explore(
            target.as_mut(),
            &Strategy::coverage_guided(4),
            EXPLORE_TRIALS,
            EXPLORE_SEED,
        );
        let beats = coverage.distinct_kinds() > naive.distinct_kinds();
        strictly_better += usize::from(beats);
        out.push_str("{\"target\":");
        study::json::push_json_str(&mut out, name);
        out.push(',');
        push_explore_arm(&mut out, "naive", &naive);
        out.push(',');
        push_explore_arm(&mut out, "guided", &guided);
        out.push(',');
        push_explore_arm(&mut out, "coverage", &coverage);
        let _ = write!(out, ",\"coverage_beats_naive\":{beats}}}");
    }
    let _ = write!(out, "],\"coverage_strictly_better_targets\":{strictly_better}");

    // Sharded merge invariance: serial vs 2 and 4 jobs, byte-for-byte.
    let make = || repkv::RepkvTarget::new(repkv::Config::voltdb());
    let strategy = Strategy::coverage_guided(4);
    let serial = fleet::explore::explore_sharded(
        1,
        EXPLORE_SHARDS,
        EXPLORE_SEED,
        make,
        &strategy,
        EXPLORE_SHARD_TRIALS,
    );
    let byte_identical = [2usize, 4].iter().all(|&jobs| {
        let parallel = fleet::explore::explore_sharded(
            jobs,
            EXPLORE_SHARDS,
            EXPLORE_SEED,
            make,
            &strategy,
            EXPLORE_SHARD_TRIALS,
        );
        format!("{parallel:?}") == format!("{serial:?}")
    });
    let _ = write!(
        out,
        ",\"sharded\":{{\"shards\":{EXPLORE_SHARDS},\
         \"trials_per_shard\":{EXPLORE_SHARD_TRIALS},\"jobs\":[1,2,4],\
         \"byte_identical\":{byte_identical},\"corpus\":{},\"finds\":{},\
         \"signatures\":{}}}",
        serial.corpus.len(),
        serial.finds.len(),
        serial.report.signatures.len(),
    );

    // Delta-minimized registry regressions: both arms at seed 8 plus a
    // fresh 1-minimality proof by replay.
    let specs = neat_repro::campaign::registry();
    let explored: Vec<&neat_repro::campaign::ScenarioSpec> = specs
        .iter()
        .filter(|s| explored_partition(s.partition))
        .collect();
    out.push_str(",\"minimized\":[");
    for (i, s) in explored.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let flawed = (s.flawed)(EXPLORE_SEED, neat_repro::campaign::RunMode::Quick);
        let fixed = s
            .fixed
            .as_ref()
            .map(|f| f(EXPLORE_SEED, neat_repro::campaign::RunMode::Quick));
        let (steps, plan, one_minimal) = match s.name {
            "explored_simplex_leader_write" => explored_plan_facts(
                repkv::RepkvTarget::new(repkv::Config::voltdb()),
                repkv::RepkvTarget::new(repkv::Config::voltdb()),
                repkv::explored::simplex_leader_write_plan,
                neat::ViolationKind::DataCorruption,
            ),
            "explored_simplex_heal_write" => explored_plan_facts(
                gridstore::GridTarget::new(gridstore::GridFlaws::flawed()),
                gridstore::GridTarget::new(gridstore::GridFlaws::flawed()),
                gridstore::explored::simplex_heal_write_plan,
                neat::ViolationKind::DataLoss,
            ),
            "explored_partition_double_dequeue" => explored_plan_facts(
                mqueue::explorer::MqTarget::new(mqueue::BrokerFlaws::flawed()),
                mqueue::explorer::MqTarget::new(mqueue::BrokerFlaws::flawed()),
                mqueue::explored::partition_double_dequeue_plan,
                neat::ViolationKind::DoubleDequeue,
            ),
            other => panic!("explored scenario {other} has no plan builder in the bench"),
        };
        out.push_str("{\"scenario\":");
        study::json::push_json_str(&mut out, s.name);
        out.push_str(",\"system\":");
        study::json::push_json_str(&mut out, s.system);
        out.push_str(",\"partition\":");
        study::json::push_json_str(&mut out, s.partition);
        let _ = write!(out, ",\"steps\":{steps},\"plan\":");
        study::json::push_json_str(&mut out, &plan);
        out.push_str(",\"flawed\":");
        push_kinds(&mut out, &kinds(&flawed.violations));
        out.push_str(",\"fixed\":");
        push_kinds(
            &mut out,
            &fixed.map(|f| kinds(&f.violations)).unwrap_or_default(),
        );
        let _ = write!(out, ",\"one_minimal\":{one_minimal}}}");
    }
    let _ = write!(
        out,
        "],\"minimized_count\":{},\"explored_scenarios\":{}}}",
        explored.len(),
        explored.len(),
    );
    format!("{}\n", study::json::pretty(&out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_report_matches_the_serial_library_run() {
        let expected = format!(
            "{}\n",
            neat_repro::campaign::render(&neat_repro::campaign::run_all_scenarios(8))
        );
        assert_eq!(campaign_report(), expected);
    }

    #[test]
    fn tables_report_renders_every_table() {
        let out = tables_report().expect("tables render");
        assert!(out.contains("Table 1 — List of studied systems"));
        assert!(out.contains("largest paper-vs-measured delta"));
    }

    #[test]
    fn figures_report_is_deterministic() {
        assert_eq!(figures_report(), figures_report());
    }

    #[test]
    fn forensics_report_covers_every_scenario() {
        let out = forensics_report();
        assert!(out.starts_with("== NEAT failure forensics ==\n"), "{out}");
        for s in neat_repro::campaign::run_all_scenarios(8) {
            assert!(
                out.contains(&format!("== {} — ", s.name)),
                "missing forensics block for {}",
                s.name
            );
        }
        assert!(out.contains("aggregate counters: events="), "{out}");
    }

    #[test]
    fn forensics_jsonl_is_one_report_per_scenario() {
        let stream = forensics_jsonl();
        let headers = stream
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"report\""))
            .count();
        assert_eq!(headers, neat_repro::campaign::scenario_count());
        assert!(stream.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn explore_machine_json_meets_the_acceptance_criteria() {
        let json = explore_machine_json();
        assert!(json.contains("\"bench\": \"explore\""), "{json}");
        let compact: String = json.chars().filter(|c| !c.is_whitespace()).collect();
        // Acceptance: coverage-guided search finds strictly more distinct
        // violation kinds than naive random testing at the same trial
        // budget on at least two real targets.
        let better: usize = compact
            .split("\"coverage_strictly_better_targets\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("coverage_strictly_better_targets present");
        assert!(better >= 2, "coverage beat naive on {better} targets: {json}");
        // Sharded exploration must merge byte-identically at every rung.
        assert!(compact.contains("\"byte_identical\":true"), "{json}");
        // Every shipped regression is 1-minimal, reproduces when flawed,
        // and is clean when repaired.
        assert!(!compact.contains("\"one_minimal\":false"), "{json}");
        assert!(!compact.contains("\"flawed\":[]"), "{json}");
        assert!(compact.contains("\"fixed\":[]"), "{json}");
        let explored: Vec<_> = neat_repro::campaign::registry()
            .into_iter()
            .filter(|s| explored_partition(s.partition))
            .collect();
        assert!(explored.len() >= 2, "only {} explored scenarios", explored.len());
        for s in &explored {
            assert!(json.contains(&format!("\"{}\"", s.name)), "missing {}", s.name);
        }
        assert!(
            compact.contains(&format!("\"minimized_count\":{}", explored.len())),
            "{json}"
        );
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn gray_machine_json_covers_every_gray_scenario() {
        let json = gray_machine_json();
        assert!(json.contains("\"bench\": \"gray\""), "{json}");
        let gray: Vec<_> = neat_repro::campaign::registry()
            .into_iter()
            .filter(|s| gray_partition(s.partition))
            .collect();
        assert!(gray.len() >= 6, "only {} gray scenarios", gray.len());
        for s in &gray {
            assert!(json.contains(&format!("\"{}\"", s.name)), "missing {}", s.name);
        }
        // Every gray scenario installs at least one degradation, detects a
        // violation when flawed, and is clean when repaired. (The pretty
        // printer spreads arrays over lines, so compare whitespace-free.)
        let compact: String = json.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(!compact.contains("\"degrades_installed\":0"), "{json}");
        assert!(!compact.contains("\"flawed\":[]"), "{json}");
        assert!(compact.contains("\"fixed\":[]"), "{json}");
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn workload_machine_json_covers_every_load_scenario() {
        // A small ladder keeps the test quick; the binary runs a million.
        let json = workload_machine_json(4000);
        assert!(json.contains("\"bench\": \"workload\""), "{json}");
        let load: Vec<_> = neat_repro::campaign::registry()
            .into_iter()
            .filter(|s| workload_partition(s.partition))
            .collect();
        assert!(load.len() >= 5, "only {} load scenarios", load.len());
        for s in &load {
            assert!(json.contains(&format!("\"{}\"", s.name)), "missing {}", s.name);
        }
        // Every load scenario drives real traffic, samples the stream,
        // detects when flawed, and is clean when repaired; the ladder
        // merges byte-identically at every jobs rung.
        let compact: String = json.chars().filter(|c| !c.is_whitespace()).collect();
        assert!(!compact.contains("\"ops\":0,"), "{json}");
        assert!(!compact.contains("\"load_samples\":0"), "{json}");
        assert!(!compact.contains("\"flawed\":[]"), "{json}");
        assert!(compact.contains("\"fixed\":[]"), "{json}");
        assert!(compact.contains("\"byte_identical\":true"), "{json}");
        // Healthy-cluster ladder shards must answer every read: a shard
        // streaming against a stale leader shows up as fails here.
        assert!(compact.contains("\"issued\":4000,\"ok\":4000,\"fail\":0"), "{json}");
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn gray_and_workload_partitions_never_overlap() {
        for s in neat_repro::campaign::registry() {
            assert!(
                !(gray_partition(s.partition) && workload_partition(s.partition)),
                "{} claimed by both families",
                s.name
            );
        }
    }

    #[test]
    fn forensics_machine_json_counts_match_the_report() {
        let json = forensics_machine_json();
        assert!(json.contains("\"bench\": \"forensics\""), "{json}");
        assert!(
            json.contains(&format!(
                "\"scenarios\": {}",
                neat_repro::campaign::scenario_count()
            )),
            "{json}"
        );
        assert!(json.contains("\"events_simulated\": "), "{json}");
        assert!(json.ends_with('\n'));
    }
}
