//! A ZooKeeper-like coordination service with the paper's documented
//! synchronization flaws.
//!
//! The service provides a replicated hierarchical namespace (znodes) with
//! quorum writes, local reads, heartbeat sessions, and ephemeral nodes —
//! the substrate other systems in this workspace use for leader tracking,
//! exactly as ActiveMQ uses ZooKeeper in the paper's Figure 6.
//!
//! Seeded flaws (see [`CoordFlaws`]):
//!
//! - **ZOOKEEPER-2099** — storage (snapshot) sync does not update the
//!   in-memory transaction log; a later in-memory-log sync from that node
//!   replicates a log with a hole and corrupts the learner's tree.
//! - **ZOOKEEPER-2355** — ephemeral cleanup abandoned when a follower is
//!   unreachable; a dead session's lock nodes survive forever.
//!
//! [`CoordServer`] and [`CoordSession`] are generic over [`CoordWire`] so a
//! host system can embed ensemble members and sessions inside its own
//! message type.

pub mod client;
pub mod cluster;
pub mod msg;
pub mod scenarios;
pub mod server;

pub use client::{CoordClient, CoordClientProc, CoordSession};
pub use cluster::{CoordCluster, CoordProc};
pub use msg::{CoordMsg, CoordReq, CoordResp, CoordWire, Tree, Txn, TxnKind, Znode};
pub use server::{CoordFlaws, CoordRole, CoordServer};
