//! The coordination-service failures as seeded scenarios.

use std::collections::BTreeMap;

use neat::{
    checkers::{check_register, RegisterSemantics},
    rest_of, Violation, ViolationKind,
};

use crate::{
    cluster::CoordCluster,
    server::CoordFlaws,
};

/// What a coordination scenario produced.
#[derive(Debug)]
pub struct CoordOutcome {
    pub violations: Vec<Violation>,
    pub trace: String,
    /// Typed observability timeline (faults, ops, verdicts; see `obs`).
    pub timeline: neat::obs::Timeline,
}

impl CoordOutcome {
    /// `true` when a violation of `kind` was found.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }
}

/// ZOOKEEPER-2099: a snapshot-synced node becomes leader and serves an
/// in-memory-log sync with a hole; the learner's tree silently loses a
/// create and resurrects a deleted znode — permanently (Finding 3).
pub fn txnlog_sync_corruption(flaws: CoordFlaws, seed: u64, record: bool) -> CoordOutcome {
    let mut cluster = CoordCluster::build(3, 2, flaws, seed, record);
    let l = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let others = rest_of(&cluster.servers, &[l]);
    let (a, v) = (others[0], others[1]);
    let cl = cluster.client(0);

    // z1..z5: baseline data everyone has (fills the log window).
    for i in 1..=5u64 {
        cl.create(&mut cluster.neat, &format!("/k{i}"), i);
    }

    // Isolate V; commit z6..z8 with {L, A}: one create, one set, one delete.
    let p_v = cluster
        .neat
        .partition_complete(&[v], &rest_of(&cluster.neat.world.node_ids(), &[v]));
    cl.create(&mut cluster.neat, "/k6", 6);
    cl.set(&mut cluster.neat, "/k1", 100);
    cl.delete(&mut cluster.neat, "/k2");

    // A's disk is replaced; it re-syncs from L. The gap (8 txns) exceeds
    // the in-memory window, so L uses *storage sync* — which, with the
    // flaw, leaves A's in-memory log empty but its base at zero.
    cluster
        .neat
        .world
        .call(a, |p, _| p.server_mut().wipe())
        .expect("A alive"); // lint:allow(unwrap-expect)
    cluster.settle(400);

    // z9 lands in A's (post-snapshot) in-memory log.
    cl.create(&mut cluster.neat, "/k9", 9);

    // Old leader gone; V heals; A (freshest zxid) wins the election and
    // brings V "up to date" from its holey in-memory log.
    let p_l = cluster
        .neat
        .partition_complete(&[l], &rest_of(&cluster.neat.world.node_ids(), &[l]));
    cluster.neat.heal(&p_v);
    cluster.settle(1500);
    cluster.neat.heal(&p_l);
    cluster.settle(1500);

    // Verification: read the affected paths at V (local reads, like any
    // ZooKeeper client connected to that member).
    let cl2 = cluster.client(1);
    cl2.get_at(&mut cluster.neat, v, "/k6");
    cl2.get_at(&mut cluster.neat, v, "/k2");
    cl2.get_at(&mut cluster.neat, v, "/k1");

    let tree_v = cluster.tree_of(v);
    let keys = ["/k1", "/k2", "/k6", "/k9"];
    let final_state: BTreeMap<String, Option<u64>> = keys
        .iter()
        .map(|k| (k.to_string(), tree_v.get(*k).map(|z| z.val)))
        .collect();
    let mut violations = check_register(
        cluster.neat.history(),
        RegisterSemantics::Strong,
        &final_state,
    );
    // Replica divergence after full heal and quiescence is lasting damage.
    let tree_a = cluster.tree_of(a);
    if tree_a != tree_v {
        violations.push(Violation::new(
            ViolationKind::DataCorruption,
            format!(
                "replica trees diverge after heal: leader has {} znodes, learner {}",
                tree_a.len(),
                tree_v.len()
            ),
        ));
    }
    let timeline = cluster.neat.observe(&violations);
    CoordOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

/// redis #3899 (PSYNC2)-style: a partition interrupts a chunked storage
/// sync; the flawed learner already claims the target zxid, so the half
/// tree is never repaired — permanent corruption with the paper's §5.2
/// *bounded* timing (the fault must overlap the internal sync operation).
pub fn sync_interrupted_corruption(flaws: CoordFlaws, seed: u64, record: bool) -> CoordOutcome {
    let mut cluster = CoordCluster::build(3, 2, flaws, seed, record);
    // Throttled 2-znode chunks so the transfer spans ~200 ms.
    for &s in &cluster.servers.clone() {
        cluster
            .neat
            .world
            .call(s, |p, _| p.server_mut().chunk_size = 2)
            .expect("server alive"); // lint:allow(unwrap-expect)
    }
    let l = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let others = rest_of(&cluster.servers, &[l]);
    let v = others[1];
    let cl = cluster.client(0);

    // (1) Isolate the victim replica.
    let p1 = cluster
        .neat
        .partition_complete(&[v], &rest_of(&cluster.neat.world.node_ids(), &[v]));
    // (2) Write more data than the in-memory log window holds, forcing the
    // storage-sync (chunked) path on heal.
    for i in 1..=8u64 {
        cl.create(&mut cluster.neat, &format!("/k{i}"), i);
    }
    // (3) Heal: the chunked transfer to the victim begins…
    cluster.neat.heal(&p1);
    cluster.settle(80);
    // (4) …and a second partition strikes DURING the transfer.
    let p2 = cluster
        .neat
        .partition_complete(&[v], &rest_of(&cluster.neat.world.node_ids(), &[v]));
    cluster.settle(600);
    cluster.neat.heal(&p2);
    cluster.settle(1500);

    // Verification: local reads at the victim for every written znode.
    let cl2 = cluster.client(1);
    for i in 1..=8u64 {
        cl2.get_at(&mut cluster.neat, v, &format!("/k{i}"));
    }
    let tree_v = cluster.tree_of(v);
    let final_state: BTreeMap<String, Option<u64>> = (1..=8u64)
        .map(|i| {
            let k = format!("/k{i}");
            let val = tree_v.get(&k).map(|z| z.val);
            (k, val)
        })
        .collect();
    let mut violations = check_register(
        cluster.neat.history(),
        RegisterSemantics::Strong,
        &final_state,
    );
    let tree_l = cluster.tree_of(l);
    if tree_l != tree_v {
        violations.push(Violation::new(
            ViolationKind::DataCorruption,
            format!(
                "interrupted sync left the learner with {} of {} znodes, permanently",
                tree_v.len(),
                tree_l.len()
            ),
        ));
    }
    let timeline = cluster.neat.observe(&violations);
    CoordOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

/// ZOOKEEPER-2355: an expired session's ephemeral znode survives because
/// the cleanup proposal was abandoned while a follower was unreachable.
/// The "lock" stays held by a dead client forever.
pub fn ephemeral_never_deleted(flaws: CoordFlaws, seed: u64, record: bool) -> CoordOutcome {
    let mut cluster = CoordCluster::build(3, 2, flaws, seed, record);
    let l = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let follower = rest_of(&cluster.servers, &[l])[0];
    let cl1 = cluster.client(0);

    // Client 1 takes the lock.
    cl1.acquire(&mut cluster.neat, "/locks/l1");

    // Partial partition: the lock holder and one follower drop off
    // together (say, a ToR switch failure takes out their rack).
    let p = cluster
        .neat
        .partition_partial(&[cluster.clients[0], follower], &rest_of(&cluster.servers, &[follower]));

    // The session expires during the partition.
    cluster.settle(1500);
    cluster.neat.heal(&p);
    cluster.settle(800);

    // Client 2 tries to take the lock the dead session should have freed.
    let cl2 = cluster.client(1);
    let acquired = cl2.acquire(&mut cluster.neat, "/locks/l1");

    let mut violations = Vec::new();
    if !acquired.is_ok() {
        violations.push(Violation::new(
            ViolationKind::BrokenLock,
            "ephemeral lock znode of an expired session was never deleted; \
             the lock is permanently stuck",
        ));
    }
    let timeline = cluster.neat.observe(&violations);
    CoordOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flawed() -> CoordFlaws {
        CoordFlaws {
            snapshot_skips_log: true,
            skip_ephemeral_cleanup: true,
            apply_chunks_in_place: false,
        }
    }

    #[test]
    fn zk2099_snapshot_log_hole_corrupts_learner() {
        let out = txnlog_sync_corruption(flawed(), 31, false);
        assert!(out.has(ViolationKind::DataCorruption), "{:?}", out.violations);
        assert!(out.has(ViolationKind::DataLoss), "{:?}", out.violations);
        assert!(
            out.has(ViolationKind::ReappearanceOfDeletedData),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn zk2099_clean_without_the_flaw() {
        let out = txnlog_sync_corruption(CoordFlaws::default(), 31, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn interrupted_chunked_sync_corrupts_when_flawed() {
        let flaws = CoordFlaws {
            apply_chunks_in_place: true,
            ..CoordFlaws::default()
        };
        let out = sync_interrupted_corruption(flaws, 57, false);
        assert!(
            out.has(ViolationKind::DataCorruption),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn interrupted_chunked_sync_repairs_when_fixed() {
        let out = sync_interrupted_corruption(CoordFlaws::default(), 57, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn zk2355_ephemeral_survives_dead_session() {
        let out = ephemeral_never_deleted(flawed(), 37, false);
        assert!(out.has(ViolationKind::BrokenLock), "{:?}", out.violations);
    }

    #[test]
    fn zk2355_clean_without_the_flaw() {
        let out = ephemeral_never_deleted(CoordFlaws::default(), 37, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }
}
