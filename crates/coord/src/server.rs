//! The coordination server: ZAB-lite broadcast, two sync paths, sessions.
//!
//! The protocol keeps ZooKeeper's essential shape: a quorum-elected leader
//! (freshest `zxid` wins), primary-order broadcast with majority
//! acknowledgement, ephemeral znodes bound to heartbeat sessions, and —
//! crucially for the paper — **two synchronization mechanisms**:
//!
//! 1. *in-memory log sync* ([`CoordMsg::SyncLog`]) replays the recent
//!    committed-transaction window, and
//! 2. *storage sync* ([`CoordMsg::SyncSnapshot`]) ships the whole tree when
//!    the learner is too far behind.
//!
//! ZOOKEEPER-2099 ([`CoordFlaws::snapshot_skips_log`]): storage sync does
//! not update the in-memory log, so a snapshot-synced node that later
//! becomes leader serves log syncs from a log with a hole, corrupting its
//! learners' trees. ZOOKEEPER-2355 ([`CoordFlaws::skip_ephemeral_cleanup`]):
//! ephemeral cleanup is abandoned when a follower is unreachable, so a dead
//! session's lock nodes survive forever.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::Rng;
use simnet::{Ctx, NodeId, Time, TimerId};

use crate::msg::{CoordMsg, CoordReq, CoordResp, CoordWire, Tree, Txn, TxnKind, Znode};

const TAG_ELECTION: u64 = 11;
const TAG_TICK: u64 = 12;
const TAG_OP: u64 = 10_000;
/// Throttled chunk transmission: tag encodes the outstanding transfer.
const TAG_CHUNK: u64 = 5_000_000;

/// Flaw toggles for the coordination service.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordFlaws {
    /// ZOOKEEPER-2099: a snapshot sync leaves the in-memory transaction log
    /// (and its base) untouched.
    pub snapshot_skips_log: bool,
    /// ZOOKEEPER-2355: the leader abandons ephemeral cleanup for an expired
    /// session when any follower is currently unreachable.
    pub skip_ephemeral_cleanup: bool,
    /// redis #3899-style: during a chunked storage sync the learner clears
    /// its tree and records the target zxid on the FIRST chunk. A partition
    /// that interrupts the transfer leaves a half-empty tree that claims to
    /// be fully up to date — permanent corruption with *bounded* timing
    /// (the fault must overlap the sync, §5.2).
    pub apply_chunks_in_place: bool,
}

/// Server roles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoordRole {
    Follower,
    Candidate,
    Leader,
}

struct PendingOp {
    client: NodeId,
    op_id: u64,
    acks: BTreeSet<NodeId>,
    needed: usize,
    resp: CoordResp,
}

/// One ensemble member.
pub struct CoordServer {
    me: NodeId,
    peers: Vec<NodeId>,
    flaws: CoordFlaws,
    /// In-memory committed-log window size (ZooKeeper's `committedLog`).
    pub log_window: usize,

    // Persistent-ish state (tree and zxid survive crashes, like the disk).
    tree: Tree,
    zxid: u64,
    txnlog: VecDeque<Txn>,
    /// zxid covered up to (exclusive) by entries *before* the log window:
    /// the log holds `(log_base, …]`.
    log_base: u64,

    term: u64,
    voted_in: u64,
    role: CoordRole,
    leader_hint: Option<NodeId>,
    votes: BTreeSet<NodeId>,
    last_leader_contact: Time,
    hb_acks: BTreeSet<NodeId>,
    prev_round_full: bool,
    pending: BTreeMap<u64, PendingOp>,
    /// Outstanding chunked snapshot transfers: transfer id → (dest, chunks).
    outgoing_chunks: BTreeMap<u64, (NodeId, Vec<CoordMsg>)>,
    next_transfer: u64,
    /// Incoming chunked transfer staging (fixed mode buffers here).
    incoming_chunks: Vec<(String, Znode)>,
    incoming_expected: u32,
    /// Chunk size for storage sync; 0 disables chunking (single message).
    pub chunk_size: usize,
    /// Session table (leader-maintained): session → last heartbeat.
    sessions: BTreeMap<NodeId, Time>,
    session_timeout: Time,
    heartbeat_interval: Time,
    election_timeout: Time,
}

impl CoordServer {
    /// Creates an ensemble member.
    pub fn new(me: NodeId, peers: Vec<NodeId>, flaws: CoordFlaws) -> Self {
        Self {
            me,
            peers,
            flaws,
            log_window: 5,
            tree: Tree::new(),
            zxid: 0,
            txnlog: VecDeque::new(),
            log_base: 0,
            term: 0,
            voted_in: 0,
            role: CoordRole::Follower,
            leader_hint: None,
            votes: BTreeSet::new(),
            last_leader_contact: 0,
            hb_acks: BTreeSet::new(),
            prev_round_full: true,
            pending: BTreeMap::new(),
            outgoing_chunks: BTreeMap::new(),
            next_transfer: 0,
            incoming_chunks: Vec::new(),
            incoming_expected: 0,
            chunk_size: 0,
            sessions: BTreeMap::new(),
            session_timeout: 500,
            heartbeat_interval: 50,
            election_timeout: 300,
        }
    }

    /// Current role.
    pub fn role(&self) -> CoordRole {
        self.role
    }

    /// Highest transaction id applied.
    pub fn zxid(&self) -> u64 {
        self.zxid
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The data tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The in-memory committed-log window (tests inspect the hole).
    pub fn txnlog(&self) -> &VecDeque<Txn> {
        &self.txnlog
    }

    /// Wipes this node's storage (models disk replacement); it will
    /// re-sync from the leader.
    pub fn wipe(&mut self) {
        self.tree.clear();
        self.txnlog.clear();
        self.zxid = 0;
        self.log_base = 0;
    }

    fn majority(&self) -> usize {
        self.peers.len() / 2 + 1
    }

    fn arm_election_timer<M: CoordWire>(&mut self, ctx: &mut Ctx<'_, M>) {
        let base = self.election_timeout;
        let jitter = ctx.rng().gen_range(0..=base / 2);
        ctx.set_timer(base + jitter, TAG_ELECTION);
    }

    /// Boot / recovery.
    pub fn start<M: CoordWire>(&mut self, ctx: &mut Ctx<'_, M>) {
        self.role = CoordRole::Follower;
        self.leader_hint = None;
        self.votes.clear();
        self.pending.clear();
        self.sessions.clear();
        self.last_leader_contact = ctx.now();
        self.arm_election_timer(ctx);
    }

    fn send<M: CoordWire>(&self, ctx: &mut Ctx<'_, M>, to: NodeId, msg: CoordMsg) {
        ctx.send(to, M::from_coord(msg));
    }

    fn broadcast<M: CoordWire>(&self, ctx: &mut Ctx<'_, M>, msg: CoordMsg) {
        for &p in &self.peers {
            if p != self.me {
                self.send(ctx, p, msg.clone());
            }
        }
    }

    fn apply(&mut self, txn: &Txn) {
        match &txn.kind {
            TxnKind::Create { path, val, owner } => {
                self.tree.insert(
                    path.clone(),
                    Znode {
                        val: *val,
                        owner: *owner,
                    },
                );
            }
            TxnKind::Set { path, val } => {
                if let Some(z) = self.tree.get_mut(path) {
                    z.val = *val;
                }
            }
            TxnKind::Delete { path } => {
                self.tree.remove(path);
            }
        }
        self.zxid = self.zxid.max(txn.zxid);
        self.txnlog.push_back(txn.clone());
        while self.txnlog.len() > self.log_window {
            let dropped = self.txnlog.pop_front().expect("non-empty"); // lint:allow(unwrap-expect)
            self.log_base = self.log_base.max(dropped.zxid);
        }
    }

    fn start_election<M: CoordWire>(&mut self, ctx: &mut Ctx<'_, M>) {
        self.term += 1;
        self.role = CoordRole::Candidate;
        self.voted_in = self.term;
        self.votes = std::iter::once(self.me).collect();
        self.leader_hint = None;
        ctx.note(format!("coord: election (term {})", self.term));
        if self.votes.len() >= self.majority() {
            self.become_leader(ctx);
            return;
        }
        let m = CoordMsg::RequestVote {
            term: self.term,
            zxid: self.zxid,
        };
        self.broadcast(ctx, m);
    }

    fn become_leader<M: CoordWire>(&mut self, ctx: &mut Ctx<'_, M>) {
        self.role = CoordRole::Leader;
        self.leader_hint = Some(self.me);
        self.hb_acks = std::iter::once(self.me).collect();
        self.prev_round_full = true;
        ctx.note(format!("coord: leader (term {})", self.term));
        let hb = CoordMsg::Heartbeat {
            term: self.term,
            zxid: self.zxid,
        };
        self.broadcast(ctx, hb);
        ctx.set_timer(self.heartbeat_interval, TAG_TICK);
    }

    /// Timer dispatch.
    pub fn on_timer<M: CoordWire>(&mut self, ctx: &mut Ctx<'_, M>, _t: TimerId, tag: u64) {
        match tag {
            TAG_ELECTION => {
                if self.role != CoordRole::Leader
                    && ctx.now().saturating_sub(self.last_leader_contact) >= self.election_timeout
                {
                    self.start_election(ctx);
                }
                self.arm_election_timer(ctx);
            }
            TAG_TICK => {
                if self.role != CoordRole::Leader {
                    return;
                }
                self.prev_round_full = self.hb_acks.len() >= self.peers.len();
                self.hb_acks = std::iter::once(self.me).collect();
                let hb = CoordMsg::Heartbeat {
                    term: self.term,
                    zxid: self.zxid,
                };
                self.broadcast(ctx, hb);
                self.expire_sessions(ctx);
                ctx.set_timer(self.heartbeat_interval, TAG_TICK);
            }
            t if t >= TAG_CHUNK => {
                self.on_chunk_timer(ctx, t - TAG_CHUNK);
            }
            t if t >= TAG_OP => {
                let zxid = t - TAG_OP;
                if let Some(p) = self.pending.remove(&zxid) {
                    self.send(
                        ctx,
                        p.client,
                        CoordMsg::Resp {
                            op_id: p.op_id,
                            resp: CoordResp::Fail,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn expire_sessions<M: CoordWire>(&mut self, ctx: &mut Ctx<'_, M>) {
        let now = ctx.now();
        let timeout = self.session_timeout;
        let expired: Vec<NodeId> = self
            .sessions
            .iter()
            .filter(|(_, &last)| now.saturating_sub(last) > timeout)
            .map(|(s, _)| *s)
            .collect();
        for session in expired {
            self.sessions.remove(&session);
            let paths: Vec<String> = self
                .tree
                .iter()
                .filter(|(_, z)| z.owner == Some(session))
                .map(|(p, _)| p.clone())
                .collect();
            if paths.is_empty() {
                continue;
            }
            if self.flaws.skip_ephemeral_cleanup && !self.prev_round_full {
                // ZOOKEEPER-2355: the cleanup proposal is lost because a
                // follower is unreachable — and it is never retried.
                ctx.note(format!(
                    "coord: LOST ephemeral cleanup for expired session {session} (flaw)"
                ));
                continue;
            }
            ctx.note(format!("coord: expiring session {session}"));
            for path in paths {
                self.commit_txn(ctx, TxnKind::Delete { path }, None);
            }
        }
    }

    /// Appends, applies, and replicates a transaction. When `reply` is
    /// `Some`, the client is answered after a majority acknowledges.
    fn commit_txn<M: CoordWire>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        kind: TxnKind,
        reply: Option<(NodeId, u64, CoordResp)>,
    ) {
        let txn = Txn {
            zxid: self.zxid + 1,
            kind,
        };
        self.apply(&txn);
        if let Some((client, op_id, resp)) = reply {
            self.pending.insert(
                txn.zxid,
                PendingOp {
                    client,
                    op_id,
                    acks: std::iter::once(self.me).collect(),
                    needed: self.majority(),
                    resp,
                },
            );
            ctx.set_timer(300, TAG_OP + txn.zxid);
        }
        let term = self.term;
        self.broadcast(ctx, CoordMsg::Propose { term, txn });
    }

    /// Message dispatch. Host applications forward every unwrapped
    /// [`CoordMsg`] here.
    pub fn on_message<M: CoordWire>(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: CoordMsg) {
        match msg {
            CoordMsg::SessionHb => {
                if self.role == CoordRole::Leader {
                    self.sessions.insert(from, ctx.now());
                }
            }
            CoordMsg::Heartbeat { term, zxid } => self.on_heartbeat(ctx, from, term, zxid),
            CoordMsg::HeartbeatAck { term } => {
                if self.role == CoordRole::Leader && term == self.term {
                    self.hb_acks.insert(from);
                }
            }
            CoordMsg::RequestVote { term, zxid } => {
                // Sticky voting, no term adoption on refusal.
                if self.role != CoordRole::Leader
                    && self.leader_hint.is_some()
                    && self.leader_hint != Some(from)
                    && ctx.now().saturating_sub(self.last_leader_contact) < self.election_timeout
                {
                    self.send(
                        ctx,
                        from,
                        CoordMsg::Vote {
                            term,
                            granted: false,
                        },
                    );
                    return;
                }
                if term > self.term {
                    self.term = term;
                    if self.role == CoordRole::Leader {
                        self.role = CoordRole::Follower;
                    }
                }
                let granted = self.voted_in < term && zxid >= self.zxid;
                if granted {
                    self.voted_in = term;
                }
                self.send(ctx, from, CoordMsg::Vote { term, granted });
            }
            CoordMsg::Vote { term, granted } => {
                if self.role == CoordRole::Candidate && term == self.term && granted {
                    self.votes.insert(from);
                    if self.votes.len() >= self.majority() {
                        self.become_leader(ctx);
                    }
                }
            }
            CoordMsg::Propose { term, txn } => {
                if term < self.term {
                    return;
                }
                self.term = term;
                self.role = CoordRole::Follower;
                self.leader_hint = Some(from);
                self.last_leader_contact = ctx.now();
                if txn.zxid == self.zxid + 1 {
                    let zxid = txn.zxid;
                    self.apply(&txn);
                    self.send(ctx, from, CoordMsg::ProposeAck { term, zxid });
                } else if txn.zxid > self.zxid {
                    // Gap: ask for a sync instead of applying out of order.
                    let zxid = self.zxid;
                    self.send(ctx, from, CoordMsg::SyncReq { zxid });
                }
            }
            CoordMsg::ProposeAck { term, zxid } => {
                if self.role != CoordRole::Leader || term != self.term {
                    return;
                }
                if let Some(p) = self.pending.get_mut(&zxid) {
                    p.acks.insert(from);
                    if p.acks.len() >= p.needed {
                        let p = self.pending.remove(&zxid).expect("present"); // lint:allow(unwrap-expect)
                        self.send(
                            ctx,
                            p.client,
                            CoordMsg::Resp {
                                op_id: p.op_id,
                                resp: p.resp,
                            },
                        );
                    }
                }
            }
            CoordMsg::SyncReq { zxid } => self.on_sync_req(ctx, from, zxid),
            CoordMsg::SyncLog { term, txns, to_zxid } => {
                if term < self.term {
                    return;
                }
                self.term = term;
                self.role = CoordRole::Follower;
                self.leader_hint = Some(from);
                self.last_leader_contact = ctx.now();
                for t in &txns {
                    if t.zxid > self.zxid {
                        self.apply(t);
                    }
                }
                // Trust the leader's zxid — exactly what makes the flawed
                // log-with-a-hole sync silently corrupting.
                self.zxid = self.zxid.max(to_zxid);
                ctx.note(format!("coord: log-synced to zxid {}", self.zxid));
            }
            CoordMsg::SyncSnapshot { term, tree, zxid } => {
                if term < self.term {
                    return;
                }
                self.term = term;
                self.role = CoordRole::Follower;
                self.leader_hint = Some(from);
                self.last_leader_contact = ctx.now();
                self.tree = tree;
                self.zxid = zxid;
                if self.flaws.snapshot_skips_log {
                    // ZOOKEEPER-2099: storage sync updates the tree but NOT
                    // the in-memory transaction log.
                    ctx.note(format!(
                        "coord: SNAPSHOT-synced to zxid {zxid} (in-memory log untouched, flaw)"
                    ));
                } else {
                    self.txnlog.clear();
                    self.log_base = zxid;
                    ctx.note(format!("coord: snapshot-synced to zxid {zxid}"));
                }
            }
            CoordMsg::SyncChunk {
                term,
                part,
                total,
                entries,
                zxid,
            } => {
                if term < self.term {
                    return;
                }
                self.term = term;
                self.role = CoordRole::Follower;
                self.leader_hint = Some(from);
                self.last_leader_contact = ctx.now();
                if self.flaws.apply_chunks_in_place {
                    // The flawed transfer: clear the tree and claim the
                    // target zxid on the FIRST chunk. An interrupted
                    // transfer leaves a half tree that looks up to date.
                    if part == 0 {
                        ctx.note(format!(
                            "coord: chunked sync started; zxid jumps to {zxid} (flaw)"
                        ));
                        self.tree.clear();
                        self.zxid = zxid;
                        if !self.flaws.snapshot_skips_log {
                            self.txnlog.clear();
                            self.log_base = zxid;
                        }
                    }
                    for (k, v) in entries {
                        self.tree.insert(k, v);
                    }
                    if part + 1 == total {
                        ctx.note("coord: chunked sync complete".to_string());
                    }
                } else {
                    // Fixed: stage chunks and install atomically at the end.
                    if part == 0 {
                        self.incoming_chunks.clear();
                        self.incoming_expected = total;
                    }
                    self.incoming_chunks.extend(entries);
                    if part + 1 == total && self.incoming_expected == total {
                        self.tree = std::mem::take(&mut self.incoming_chunks)
                            .into_iter()
                            .collect();
                        self.zxid = zxid;
                        self.txnlog.clear();
                        self.log_base = zxid;
                        ctx.note(format!("coord: chunked sync installed at zxid {zxid}"));
                    }
                }
            }
            CoordMsg::Req { op_id, req } => self.on_client(ctx, from, op_id, req),
            CoordMsg::Resp { .. } => {}
        }
    }

    fn on_heartbeat<M: CoordWire>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        from: NodeId,
        term: u64,
        zxid: u64,
    ) {
        if term < self.term {
            return;
        }
        if self.role == CoordRole::Leader && term == self.term && from != self.me {
            return;
        }
        self.term = term;
        self.role = CoordRole::Follower;
        self.leader_hint = Some(from);
        self.last_leader_contact = ctx.now();
        self.send(ctx, from, CoordMsg::HeartbeatAck { term });
        if zxid > self.zxid {
            let mine = self.zxid;
            self.send(ctx, from, CoordMsg::SyncReq { zxid: mine });
        }
    }

    fn on_sync_req<M: CoordWire>(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, zxid: u64) {
        if self.role != CoordRole::Leader {
            return;
        }
        if zxid >= self.log_base {
            // The in-memory log claims to cover the learner's gap. With the
            // ZOOKEEPER-2099 flaw, `log_base` can be stale and the window
            // can have a hole the learner will never notice.
            let txns: Vec<Txn> = self
                .txnlog
                .iter()
                .filter(|t| t.zxid > zxid)
                .cloned()
                .collect();
            let m = CoordMsg::SyncLog {
                term: self.term,
                txns,
                to_zxid: self.zxid,
            };
            self.send(ctx, from, m);
        } else if self.outgoing_chunks.values().any(|(d, _)| *d == from) {
            // A transfer to this learner is already in flight.
        } else if self.chunk_size == 0 {
            let m = CoordMsg::SyncSnapshot {
                term: self.term,
                tree: self.tree.clone(),
                zxid: self.zxid,
            };
            self.send(ctx, from, m);
        } else {
            // Throttled chunked transfer: one chunk per 50 ms, so the sync
            // spans real (virtual) time — the window a partition can hit.
            let entries: Vec<(String, Znode)> = self
                .tree
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            let total = entries.chunks(self.chunk_size).count().max(1) as u32;
            let chunks: Vec<CoordMsg> = entries
                .chunks(self.chunk_size.max(1))
                .enumerate()
                .map(|(part, slice)| CoordMsg::SyncChunk {
                    term: self.term,
                    part: part as u32,
                    total,
                    entries: slice.to_vec(),
                    zxid: self.zxid,
                })
                .collect();
            let id = self.next_transfer;
            self.next_transfer += 1;
            self.outgoing_chunks.insert(id, (from, chunks));
            ctx.set_timer(1, TAG_CHUNK + id);
        }
    }

    fn on_chunk_timer(&mut self, ctx: &mut Ctx<'_, impl CoordWire>, id: u64) {
        if let Some((dest, chunks)) = self.outgoing_chunks.get_mut(&id) {
            let dest = *dest;
            if chunks.is_empty() {
                self.outgoing_chunks.remove(&id);
                return;
            }
            let msg = chunks.remove(0);
            self.send(ctx, dest, msg);
            if self.outgoing_chunks.get(&id).map(|(_, c)| c.is_empty()) == Some(false) {
                ctx.set_timer(50, TAG_CHUNK + id);
            } else {
                self.outgoing_chunks.remove(&id);
            }
        }
    }

    fn on_client<M: CoordWire>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        from: NodeId,
        op_id: u64,
        req: CoordReq,
    ) {
        // Reads are served locally by any member (ZooKeeper semantics).
        if let CoordReq::Get { path } = &req {
            let v = self.tree.get(path).map(|z| z.val);
            self.send(
                ctx,
                from,
                CoordMsg::Resp {
                    op_id,
                    resp: CoordResp::Value(v),
                },
            );
            return;
        }
        if self.role != CoordRole::Leader {
            let hint = self.leader_hint;
            self.send(
                ctx,
                from,
                CoordMsg::Resp {
                    op_id,
                    resp: CoordResp::NotLeader { hint },
                },
            );
            return;
        }
        // Writers implicitly keep their session alive.
        self.sessions.insert(from, ctx.now());
        match req {
            CoordReq::Create {
                path,
                val,
                ephemeral,
            } => {
                if self.tree.contains_key(&path) {
                    self.send(
                        ctx,
                        from,
                        CoordMsg::Resp {
                            op_id,
                            resp: CoordResp::Exists,
                        },
                    );
                    return;
                }
                let owner = ephemeral.then_some(from);
                self.commit_txn(
                    ctx,
                    TxnKind::Create { path, val, owner },
                    Some((from, op_id, CoordResp::Ok)),
                );
            }
            CoordReq::Set { path, val } => {
                if !self.tree.contains_key(&path) {
                    self.send(
                        ctx,
                        from,
                        CoordMsg::Resp {
                            op_id,
                            resp: CoordResp::Fail,
                        },
                    );
                    return;
                }
                self.commit_txn(ctx, TxnKind::Set { path, val }, Some((from, op_id, CoordResp::Ok)));
            }
            CoordReq::Delete { path } => {
                if !self.tree.contains_key(&path) {
                    self.send(
                        ctx,
                        from,
                        CoordMsg::Resp {
                            op_id,
                            resp: CoordResp::Fail,
                        },
                    );
                    return;
                }
                self.commit_txn(ctx, TxnKind::Delete { path }, Some((from, op_id, CoordResp::Ok)));
            }
            CoordReq::Get { .. } => unreachable!("handled above"),
        }
    }

    /// Crash: the tree, zxid, and log survive (disk); roles and sessions
    /// are volatile.
    pub fn on_crash(&mut self) {
        self.role = CoordRole::Follower;
        self.leader_hint = None;
        self.votes.clear();
        self.pending.clear();
        self.sessions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(window: usize) -> CoordServer {
        let peers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut s = CoordServer::new(NodeId(0), peers, CoordFlaws::default());
        s.log_window = window;
        s
    }

    fn txn(zxid: u64, path: &str, val: u64) -> Txn {
        Txn {
            zxid,
            kind: TxnKind::Create {
                path: path.into(),
                val,
                owner: None,
            },
        }
    }

    #[test]
    fn apply_updates_tree_and_zxid() {
        let mut s = server(5);
        s.apply(&txn(1, "/a", 10));
        assert_eq!(s.zxid(), 1);
        assert_eq!(s.tree().get("/a").map(|z| z.val), Some(10));
        s.apply(&Txn {
            zxid: 2,
            kind: TxnKind::Set {
                path: "/a".into(),
                val: 20,
            },
        });
        assert_eq!(s.tree().get("/a").map(|z| z.val), Some(20));
        s.apply(&Txn {
            zxid: 3,
            kind: TxnKind::Delete { path: "/a".into() },
        });
        assert!(s.tree().is_empty());
        assert_eq!(s.zxid(), 3);
    }

    #[test]
    fn log_window_trims_and_tracks_base() {
        let mut s = server(3);
        for i in 1..=5u64 {
            s.apply(&txn(i, &format!("/k{i}"), i));
        }
        assert_eq!(s.txnlog().len(), 3, "window holds the last three");
        assert_eq!(s.log_base, 2, "entries (2, 5] remain");
        assert_eq!(s.txnlog().front().map(|t| t.zxid), Some(3));
    }

    #[test]
    fn wipe_clears_storage() {
        let mut s = server(5);
        s.apply(&txn(1, "/a", 1));
        s.wipe();
        assert!(s.tree().is_empty());
        assert!(s.txnlog().is_empty());
        assert_eq!(s.zxid(), 0);
        assert_eq!(s.log_base, 0);
    }

    #[test]
    fn majority_of_three_is_two() {
        let s = server(5);
        assert_eq!(s.majority(), 2);
    }

    #[test]
    fn crash_keeps_disk_state() {
        let mut s = server(5);
        s.apply(&txn(1, "/a", 1));
        s.role = CoordRole::Leader;
        s.sessions.insert(NodeId(9), 100);
        s.on_crash();
        assert_eq!(s.role(), CoordRole::Follower);
        assert!(s.sessions.is_empty(), "sessions are volatile");
        assert_eq!(s.zxid(), 1, "the tree and zxid survive");
        assert_eq!(s.txnlog().len(), 1, "the on-disk log survives");
    }
}
