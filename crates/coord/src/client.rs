//! Coordination clients: the embeddable session and the test wrapper.

use std::collections::BTreeMap;

use neat::{Neat, Op, OpRecord, Outcome};
use simnet::{Ctx, NodeId};

use crate::{
    cluster::CoordProc,
    msg::{CoordMsg, CoordReq, CoordResp, CoordWire},
};

/// An embeddable coordination-service session.
///
/// Host applications (e.g., message-queue brokers tracking their master
/// through the coordination service, as ActiveMQ does with ZooKeeper) own
/// one of these: they call [`CoordSession::heartbeat`] from a periodic
/// timer, fire requests with [`CoordSession::request`], and feed every
/// unwrapped [`CoordMsg`] to [`CoordSession::on_message`].
pub struct CoordSession {
    servers: Vec<NodeId>,
    next_op: u64,
    results: BTreeMap<u64, CoordResp>,
}

impl CoordSession {
    /// Creates a session talking to `servers`.
    pub fn new(servers: Vec<NodeId>) -> Self {
        Self {
            servers,
            next_op: 0,
            results: BTreeMap::new(),
        }
    }

    /// Broadcasts a session keep-alive to the ensemble.
    pub fn heartbeat<M: CoordWire>(&self, ctx: &mut Ctx<'_, M>) {
        for &s in &self.servers {
            ctx.send(s, M::from_coord(CoordMsg::SessionHb));
        }
    }

    /// Sends `req` to the whole ensemble (only the leader acts on writes;
    /// reads are answered locally by each member, first answer wins) and
    /// returns the operation id to poll with [`CoordSession::take`].
    pub fn request<M: CoordWire>(&mut self, ctx: &mut Ctx<'_, M>, req: CoordReq) -> u64 {
        let op_id = (ctx.id().0 as u64) << 32 | self.next_op;
        self.next_op += 1;
        match &req {
            CoordReq::Get { .. } => {
                // Local read: ask one member (the first) to keep a single
                // authoritative answer per op.
                ctx.send(
                    self.servers[0],
                    M::from_coord(CoordMsg::Req {
                        op_id,
                        req: req.clone(),
                    }),
                );
            }
            _ => {
                for &s in &self.servers {
                    ctx.send(
                        s,
                        M::from_coord(CoordMsg::Req {
                            op_id,
                            req: req.clone(),
                        }),
                    );
                }
            }
        }
        op_id
    }

    /// Like [`CoordSession::request`] but aimed at one specific member —
    /// used to read a particular (possibly corrupted) replica.
    pub fn request_at<M: CoordWire>(
        &mut self,
        ctx: &mut Ctx<'_, M>,
        server: NodeId,
        req: CoordReq,
    ) -> u64 {
        let op_id = (ctx.id().0 as u64) << 32 | self.next_op;
        self.next_op += 1;
        ctx.send(server, M::from_coord(CoordMsg::Req { op_id, req }));
        op_id
    }

    /// Records responses; ignores non-response traffic.
    pub fn on_message(&mut self, msg: CoordMsg) {
        if let CoordMsg::Resp { op_id, resp } = msg {
            // First definitive answer wins; NotLeader redirects only fill
            // the slot if nothing better arrived.
            match self.results.get(&op_id) {
                None => {
                    self.results.insert(op_id, resp);
                }
                Some(CoordResp::NotLeader { .. }) => {
                    self.results.insert(op_id, resp);
                }
                Some(_) => {}
            }
        }
    }

    /// Removes and returns a definitive response for `op_id`.
    pub fn take(&mut self, op_id: u64) -> Option<CoordResp> {
        match self.results.get(&op_id) {
            Some(CoordResp::NotLeader { .. }) | None => None,
            Some(_) => self.results.remove(&op_id),
        }
    }
}

/// Standalone coordination client process (heartbeats automatically).
pub struct CoordClientProc {
    /// The session; public so the cluster wrapper can drive it.
    pub session: CoordSession,
}

impl CoordClientProc {
    pub(crate) const TAG_HB: u64 = 1;

    /// Creates a client of `servers`.
    pub fn new(servers: Vec<NodeId>) -> Self {
        Self {
            session: CoordSession::new(servers),
        }
    }
}

/// Synchronous test wrapper bound to one client node.
#[derive(Clone, Copy, Debug)]
pub struct CoordClient {
    pub node: NodeId,
}

impl CoordClient {
    fn finish(
        &self,
        neat: &mut Neat<CoordProc>,
        op_id: u64,
        op: Op,
        start: u64,
        lock_style: bool,
    ) -> Outcome {
        let node = self.node;
        let resp = neat.run_op(
            |_| Ok(()),
            |w| w.app_mut(node).client_mut().session.take(op_id),
        );
        let outcome = match resp {
            Some(CoordResp::Ok) => Outcome::Ok(None),
            Some(CoordResp::Value(v)) => Outcome::Ok(v),
            Some(CoordResp::Exists) => Outcome::Fail,
            Some(CoordResp::Fail) => Outcome::Fail,
            Some(CoordResp::NotLeader { .. }) | None => Outcome::Timeout,
        };
        let end = neat.now();
        neat.record(OpRecord {
            client: node,
            op,
            outcome: outcome.clone(),
            start,
            end,
        });
        let _ = lock_style;
        outcome
    }

    /// Creates a persistent znode (recorded as a write).
    pub fn create(&self, neat: &mut Neat<CoordProc>, path: &str, val: u64) -> Outcome {
        let start = neat.now();
        let op_id = neat
            .world
            .call(self.node, |p, ctx| {
                p.client_mut().session.request(
                    ctx,
                    CoordReq::Create {
                        path: path.into(),
                        val,
                        ephemeral: false,
                    },
                )
            })
            .expect("client alive"); // lint:allow(unwrap-expect)
        self.finish(
            neat,
            op_id,
            Op::Write {
                key: path.into(),
                val,
            },
            start,
            false,
        )
    }

    /// Creates an ephemeral znode — the lock-acquire idiom (recorded as an
    /// acquire).
    pub fn acquire(&self, neat: &mut Neat<CoordProc>, path: &str) -> Outcome {
        let start = neat.now();
        let op_id = neat
            .world
            .call(self.node, |p, ctx| {
                p.client_mut().session.request(
                    ctx,
                    CoordReq::Create {
                        path: path.into(),
                        val: 1,
                        ephemeral: true,
                    },
                )
            })
            .expect("client alive"); // lint:allow(unwrap-expect)
        self.finish(neat, op_id, Op::Acquire { key: path.into() }, start, true)
    }

    /// Updates a znode's value.
    pub fn set(&self, neat: &mut Neat<CoordProc>, path: &str, val: u64) -> Outcome {
        let start = neat.now();
        let op_id = neat
            .world
            .call(self.node, |p, ctx| {
                p.client_mut().session.request(
                    ctx,
                    CoordReq::Set {
                        path: path.into(),
                        val,
                    },
                )
            })
            .expect("client alive"); // lint:allow(unwrap-expect)
        self.finish(
            neat,
            op_id,
            Op::Write {
                key: path.into(),
                val,
            },
            start,
            false,
        )
    }

    /// Deletes a znode.
    pub fn delete(&self, neat: &mut Neat<CoordProc>, path: &str) -> Outcome {
        let start = neat.now();
        let op_id = neat
            .world
            .call(self.node, |p, ctx| {
                p.client_mut()
                    .session
                    .request(ctx, CoordReq::Delete { path: path.into() })
            })
            .expect("client alive"); // lint:allow(unwrap-expect)
        self.finish(neat, op_id, Op::Delete { key: path.into() }, start, false)
    }

    /// Reads a znode at a specific ensemble member (local read).
    pub fn get_at(&self, neat: &mut Neat<CoordProc>, server: NodeId, path: &str) -> Outcome {
        let start = neat.now();
        let op_id = neat
            .world
            .call(self.node, |p, ctx| {
                p.client_mut()
                    .session
                    .request_at(ctx, server, CoordReq::Get { path: path.into() })
            })
            .expect("client alive"); // lint:allow(unwrap-expect)
        self.finish(neat, op_id, Op::Read { key: path.into() }, start, false)
    }
}
