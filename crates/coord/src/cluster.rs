//! Coordination ensemble assembly.

use neat::Neat;
use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};

use crate::{
    client::{CoordClient, CoordClientProc},
    msg::{CoordMsg, Tree},
    server::{CoordFlaws, CoordRole, CoordServer},
};

/// A node of the coordination deployment.
pub enum CoordProc {
    Server(Box<CoordServer>),
    Client(CoordClientProc),
}

impl CoordProc {
    /// Server state.
    ///
    /// # Panics
    ///
    /// Panics on client nodes.
    pub fn server(&self) -> &CoordServer {
        match self {
            CoordProc::Server(s) => s,
            CoordProc::Client(_) => panic!("not a server node"),
        }
    }

    /// Mutable server state.
    ///
    /// # Panics
    ///
    /// Panics on client nodes.
    pub fn server_mut(&mut self) -> &mut CoordServer {
        match self {
            CoordProc::Server(s) => s,
            CoordProc::Client(_) => panic!("not a server node"),
        }
    }

    /// Mutable client state.
    ///
    /// # Panics
    ///
    /// Panics on server nodes.
    pub fn client_mut(&mut self) -> &mut CoordClientProc {
        match self {
            CoordProc::Client(c) => c,
            CoordProc::Server(_) => panic!("not a client node"),
        }
    }
}

impl Application for CoordProc {
    type Msg = CoordMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, CoordMsg>) {
        match self {
            CoordProc::Server(s) => s.start(ctx),
            CoordProc::Client(c) => {
                c.session.heartbeat(ctx);
                ctx.set_timer(100, CoordClientProc::TAG_HB);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, CoordMsg>, from: NodeId, msg: CoordMsg) {
        match self {
            CoordProc::Server(s) => s.on_message(ctx, from, msg),
            CoordProc::Client(c) => c.session.on_message(msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CoordMsg>, timer: TimerId, tag: u64) {
        match self {
            CoordProc::Server(s) => s.on_timer(ctx, timer, tag),
            CoordProc::Client(c) => {
                if tag == CoordClientProc::TAG_HB {
                    c.session.heartbeat(ctx);
                    ctx.set_timer(100, CoordClientProc::TAG_HB);
                }
            }
        }
    }

    fn on_crash(&mut self) {
        if let CoordProc::Server(s) = self {
            s.on_crash();
        }
    }
}

/// A running coordination deployment under the NEAT engine.
pub struct CoordCluster {
    pub neat: Neat<CoordProc>,
    pub servers: Vec<NodeId>,
    pub clients: Vec<NodeId>,
}

impl CoordCluster {
    /// Builds `servers` ensemble members and `clients` client nodes.
    pub fn build(servers: usize, clients: usize, flaws: CoordFlaws, seed: u64, record: bool) -> Self {
        let server_ids: Vec<NodeId> = (0..servers).map(NodeId).collect();
        let client_ids: Vec<NodeId> = (servers..servers + clients).map(NodeId).collect();
        let world = WorldBuilder::new(seed)
            .record_trace(record)
            // Historical high-water mark of the coord arms (longest:
            // txnlog_sync_corruption, ~656 events at seed 8).
            .event_capacity(768)
            .build(servers + clients, |id| {
                if id.0 < servers {
                    CoordProc::Server(Box::new(CoordServer::new(id, server_ids.clone(), flaws)))
                } else {
                    CoordProc::Client(CoordClientProc::new(server_ids.clone()))
                }
            });
        Self {
            neat: Neat::new(world),
            servers: server_ids,
            clients: client_ids,
        }
    }

    /// Client handle `i`.
    pub fn client(&self, i: usize) -> CoordClient {
        CoordClient {
            node: self.clients[i],
        }
    }

    /// The live leader with the highest term, if any.
    pub fn leader(&self) -> Option<NodeId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| self.neat.world.is_alive(s))
            .filter(|&s| self.neat.world.app(s).server().role() == CoordRole::Leader)
            .max_by_key(|&s| self.neat.world.app(s).server().term())
    }

    /// Runs until a leader exists or `max_ms` elapses.
    pub fn wait_for_leader(&mut self, max_ms: u64) -> Option<NodeId> {
        let deadline = self.neat.now() + max_ms;
        loop {
            if let Some(l) = self.leader() {
                return Some(l);
            }
            if self.neat.now() >= deadline {
                return None;
            }
            self.neat.sleep(10);
        }
    }

    /// Advances virtual time.
    pub fn settle(&mut self, ms: u64) {
        self.neat.sleep(ms);
    }

    /// A member's data tree.
    pub fn tree_of(&self, server: NodeId) -> Tree {
        self.neat.world.app(server).server().tree().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat::Outcome;

    fn cluster(seed: u64) -> CoordCluster {
        CoordCluster::build(3, 2, CoordFlaws::default(), seed, false)
    }

    #[test]
    fn elects_a_leader() {
        let mut c = cluster(1);
        assert!(c.wait_for_leader(2000).is_some());
    }

    #[test]
    fn create_and_get() {
        let mut c = cluster(2);
        c.wait_for_leader(2000).unwrap();
        let cl = c.client(0);
        assert_eq!(cl.create(&mut c.neat, "/a", 7), Outcome::Ok(None));
        c.settle(200);
        for s in c.servers.clone() {
            assert_eq!(cl.get_at(&mut c.neat, s, "/a"), Outcome::Ok(Some(7)));
        }
    }

    #[test]
    fn duplicate_create_is_refused() {
        let mut c = cluster(3);
        c.wait_for_leader(2000).unwrap();
        let cl = c.client(0);
        assert!(cl.create(&mut c.neat, "/a", 1).is_ok());
        assert_eq!(cl.create(&mut c.neat, "/a", 2), Outcome::Fail);
    }

    #[test]
    fn set_and_delete_round_trip() {
        let mut c = cluster(5);
        let l = c.wait_for_leader(2000).unwrap();
        let cl = c.client(0);
        cl.create(&mut c.neat, "/a", 1);
        assert!(cl.set(&mut c.neat, "/a", 2).is_ok());
        assert_eq!(cl.get_at(&mut c.neat, l, "/a"), Outcome::Ok(Some(2)));
        assert!(cl.delete(&mut c.neat, "/a").is_ok());
        assert_eq!(cl.get_at(&mut c.neat, l, "/a"), Outcome::Ok(None));
    }

    #[test]
    fn ephemeral_deleted_when_session_dies() {
        let mut c = cluster(5);
        let l = c.wait_for_leader(2000).unwrap();
        let cl = c.client(0);
        assert!(cl.acquire(&mut c.neat, "/locks/x").is_ok());
        // Kill the client; its session stops heartbeating and expires.
        c.neat.crash(&[c.clients[0]]);
        c.settle(1500);
        let cl2 = c.client(1);
        assert_eq!(cl2.get_at(&mut c.neat, l, "/locks/x"), Outcome::Ok(None));
        // And the lock is acquirable again.
        assert!(cl2.acquire(&mut c.neat, "/locks/x").is_ok());
    }

    #[test]
    fn lagging_follower_log_syncs() {
        let mut c = cluster(6);
        c.wait_for_leader(2000).unwrap();
        let cl = c.client(0);
        cl.create(&mut c.neat, "/a", 1);
        let follower = c
            .servers
            .iter()
            .copied()
            .find(|&s| Some(s) != c.leader())
            .unwrap();
        let p = c.neat.partition_complete(
            &[follower],
            &neat::rest_of(&c.neat.world.node_ids(), &[follower]),
        );
        // Two writes within the log window.
        cl.create(&mut c.neat, "/b", 2);
        cl.create(&mut c.neat, "/c", 3);
        c.neat.heal(&p);
        c.settle(500);
        let t = c.tree_of(follower);
        assert!(t.contains_key("/b") && t.contains_key("/c"));
    }

    #[test]
    fn far_behind_follower_snapshot_syncs() {
        let mut c = cluster(7);
        c.wait_for_leader(2000).unwrap();
        let cl = c.client(0);
        let follower = c
            .servers
            .iter()
            .copied()
            .find(|&s| Some(s) != c.leader())
            .unwrap();
        let p = c.neat.partition_complete(
            &[follower],
            &neat::rest_of(&c.neat.world.node_ids(), &[follower]),
        );
        // More writes than the log window (5) holds.
        for i in 0..8 {
            cl.create(&mut c.neat, &format!("/k{i}"), i);
        }
        c.neat.heal(&p);
        c.settle(500);
        let t = c.tree_of(follower);
        for i in 0..8 {
            assert!(t.contains_key(&format!("/k{i}")), "/k{i} missing");
        }
        // The fixed snapshot path resets the in-memory log.
        assert!(c
            .neat
            .world
            .app(follower)
            .server()
            .txnlog()
            .is_empty());
    }
}
