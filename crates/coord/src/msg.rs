//! Coordination-service wire types.
//!
//! Everything is generic over [`CoordWire`], which lets other systems (the
//! message queue crate embeds a coordination ensemble in its own world, the
//! way ActiveMQ embeds ZooKeeper) wrap these messages in their own enum.

use std::collections::BTreeMap;

use simnet::NodeId;

/// A node in the hierarchical namespace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Znode {
    pub val: u64,
    /// `Some(session)` for ephemeral nodes, deleted when the owning
    /// session expires.
    pub owner: Option<NodeId>,
}

/// The data tree.
pub type Tree = BTreeMap<String, Znode>;

/// A committed transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Txn {
    pub zxid: u64,
    pub kind: TxnKind,
}

/// Transaction payloads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TxnKind {
    Create {
        path: String,
        val: u64,
        owner: Option<NodeId>,
    },
    Set {
        path: String,
        val: u64,
    },
    Delete {
        path: String,
    },
}

impl TxnKind {
    /// The path this transaction touches.
    pub fn path(&self) -> &str {
        match self {
            TxnKind::Create { path, .. } | TxnKind::Set { path, .. } | TxnKind::Delete { path } => {
                path
            }
        }
    }
}

/// Client requests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoordReq {
    /// Create a znode; fails with [`CoordResp::Exists`] when present.
    /// Ephemeral creates bind the node to the requesting session.
    Create {
        path: String,
        val: u64,
        ephemeral: bool,
    },
    Set {
        path: String,
        val: u64,
    },
    Delete {
        path: String,
    },
    /// Local read at whatever server receives it (ZooKeeper semantics).
    Get {
        path: String,
    },
}

/// Client responses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoordResp {
    Ok,
    /// Create refused: the znode already exists.
    Exists,
    /// The operation failed (no quorum, unknown path for set, …).
    Fail,
    /// Read result (`None` = no such znode).
    Value(Option<u64>),
    /// This server is not the leader; retry at `hint`.
    NotLeader { hint: Option<NodeId> },
}

/// The coordination protocol messages.
#[derive(Clone, Debug)]
pub enum CoordMsg {
    Req { op_id: u64, req: CoordReq },
    Resp { op_id: u64, resp: CoordResp },
    /// Session keep-alive, broadcast by clients to every ensemble member.
    SessionHb,
    Heartbeat { term: u64, zxid: u64 },
    HeartbeatAck { term: u64 },
    RequestVote { term: u64, zxid: u64 },
    Vote { term: u64, granted: bool },
    /// Leader → follower: one transaction.
    Propose { term: u64, txn: Txn },
    ProposeAck { term: u64, zxid: u64 },
    /// Follower → leader: "I am at `zxid`, bring me up to date."
    SyncReq { zxid: u64 },
    /// In-memory-log sync: replay these transactions, then trust `to_zxid`.
    SyncLog {
        term: u64,
        txns: Vec<Txn>,
        to_zxid: u64,
    },
    /// Storage sync: replace the whole tree.
    SyncSnapshot { term: u64, tree: Tree, zxid: u64 },
    /// Chunked storage sync (throttled transfers): one piece of the tree.
    SyncChunk {
        term: u64,
        /// 0-based chunk index.
        part: u32,
        /// Total number of chunks in this transfer.
        total: u32,
        entries: Vec<(String, Znode)>,
        /// The zxid the learner reaches once the whole transfer lands.
        zxid: u64,
    },
}

/// Embeds [`CoordMsg`] in a host protocol. Implemented by [`CoordMsg`]
/// itself (identity) and by any system that hosts a coordination ensemble
/// inside its own message enum.
pub trait CoordWire: Clone + std::fmt::Debug + 'static {
    /// Wraps a coordination message.
    fn from_coord(msg: CoordMsg) -> Self;
    /// Unwraps, returning `None` for host-protocol messages.
    fn to_coord(self) -> Option<CoordMsg>;
}

impl CoordWire for CoordMsg {
    fn from_coord(msg: CoordMsg) -> Self {
        msg
    }
    fn to_coord(self) -> Option<CoordMsg> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_wire_round_trips() {
        let m = CoordMsg::SessionHb;
        let wrapped = CoordMsg::from_coord(m);
        assert!(matches!(wrapped.to_coord(), Some(CoordMsg::SessionHb)));
    }

    #[test]
    fn txn_kind_paths() {
        let t = TxnKind::Delete { path: "/a".into() };
        assert_eq!(t.path(), "/a");
        let c = TxnKind::Create {
            path: "/b".into(),
            val: 0,
            owner: None,
        };
        assert_eq!(c.path(), "/b");
    }
}
