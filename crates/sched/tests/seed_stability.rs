//! Seed stability: same seed ⇒ identical scenario fingerprint and trace
//! hash (DESIGN.md determinism rules; the campaign-wide version runs via
//! `cargo run -p lint -- --audit`). The hash is taken both ways —
//! streamed via `neat::audit::stream_hash` (the allocation-free audit
//! fast path) and over the rendered bytes — and the two must agree.

use proptest::prelude::*;
use sched::mapred::{self, MrFlaws};

fn outcome(seed: u64) -> impl std::fmt::Debug {
    mapred::double_execution(
        MrFlaws {
            relaunch_without_checking: true,
        },
        seed,
        true,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_same_trace(seed in 0u64..100_000) {
        let (oa, ob) = (outcome(seed), outcome(seed));
        // The streamed hash (the audit fast path) must be seed-stable...
        let (ha, hb) = (neat::audit::stream_hash(&oa), neat::audit::stream_hash(&ob));
        prop_assert_eq!(ha, hb);
        // ...and equal byte-for-byte to hashing the rendered fingerprint.
        let (a, b) = (format!("{oa:#?}"), format!("{ob:#?}"));
        prop_assert_eq!(ha, neat::audit::trace_hash(&a));
        prop_assert_eq!(hb, neat::audit::trace_hash(&b));
        prop_assert_eq!(a, b);
    }
}
