//! The MapReduce-like pipeline: ResourceManager, NodeManagers hosting
//! AppMasters and task containers, an output store, and a client.
//!
//! Figure 3 / MAPREDUCE-4819: a partial partition isolates the AppMaster's
//! node from the ResourceManager while both still reach the rest of the
//! cluster. The old AppMaster keeps executing and delivers results; the
//! ResourceManager assumes it died and launches a second AppMaster, which
//! executes the job *again* — double execution and duplicated output, with
//! **no client access after the partition** (Finding 5's
//! "no client access necessary" class).
//!
//! The flaw toggle [`MrFlaws::relaunch_without_checking`] mirrors the real
//! patch: the fixed ResourceManager first checks the output store for a
//! committed result before launching a new attempt.

use std::collections::BTreeMap;

use neat::{Violation, ViolationKind};
use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};

const TAG_RM_CHECK: u64 = 71;
const TAG_AM_HB: u64 = 72;
/// AM-side re-run of unfinished tasks: tag is `TAG_AM_RETRY + job`.
const TAG_AM_RETRY: u64 = 500_000;
/// Task work duration: tag is `TAG_TASK + job * 1000 + task`.
const TAG_TASK: u64 = 1_000_000;

/// Flaw toggles for the MapReduce model.
#[derive(Clone, Copy, Debug)]
pub struct MrFlaws {
    /// Launch a replacement AppMaster without consulting the output store.
    pub relaunch_without_checking: bool,
}

/// Wire protocol.
#[derive(Clone, Debug)]
pub enum MrMsg {
    /// Client → ResourceManager.
    Submit { job: u64 },
    /// AppMaster → client: final results.
    Result { job: u64, attempt: u32 },
    /// ResourceManager → NodeManager: host an AppMaster.
    StartAm { job: u64, attempt: u32, tasks: u32 },
    /// AppMaster → ResourceManager.
    AmHeartbeat { job: u64, attempt: u32 },
    /// AppMaster → ResourceManager: the job committed.
    JobDone { job: u64, attempt: u32 },
    /// AppMaster → NodeManager: run one task container.
    RunTask { job: u64, attempt: u32, task: u32 },
    /// Container → AppMaster.
    TaskDone { job: u64, attempt: u32, task: u32 },
    /// AppMaster → store: commit the job output.
    CommitOutput { job: u64, attempt: u32 },
    /// ResourceManager → store: is this job already committed?
    CheckDone { job: u64 },
    /// Store → ResourceManager.
    DoneResp { job: u64, committed: bool },
}

/// ResourceManager bookkeeping per job.
#[derive(Debug)]
struct JobState {
    attempt: u32,
    /// Where the current AppMaster attempt runs (shown in traces).
    #[allow(dead_code)]
    am_node: NodeId,
    last_hb: u64,
    finished: bool,
    /// Pending failover decision while the store is consulted.
    awaiting_check: bool,
}

/// The ResourceManager.
pub struct Rm {
    nms: Vec<NodeId>,
    store: NodeId,
    flaws: MrFlaws,
    jobs: BTreeMap<u64, JobState>,
    tasks_per_job: u32,
    am_timeout: u64,
}

impl Rm {
    fn new(nms: Vec<NodeId>, store: NodeId, flaws: MrFlaws) -> Self {
        Self {
            nms,
            store,
            flaws,
            jobs: BTreeMap::new(),
            tasks_per_job: 2,
            am_timeout: 400,
        }
    }

    fn start_attempt(&mut self, ctx: &mut Ctx<'_, MrMsg>, job: u64, attempt: u32) {
        // Round-robin AppMaster placement.
        let am_node = self.nms[(attempt as usize - 1) % self.nms.len()];
        ctx.note(format!("RM starts AM attempt {attempt} for job {job} on {am_node}"));
        self.jobs.insert(
            job,
            JobState {
                attempt,
                am_node,
                last_hb: ctx.now(),
                finished: false,
                awaiting_check: false,
            },
        );
        ctx.send(
            am_node,
            MrMsg::StartAm {
                job,
                attempt,
                tasks: self.tasks_per_job,
            },
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, MrMsg>, _from: NodeId, msg: MrMsg) {
        match msg {
            MrMsg::Submit { job }
                if !self.jobs.contains_key(&job) => {
                    self.start_attempt(ctx, job, 1);
                }
            MrMsg::AmHeartbeat { job, attempt } => {
                if let Some(j) = self.jobs.get_mut(&job) {
                    if attempt == j.attempt {
                        j.last_hb = ctx.now();
                    }
                }
            }
            MrMsg::JobDone { job, .. } => {
                if let Some(j) = self.jobs.get_mut(&job) {
                    j.finished = true;
                }
            }
            MrMsg::DoneResp { job, committed } => {
                let next = match self.jobs.get_mut(&job) {
                    Some(j) if j.awaiting_check => {
                        j.awaiting_check = false;
                        if committed {
                            j.finished = true;
                            ctx.note(format!(
                                "RM: job {job} already committed; NOT relaunching"
                            ));
                            None
                        } else {
                            Some(j.attempt + 1)
                        }
                    }
                    _ => None,
                };
                if let Some(a) = next {
                    self.start_attempt(ctx, job, a);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, MrMsg>, tag: u64) {
        if tag != TAG_RM_CHECK {
            return;
        }
        let now = ctx.now();
        let stale: Vec<(u64, u32)> = self
            .jobs
            .iter()
            .filter(|(_, j)| !j.finished && !j.awaiting_check)
            .filter(|(_, j)| now.saturating_sub(j.last_hb) > self.am_timeout)
            .map(|(job, j)| (*job, j.attempt))
            .collect();
        for (job, attempt) in stale {
            ctx.note(format!("RM: AM attempt {attempt} of job {job} presumed dead"));
            if self.flaws.relaunch_without_checking {
                self.start_attempt(ctx, job, attempt + 1);
            } else {
                if let Some(j) = self.jobs.get_mut(&job) {
                    j.awaiting_check = true;
                }
                ctx.send(self.store, MrMsg::CheckDone { job });
            }
        }
        ctx.set_timer(100, TAG_RM_CHECK);
    }
}

/// One in-flight AppMaster on a NodeManager.
#[derive(Debug)]
struct AmState {
    attempt: u32,
    tasks_total: u32,
    done: std::collections::BTreeSet<u32>,
    committed: bool,
    retries: u32,
}

/// A NodeManager: hosts AppMasters and executes task containers.
pub struct Nm {
    me: NodeId,
    nms: Vec<NodeId>,
    rm: NodeId,
    store: NodeId,
    client: NodeId,
    ams: BTreeMap<u64, AmState>,
}

impl Nm {
    fn new(me: NodeId, nms: Vec<NodeId>, rm: NodeId, store: NodeId, client: NodeId) -> Self {
        Self {
            me,
            nms,
            rm,
            store,
            client,
            ams: BTreeMap::new(),
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, MrMsg>, from: NodeId, msg: MrMsg) {
        match msg {
            MrMsg::StartAm { job, attempt, tasks } => {
                ctx.note(format!("AM attempt {attempt} for job {job} starting {tasks} tasks"));
                self.ams.insert(
                    job,
                    AmState {
                        attempt,
                        tasks_total: tasks,
                        done: std::collections::BTreeSet::new(),
                        committed: false,
                        retries: 0,
                    },
                );
                ctx.send(self.rm, MrMsg::AmHeartbeat { job, attempt });
                ctx.set_timer(100, TAG_AM_HB + job);
                ctx.set_timer(600, TAG_AM_RETRY + job);
                self.launch_tasks(ctx, job);
            }
            MrMsg::RunTask { job, attempt, task } => {
                // Simulate the container's work with a timer.
                let _ = (from, attempt);
                ctx.set_timer(200, TAG_TASK + job * 1000 + u64::from(task));
            }
            MrMsg::TaskDone { job, attempt, task } => {
                let done = match self.ams.get_mut(&job) {
                    Some(am) if am.attempt == attempt && !am.committed => {
                        am.done.insert(task);
                        am.done.len() as u32 >= am.tasks_total
                    }
                    _ => false,
                };
                if done {
                    let am = self.ams.get_mut(&job).expect("present"); // lint:allow(unwrap-expect)
                    am.committed = true;
                    let attempt = am.attempt;
                    ctx.note(format!("AM attempt {attempt} commits job {job} output"));
                    ctx.send(self.store, MrMsg::CommitOutput { job, attempt });
                    ctx.send(self.client, MrMsg::Result { job, attempt });
                    ctx.send(self.rm, MrMsg::JobDone { job, attempt });
                }
            }
            _ => {}
        }
    }

    /// Sends `RunTask` for every unfinished task, rotating hosts by retry
    /// count so a dead container host is eventually routed around.
    fn launch_tasks(&mut self, ctx: &mut Ctx<'_, MrMsg>, job: u64) {
        let Some(am) = self.ams.get(&job) else {
            return;
        };
        let attempt = am.attempt;
        let retries = am.retries as usize;
        let pending: Vec<u32> = (0..am.tasks_total).filter(|t| !am.done.contains(t)).collect();
        for t in pending {
            let host = self.nms[(self.me.0 + 1 + retries + t as usize) % self.nms.len()];
            ctx.send(host, MrMsg::RunTask { job, attempt, task: t });
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, MrMsg>, tag: u64) {
        if tag >= TAG_TASK {
            // Task finished: report to the AppMaster. The container knows
            // its AM from the RunTask sender; for simplicity tasks report to
            // every NodeManager, and only the hosting AM counts it.
            let job = (tag - TAG_TASK) / 1000;
            let task = ((tag - TAG_TASK) % 1000) as u32;
            for &nm in &self.nms.clone() {
                let attempt = 0; // Filled by receiver by matching job.
                let _ = attempt;
                ctx.send(
                    nm,
                    MrMsg::TaskDone {
                        job,
                        attempt: u32::MAX,
                        task,
                    },
                );
            }
        } else if tag >= TAG_AM_RETRY {
            let job = tag - TAG_AM_RETRY;
            let needs_retry = match self.ams.get_mut(&job) {
                Some(am) if !am.committed => {
                    am.retries += 1;
                    true
                }
                _ => false,
            };
            if needs_retry {
                self.launch_tasks(ctx, job);
                ctx.set_timer(600, TAG_AM_RETRY + job);
            }
        } else if tag > TAG_AM_HB && tag - TAG_AM_HB < 1000 {
            let job = tag - TAG_AM_HB;
            if let Some(am) = self.ams.get(&job) {
                if !am.committed {
                    let attempt = am.attempt;
                    ctx.send(self.rm, MrMsg::AmHeartbeat { job, attempt });
                    ctx.set_timer(100, TAG_AM_HB + job);
                }
            }
        }
    }
}

/// The output store (an HDFS stand-in): records every committed output.
#[derive(Default)]
pub struct Store {
    /// `(job, attempt)` for every commit accepted.
    pub outputs: Vec<(u64, u32)>,
}

impl Store {
    fn on_message(&mut self, ctx: &mut Ctx<'_, MrMsg>, from: NodeId, msg: MrMsg) {
        match msg {
            MrMsg::CommitOutput { job, attempt } => {
                self.outputs.push((job, attempt));
                ctx.note(format!("store: output of job {job} attempt {attempt} written"));
            }
            MrMsg::CheckDone { job } => {
                let committed = self.outputs.iter().any(|(j, _)| *j == job);
                ctx.send(from, MrMsg::DoneResp { job, committed });
            }
            _ => {}
        }
    }
}

/// The client: collects result deliveries per job.
#[derive(Default)]
pub struct MrClient {
    /// Attempts whose results reached the user, per job.
    pub results: BTreeMap<u64, Vec<u32>>,
}

/// A node of the MapReduce deployment.
pub enum MrProc {
    Rm(Rm),
    Nm(Box<Nm>),
    Store(Store),
    Client(MrClient),
}

impl Application for MrProc {
    type Msg = MrMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MrMsg>) {
        if let MrProc::Rm(_) = self {
            ctx.set_timer(100, TAG_RM_CHECK);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, MrMsg>, from: NodeId, msg: MrMsg) {
        match self {
            MrProc::Rm(rm) => rm.on_message(ctx, from, msg),
            MrProc::Nm(nm) => {
                // Tasks report with a placeholder attempt; rewrite it with
                // the hosted AM's attempt so accounting stays simple.
                let msg = match msg {
                    MrMsg::TaskDone { job, task, .. } => {
                        let attempt = nm.ams.get(&job).map(|a| a.attempt).unwrap_or(0);
                        MrMsg::TaskDone { job, attempt, task }
                    }
                    other => other,
                };
                nm.on_message(ctx, from, msg);
            }
            MrProc::Store(s) => s.on_message(ctx, from, msg),
            MrProc::Client(c) => {
                if let MrMsg::Result { job, attempt } = msg {
                    c.results.entry(job).or_default().push(attempt);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, MrMsg>, _t: TimerId, tag: u64) {
        match self {
            MrProc::Rm(rm) => rm.on_timer(ctx, tag),
            MrProc::Nm(nm) => nm.on_timer(ctx, tag),
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        // AppMaster and container state is volatile; the store's outputs
        // and the client's received results survive.
        if let MrProc::Nm(nm) = self {
            nm.ams.clear();
        }
    }
}

/// Node layout of the MapReduce deployment.
pub struct MrCluster {
    pub neat: neat::Neat<MrProc>,
    pub rm: NodeId,
    pub nms: Vec<NodeId>,
    pub store: NodeId,
    pub client: NodeId,
}

impl MrCluster {
    /// RM + 3 NodeManagers + store + client.
    pub fn build(flaws: MrFlaws, seed: u64, record: bool) -> Self {
        let rm = NodeId(0);
        let nms: Vec<NodeId> = (1..=3).map(NodeId).collect();
        let store = NodeId(4);
        let client = NodeId(5);
        let nms_for_build = nms.clone();
        // MapReduce arms peak around 77 events at seed 8.
        let world = WorldBuilder::new(seed)
            .record_trace(record)
            .event_capacity(128)
            .build(6, |id| {
            if id == rm {
                MrProc::Rm(Rm::new(nms_for_build.clone(), store, flaws))
            } else if id.0 <= 3 {
                MrProc::Nm(Box::new(Nm::new(id, nms_for_build.clone(), rm, store, client)))
            } else if id == store {
                MrProc::Store(Store::default())
            } else {
                MrProc::Client(MrClient::default())
            }
        });
        Self {
            neat: neat::Neat::new(world),
            rm,
            nms,
            store,
            client,
        }
    }

    /// Submits `job` from the client node.
    pub fn submit(&mut self, job: u64) {
        let rm = self.rm;
        self.neat
            .world
            .call(self.client, |_, ctx| ctx.send(rm, MrMsg::Submit { job }))
            .expect("client alive"); // lint:allow(unwrap-expect)
    }

    /// Results delivered to the user for `job`.
    pub fn results_for(&self, job: u64) -> Vec<u32> {
        match self.neat.world.app(self.client) {
            MrProc::Client(c) => c.results.get(&job).cloned().unwrap_or_default(),
            _ => unreachable!(),
        }
    }

    /// Store outputs for `job`.
    pub fn outputs_for(&self, job: u64) -> Vec<u32> {
        match self.neat.world.app(self.store) {
            MrProc::Store(s) => s
                .outputs
                .iter()
                .filter(|(j, _)| *j == job)
                .map(|(_, a)| *a)
                .collect(),
            _ => unreachable!(),
        }
    }
}

/// Figure 3: submit a job, partially partition the AppMaster's node from
/// the ResourceManager mid-run, and count how many times the job executed.
pub fn double_execution(flaws: MrFlaws, seed: u64, record: bool) -> (Vec<Violation>, String, neat::obs::Timeline) {
    let mut cluster = MrCluster::build(flaws, seed, record);
    cluster.submit(7);
    cluster.neat.sleep(150); // the AM is placed and running

    // The AM of attempt 1 runs on nms[0]; partially partition it from the
    // RM only (it still reaches the other NodeManagers, store, client).
    let am_node = cluster.nms[0];
    let rm = cluster.rm;
    let p = cluster.neat.partition_partial(&[am_node], &[rm]);

    cluster.neat.sleep(3000);
    cluster.neat.heal(&p);
    cluster.neat.sleep(500);

    let results = cluster.results_for(7);
    let outputs = cluster.outputs_for(7);
    let mut violations = Vec::new();
    if results.len() > 1 {
        violations.push(Violation::new(
            ViolationKind::DoubleExecution,
            format!("the user received {} results for one job: attempts {results:?}", results.len()),
        ));
    }
    if outputs.len() > 1 {
        violations.push(Violation::new(
            ViolationKind::DataCorruption,
            format!("job output written {} times: attempts {outputs:?}", outputs.len()),
        ));
    }
    if results.is_empty() {
        violations.push(Violation::new(
            ViolationKind::DataUnavailability,
            "the job never produced a result",
        ));
    }
    let timeline = cluster.neat.observe(&violations);
    (violations, cluster.neat.world.trace().summary(), timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_completes_once_without_faults() {
        let mut c = MrCluster::build(
            MrFlaws {
                relaunch_without_checking: true,
            },
            1,
            false,
        );
        c.submit(1);
        c.neat.sleep(2000);
        assert_eq!(c.results_for(1).len(), 1);
        assert_eq!(c.outputs_for(1), vec![1]);
    }

    #[test]
    fn fig3_double_execution_with_the_flaw() {
        let (violations, _, _) = double_execution(
            MrFlaws {
                relaunch_without_checking: true,
            },
            81,
            false,
        );
        assert!(
            violations.iter().any(|v| v.kind == ViolationKind::DoubleExecution),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.kind == ViolationKind::DataCorruption),
            "{violations:?}"
        );
    }

    #[test]
    fn fig3_single_execution_when_fixed() {
        let (violations, _, _) = double_execution(
            MrFlaws {
                relaunch_without_checking: false,
            },
            81,
            false,
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn am_crash_still_recovers_when_fixed() {
        // The fixed RM must still relaunch when the job truly died.
        let mut c = MrCluster::build(
            MrFlaws {
                relaunch_without_checking: false,
            },
            3,
            false,
        );
        c.submit(2);
        c.neat.sleep(120);
        let am_node = c.nms[0];
        c.neat.crash(&[am_node]);
        c.neat.sleep(3000);
        c.neat.restart(&[am_node]);
        c.neat.sleep(1000);
        let results = c.results_for(2);
        assert_eq!(results.len(), 1, "exactly one result expected: {results:?}");
        assert!(results[0] >= 2, "a relaunched attempt should have finished");
    }
}
