//! Scheduler models: the MapReduce-like ResourceManager/AppMaster pipeline
//! (Figure 3 double execution, MAPREDUCE-4819) and the DKron-like job
//! scheduler (dkron #379 misleading status).

pub mod dkron;
pub mod mapred;

pub use dkron::{misleading_status, DkCluster, DkFlaws};
pub use mapred::{double_execution, MrCluster, MrFlaws};
