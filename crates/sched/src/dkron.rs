//! The DKron-like job scheduler (dkron #379, found by NEAT).
//!
//! The leader executes a job *locally*, then reports its status. With the
//! flaw, the status path requires acknowledgement from the other scheduler
//! nodes: under a partial partition that isolates the leader from its
//! peers — but not from the client — the job executes successfully, yet
//! DKron reports it as failed. A client that trusts the status and
//! resubmits gets the job executed twice.

use std::collections::{BTreeMap, BTreeSet};

use neat::{Violation, ViolationKind};
use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};

const TAG_STATUS_TIMEOUT: u64 = 2_000_000;

/// Flaw toggle.
#[derive(Clone, Copy, Debug)]
pub struct DkFlaws {
    /// Report the job failed when peer acknowledgement is unavailable,
    /// even though the local execution succeeded.
    pub status_requires_peer_ack: bool,
}

/// Wire protocol.
#[derive(Clone, Debug)]
pub enum DkMsg {
    /// Client → leader.
    RunJob { op_id: u64, job: u64 },
    /// Leader → client.
    JobStatus { op_id: u64, job: u64, ok: bool },
    /// Leader → followers: record the execution.
    SyncExec { job: u64, op_id: u64 },
    /// Follower → leader.
    SyncAck { job: u64, op_id: u64 },
}

/// A scheduler node.
pub struct DkNode {
    me: NodeId,
    peers: Vec<NodeId>,
    flaws: DkFlaws,
    is_leader: bool,
    /// Every local execution (the job's side effect): `(job, count)`.
    pub executions: BTreeMap<u64, u32>,
    /// Pending status reports awaiting peer acks: op → (client, job, acks).
    pending: BTreeMap<u64, (NodeId, u64, BTreeSet<NodeId>)>,
}

impl DkNode {
    fn new(me: NodeId, peers: Vec<NodeId>, leader: bool, flaws: DkFlaws) -> Self {
        Self {
            me,
            peers,
            flaws,
            is_leader: leader,
            executions: BTreeMap::new(),
            pending: BTreeMap::new(),
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DkMsg>, from: NodeId, msg: DkMsg) {
        match msg {
            DkMsg::RunJob { op_id, job } => {
                if !self.is_leader {
                    ctx.send(from, DkMsg::JobStatus { op_id, job, ok: false });
                    return;
                }
                // The job executes locally — the side effect happens NOW.
                *self.executions.entry(job).or_default() += 1;
                ctx.note(format!("leader executed job {job}"));
                if self.flaws.status_requires_peer_ack {
                    let mut others: Vec<NodeId> =
                        self.peers.iter().copied().filter(|&p| p != self.me).collect();
                    others.sort();
                    self.pending.insert(op_id, (from, job, BTreeSet::new()));
                    ctx.broadcast(&others, DkMsg::SyncExec { job, op_id });
                    ctx.set_timer(400, TAG_STATUS_TIMEOUT + op_id);
                } else {
                    // Fixed: the status reflects the local execution result.
                    ctx.send(from, DkMsg::JobStatus { op_id, job, ok: true });
                }
            }
            DkMsg::SyncExec { job, op_id } => {
                ctx.send(from, DkMsg::SyncAck { job, op_id });
            }
            DkMsg::SyncAck { op_id, .. } => {
                let done = match self.pending.get_mut(&op_id) {
                    Some((_, _, acks)) => {
                        acks.insert(from);
                        acks.len() >= self.peers.len() - 1
                    }
                    None => false,
                };
                if done {
                    let (client, job, _) = self.pending.remove(&op_id).expect("present"); // lint:allow(unwrap-expect)
                    ctx.send(client, DkMsg::JobStatus { op_id, job, ok: true });
                }
            }
            DkMsg::JobStatus { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DkMsg>, tag: u64) {
        if tag >= TAG_STATUS_TIMEOUT {
            let op_id = tag - TAG_STATUS_TIMEOUT;
            if let Some((client, job, _)) = self.pending.remove(&op_id) {
                // dkron #379: the execution happened, but the user is told
                // it failed.
                ctx.note(format!("reporting job {job} as FAILED despite local success"));
                ctx.send(client, DkMsg::JobStatus { op_id, job, ok: false });
            }
        }
    }
}

/// Client process: collects statuses.
#[derive(Default)]
pub struct DkClient {
    next: u64,
    statuses: BTreeMap<u64, bool>,
}

/// A node of the scheduler deployment.
pub enum DkProc {
    Node(DkNode),
    Client(DkClient),
}

impl Application for DkProc {
    type Msg = DkMsg;

    fn on_start(&mut self, _ctx: &mut Ctx<'_, DkMsg>) {}

    fn on_message(&mut self, ctx: &mut Ctx<'_, DkMsg>, from: NodeId, msg: DkMsg) {
        match self {
            DkProc::Node(n) => n.on_message(ctx, from, msg),
            DkProc::Client(c) => {
                if let DkMsg::JobStatus { op_id, ok, .. } = msg {
                    c.statuses.insert(op_id, ok);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DkMsg>, _t: TimerId, tag: u64) {
        if let DkProc::Node(n) = self {
            n.on_timer(ctx, tag);
        }
    }
}

/// The scheduler deployment: leader, two followers, one client.
pub struct DkCluster {
    pub neat: neat::Neat<DkProc>,
    pub leader: NodeId,
    pub followers: Vec<NodeId>,
    pub client: NodeId,
}

impl DkCluster {
    /// Builds the deployment.
    pub fn build(flaws: DkFlaws, seed: u64, record: bool) -> Self {
        let nodes: Vec<NodeId> = (0..3).map(NodeId).collect();
        let client = NodeId(3);
        let peers = nodes.clone();
        // Dkron-style arms peak under ~400 events at seed 8.
        let world = WorldBuilder::new(seed)
            .record_trace(record)
            .event_capacity(512)
            .build(4, |id| {
            if id.0 < 3 {
                DkProc::Node(DkNode::new(id, peers.clone(), id.0 == 0, flaws))
            } else {
                DkProc::Client(DkClient::default())
            }
        });
        Self {
            neat: neat::Neat::new(world),
            leader: nodes[0],
            followers: nodes[1..].to_vec(),
            client,
        }
    }

    /// Runs `job` synchronously, returning the reported status
    /// (`None` = no answer).
    pub fn run_job(&mut self, job: u64) -> Option<bool> {
        let leader = self.leader;
        let op_id = self
            .neat
            .world
            .call(self.client, |p, ctx| match p {
                DkProc::Client(c) => {
                    let op_id = c.next;
                    c.next += 1;
                    ctx.send(leader, DkMsg::RunJob { op_id, job });
                    op_id
                }
                DkProc::Node(_) => unreachable!(),
            })
            .expect("client alive"); // lint:allow(unwrap-expect)
        let client = self.client;
        self.neat.run_op(
            |_| Ok(()),
            |w| match w.app_mut(client) {
                DkProc::Client(c) => c.statuses.remove(&op_id),
                DkProc::Node(_) => None,
            },
        )
    }

    /// How many times `job`'s side effect ran on the leader.
    pub fn executions(&self, job: u64) -> u32 {
        match self.neat.world.app(self.leader) {
            DkProc::Node(n) => n.executions.get(&job).copied().unwrap_or(0),
            DkProc::Client(_) => unreachable!(),
        }
    }
}

/// dkron #379: partial partition leader | followers (client bridges); the
/// job runs but is reported failed; the client's retry runs it twice.
pub fn misleading_status(flaws: DkFlaws, seed: u64, record: bool) -> (Vec<Violation>, String, neat::obs::Timeline) {
    let mut cluster = DkCluster::build(flaws, seed, record);
    cluster.neat.sleep(50);

    let followers = cluster.followers.clone();
    let leader = cluster.leader;
    let p = cluster.neat.partition_partial(&[leader], &followers);

    let first = cluster.run_job(9);
    // The user trusts the status: a failure means "retry".
    let mut violations = Vec::new();
    if first == Some(false) {
        let _ = cluster.run_job(9);
    }
    cluster.neat.heal(&p);
    cluster.neat.sleep(300);

    let execs = cluster.executions(9);
    if first == Some(false) && execs >= 1 {
        violations.push(Violation::new(
            ViolationKind::DataCorruption,
            format!(
                "job reported FAILED but executed {execs} time(s) — misleading status \
                 caused re-execution"
            ),
        ));
    }
    let timeline = cluster.neat.observe(&violations);
    (violations, cluster.neat.world.trace().summary(), timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_runs_and_reports_ok_without_faults() {
        let mut c = DkCluster::build(
            DkFlaws {
                status_requires_peer_ack: true,
            },
            1,
            false,
        );
        c.neat.sleep(50);
        assert_eq!(c.run_job(1), Some(true));
        assert_eq!(c.executions(1), 1);
    }

    #[test]
    fn misleading_status_with_the_flaw() {
        let (violations, _, _) = misleading_status(
            DkFlaws {
                status_requires_peer_ack: true,
            },
            91,
            false,
        );
        assert!(
            violations.iter().any(|v| v.kind == ViolationKind::DataCorruption),
            "{violations:?}"
        );
    }

    #[test]
    fn truthful_status_when_fixed() {
        let (violations, _, _) = misleading_status(
            DkFlaws {
                status_requires_peer_ack: false,
            },
            91,
            false,
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn non_leader_refuses_jobs() {
        let mut c = DkCluster::build(
            DkFlaws {
                status_requires_peer_ack: false,
            },
            2,
            false,
        );
        c.neat.sleep(50);
        let follower = c.followers[0];
        c.leader = follower; // aim the client at a follower
        assert_eq!(c.run_job(5), Some(false));
        assert_eq!(c.executions(5), 0);
    }
}
