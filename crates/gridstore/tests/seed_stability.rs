//! Seed stability: same seed ⇒ identical scenario fingerprint and trace
//! hash (DESIGN.md determinism rules; the campaign-wide version runs via
//! `cargo run -p lint -- --audit`).

use gridstore::{scenarios, GridFlaws};
use proptest::prelude::*;

fn fingerprint(seed: u64) -> String {
    format!(
        "{:#?}",
        scenarios::semaphore_double_lock(GridFlaws::flawed(), seed, true)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_same_trace(seed in 0u64..100_000) {
        let (a, b) = (fingerprint(seed), fingerprint(seed));
        prop_assert_eq!(neat::audit::trace_hash(&a), neat::audit::trace_hash(&b));
        prop_assert_eq!(a, b);
    }
}
