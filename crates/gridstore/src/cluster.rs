//! Grid deployment assembly and the synchronous client.

use std::collections::BTreeMap;

use neat::{Neat, Op, OpRecord, Outcome};
use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};

use crate::{
    node::{GridFlaws, GridMsg, GridNode},
    state::{GridOp, GridResp, GridState},
};

/// Client process: collects responses, answers liveness pings.
#[derive(Default)]
pub struct GridClientProc {
    next: u64,
    results: BTreeMap<u64, GridResp>,
}

impl GridClientProc {
    fn next_op(&mut self, me: NodeId) -> u64 {
        let id = (me.0 as u64) << 32 | self.next;
        self.next += 1;
        id
    }

    /// Removes a completed response.
    pub fn take(&mut self, op_id: u64) -> Option<GridResp> {
        self.results.remove(&op_id)
    }
}

/// A node of the grid deployment.
pub enum GridProc {
    Server(Box<GridNode>),
    Client(GridClientProc),
}

impl GridProc {
    /// Server state.
    ///
    /// # Panics
    ///
    /// Panics on client nodes.
    pub fn server(&self) -> &GridNode {
        match self {
            GridProc::Server(s) => s,
            GridProc::Client(_) => panic!("not a server node"),
        }
    }

    /// Mutable client state.
    ///
    /// # Panics
    ///
    /// Panics on server nodes.
    pub fn client_mut(&mut self) -> &mut GridClientProc {
        match self {
            GridProc::Client(c) => c,
            GridProc::Server(_) => panic!("not a client node"),
        }
    }
}

impl Application for GridProc {
    type Msg = GridMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, GridMsg>) {
        if let GridProc::Server(s) = self {
            s.start(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, GridMsg>, from: NodeId, msg: GridMsg) {
        match self {
            GridProc::Server(s) => s.on_message(ctx, from, msg),
            GridProc::Client(c) => match msg {
                GridMsg::Resp { op_id, resp } => {
                    c.results.insert(op_id, resp);
                }
                GridMsg::Ping => ctx.send(from, GridMsg::Pong),
                _ => {}
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GridMsg>, timer: TimerId, tag: u64) {
        if let GridProc::Server(s) = self {
            s.on_timer(ctx, timer, tag);
        }
    }

    fn on_crash(&mut self) {
        if let GridProc::Server(s) = self {
            s.on_crash();
        }
    }
}

/// Synchronous grid client bound to one client node and one server.
#[derive(Clone, Copy, Debug)]
pub struct GridClient {
    pub node: NodeId,
    pub target: NodeId,
}

impl GridClient {
    /// Points the handle at a different server.
    pub fn via(self, target: NodeId) -> Self {
        Self { target, ..self }
    }

    fn history_op(op: &GridOp) -> Op {
        match op {
            GridOp::Put { key, val } => Op::Write {
                key: key.clone(),
                val: *val,
            },
            GridOp::Get { key } => Op::Read { key: key.clone() },
            GridOp::Remove { key } => Op::Delete { key: key.clone() },
            GridOp::Incr { key, by } => Op::Incr {
                key: key.clone(),
                by: *by,
            },
            GridOp::Cas { key, .. } => Op::Other {
                label: format!("cas:{key}"),
            },
            GridOp::SemCreate { key, .. } => Op::Other {
                label: format!("sem_create:{key}"),
            },
            GridOp::SemAcquire { key } => Op::Acquire { key: key.clone() },
            GridOp::SemRelease { key } => Op::Release { key: key.clone() },
            GridOp::Enq { key, val } => Op::Enqueue {
                key: key.clone(),
                val: *val,
            },
            GridOp::Deq { key } => Op::Dequeue { key: key.clone() },
            GridOp::SetAdd { key, val } => Op::Add {
                key: key.clone(),
                val: *val,
            },
            GridOp::SetRemove { key, val } => Op::Remove {
                key: key.clone(),
                val: *val,
            },
            GridOp::SetRead { key } => Op::Read { key: key.clone() },
        }
    }

    /// Executes one grid operation, recording it in the history.
    pub fn exec(&self, neat: &mut Neat<GridProc>, op: GridOp) -> Outcome {
        let start = neat.now();
        let target = self.target;
        let wire = op.clone();
        let op_id = neat
            .world
            .call(self.node, |p, ctx| {
                let id = ctx.id();
                let op_id = p.client_mut().next_op(id);
                ctx.send(target, GridMsg::Req { op_id, op: wire.clone() });
                op_id
            })
            .expect("client alive"); // lint:allow(unwrap-expect)
        let node = self.node;
        let res = neat.run_op(|_| Ok(()), |w| w.app_mut(node).client_mut().take(op_id));
        let outcome = match res {
            Some(GridResp::Ok) => Outcome::Ok(None),
            Some(GridResp::Value(v)) => Outcome::Ok(v),
            Some(GridResp::Values(vs)) => Outcome::OkMany(vs),
            Some(GridResp::Fail) => Outcome::Fail,
            None => Outcome::Timeout,
        };
        let end = neat.now();
        neat.record(OpRecord {
            client: node,
            op: Self::history_op(&op),
            outcome: outcome.clone(),
            start,
            end,
        });
        outcome
    }

    /// Cache write.
    pub fn put(&self, neat: &mut Neat<GridProc>, key: &str, val: u64) -> Outcome {
        self.exec(neat, GridOp::Put { key: key.into(), val })
    }

    /// Cache read.
    pub fn get(&self, neat: &mut Neat<GridProc>, key: &str) -> Outcome {
        self.exec(neat, GridOp::Get { key: key.into() })
    }

    /// Atomic increment.
    pub fn incr(&self, neat: &mut Neat<GridProc>, key: &str, by: u64) -> Outcome {
        self.exec(neat, GridOp::Incr { key: key.into(), by })
    }

    /// Semaphore creation.
    pub fn sem_create(&self, neat: &mut Neat<GridProc>, key: &str, permits: u64) -> Outcome {
        self.exec(neat, GridOp::SemCreate { key: key.into(), permits })
    }

    /// Semaphore acquire.
    pub fn acquire(&self, neat: &mut Neat<GridProc>, key: &str) -> Outcome {
        self.exec(neat, GridOp::SemAcquire { key: key.into() })
    }

    /// Semaphore release.
    pub fn release(&self, neat: &mut Neat<GridProc>, key: &str) -> Outcome {
        self.exec(neat, GridOp::SemRelease { key: key.into() })
    }

    /// Queue append.
    pub fn enq(&self, neat: &mut Neat<GridProc>, key: &str, val: u64) -> Outcome {
        self.exec(neat, GridOp::Enq { key: key.into(), val })
    }

    /// Queue pop.
    pub fn deq(&self, neat: &mut Neat<GridProc>, key: &str) -> Outcome {
        self.exec(neat, GridOp::Deq { key: key.into() })
    }

    /// Set insert.
    pub fn set_add(&self, neat: &mut Neat<GridProc>, key: &str, val: u64) -> Outcome {
        self.exec(neat, GridOp::SetAdd { key: key.into(), val })
    }

    /// Set remove.
    pub fn set_remove(&self, neat: &mut Neat<GridProc>, key: &str, val: u64) -> Outcome {
        self.exec(neat, GridOp::SetRemove { key: key.into(), val })
    }
}

/// A running grid deployment.
pub struct GridCluster {
    pub neat: Neat<GridProc>,
    pub servers: Vec<NodeId>,
    pub clients: Vec<NodeId>,
}

impl GridCluster {
    /// Builds `servers` grid nodes and `clients` client nodes.
    pub fn build(servers: usize, clients: usize, flaws: GridFlaws, seed: u64, record: bool) -> Self {
        let server_ids: Vec<NodeId> = (0..servers).map(NodeId).collect();
        let client_ids: Vec<NodeId> = (servers..servers + clients).map(NodeId).collect();
        let world = WorldBuilder::new(seed)
            .record_trace(record)
            // Historical high-water mark of the gridstore arms (longest
            // Ignite/Hazelcast arm ~576 events at seed 8).
            .event_capacity(640)
            .build(servers + clients, |id| {
                if id.0 < servers {
                    GridProc::Server(Box::new(GridNode::new(id, server_ids.clone(), flaws)))
                } else {
                    GridProc::Client(GridClientProc::default())
                }
            });
        Self {
            neat: Neat::new(world),
            servers: server_ids,
            clients: client_ids,
        }
    }

    /// Client handle `i`, pointed at server `i % servers` (spreading
    /// clients across the cluster like real grid clients).
    pub fn client(&self, i: usize) -> GridClient {
        GridClient {
            node: self.clients[i],
            target: self.servers[i % self.servers.len()],
        }
    }

    /// A server's grid state.
    pub fn state_of(&self, server: NodeId) -> GridState {
        self.neat.world.app(server).server().state().clone()
    }

    /// Advances virtual time.
    pub fn settle(&mut self, ms: u64) {
        self.neat.sleep(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(seed: u64) -> GridCluster {
        GridCluster::build(3, 2, GridFlaws::fixed(), seed, false)
    }

    #[test]
    fn put_get_through_any_server() {
        let mut c = cluster(1);
        c.settle(100);
        let c0 = c.client(0);
        assert!(c0.put(&mut c.neat, "k", 5).is_ok());
        // Read through a different server: the state sync propagated.
        c.settle(100);
        let c1 = c.client(1);
        assert_eq!(c1.get(&mut c.neat, "k"), Outcome::Ok(Some(5)));
    }

    #[test]
    fn semaphore_exclusion_across_clients() {
        let mut c = cluster(2);
        c.settle(100);
        let c0 = c.client(0);
        let c1 = c.client(1);
        c0.sem_create(&mut c.neat, "s", 1);
        assert!(c0.acquire(&mut c.neat, "s").is_ok());
        c.settle(100);
        assert_eq!(c1.acquire(&mut c.neat, "s"), Outcome::Fail);
        assert!(c0.release(&mut c.neat, "s").is_ok());
        c.settle(100);
        assert!(c1.acquire(&mut c.neat, "s").is_ok());
    }

    #[test]
    fn queue_round_trip_across_servers() {
        let mut c = cluster(3);
        c.settle(100);
        let c0 = c.client(0);
        let c1 = c.client(1);
        c0.enq(&mut c.neat, "q", 1);
        c0.enq(&mut c.neat, "q", 2);
        c.settle(100);
        assert_eq!(c1.deq(&mut c.neat, "q"), Outcome::Ok(Some(1)));
        assert_eq!(c1.deq(&mut c.neat, "q"), Outcome::Ok(Some(2)));
        assert_eq!(c1.deq(&mut c.neat, "q"), Outcome::Ok(None));
    }

    #[test]
    fn state_replicates_to_all_members() {
        let mut c = cluster(4);
        c.settle(100);
        let c0 = c.client(0);
        c0.put(&mut c.neat, "k", 9);
        c0.incr(&mut c.neat, "n", 4);
        c.settle(300);
        for s in c.servers.clone() {
            let st = c.state_of(s);
            assert_eq!(st.cache.get("k"), Some(&9), "{s}");
            assert_eq!(st.atomics.get("n"), Some(&4), "{s}");
        }
    }

    #[test]
    fn fixed_grid_heals_membership() {
        let mut c = cluster(5);
        c.settle(200);
        let isolated = c.servers[2];
        let p = c.neat.partition_complete(
            &[isolated],
            &neat::rest_of(&c.neat.world.node_ids(), &[isolated]),
        );
        c.settle(1000);
        assert!(
            !c.neat.world.app(c.servers[0]).server().view().contains(&isolated),
            "isolated node should have been removed"
        );
        c.neat.heal(&p);
        c.settle(1000);
        assert!(
            c.neat.world.app(c.servers[0]).server().view().contains(&isolated),
            "fixed grid must re-admit the healed node"
        );
    }
}
