//! The data-grid failures as seeded scenarios (Table 15's Ignite,
//! Hazelcast, and Terracotta rows; Figure 5).

use neat::{
    checkers::{
        check_counter, check_queue, check_register, check_semaphore, check_set,
        QueueExpectation, RegisterSemantics,
    },
    rest_of, Violation, ViolationKind,
};
use simnet::NodeId;

use crate::{cluster::GridCluster, node::GridFlaws};

/// What a grid scenario produced.
#[derive(Debug)]
pub struct GridOutcome {
    pub violations: Vec<Violation>,
    pub trace: String,
    /// Typed observability timeline (faults, ops, verdicts; see `obs`).
    pub timeline: neat::obs::Timeline,
}

impl GridOutcome {
    /// `true` when a violation of `kind` was found.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }
}

/// Builds the canonical deployment: three servers, two clients, and a
/// complete partition splitting server 0 + client 0 from the rest.
fn split_cluster(
    flaws: GridFlaws,
    seed: u64,
    record: bool,
) -> (GridCluster, NodeId, NodeId) {
    let cluster = GridCluster::build(3, 2, flaws, seed, record);
    let side_a = cluster.servers[0];
    let side_b = cluster.servers[1];
    (cluster, side_a, side_b)
}

fn majority_state(cluster: &GridCluster) -> crate::state::GridState {
    cluster.state_of(cluster.servers[1])
}

/// Figure 5 / IGNITE-8882: a complete partition isolates one replica; both
/// sides remove each other from the view and both grant the only permit.
pub fn semaphore_double_lock(flaws: GridFlaws, seed: u64, record: bool) -> GridOutcome {
    let (mut cluster, a, b) = split_cluster(flaws, seed, record);
    cluster.settle(200);
    let c0 = cluster.client(0).via(a);
    let c1 = cluster.client(1).via(b);
    c0.sem_create(&mut cluster.neat, "sem", 1);
    cluster.settle(200);

    // (1) The partition isolates replica `a` with client 0.
    let minority = [a, cluster.clients[0]];
    let p = cluster
        .neat
        .partition_complete(&minority, &rest_of(&cluster.neat.world.node_ids(), &minority));
    cluster.settle(800); // both sides drop each other from the view

    // (2) Clients on both sides acquire the same semaphore.
    c0.acquire(&mut cluster.neat, "sem");
    c1.acquire(&mut cluster.neat, "sem");

    cluster.neat.heal(&p);
    cluster.settle(800);

    let violations = check_semaphore(cluster.neat.history(), "sem", 1);
    let timeline = cluster.neat.observe(&violations);
    GridOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

/// Ignite semaphore reclaim: an unreachable holder's permit is reclaimed;
/// after the heal, the holder's release corrupts the semaphore.
pub fn semaphore_reclaim_corruption(flaws: GridFlaws, seed: u64, record: bool) -> GridOutcome {
    let mut cluster = GridCluster::build(3, 2, flaws, seed, record);
    cluster.settle(200);
    let holder = cluster.clients[0];
    let c0 = cluster.client(0).via(cluster.servers[0]);
    let c1 = cluster.client(1).via(cluster.servers[0]);
    c0.sem_create(&mut cluster.neat, "sem", 1);
    c0.acquire(&mut cluster.neat, "sem");

    // Isolate only the holder client.
    let p = cluster
        .neat
        .partition_complete(&[holder], &rest_of(&cluster.neat.world.node_ids(), &[holder]));
    cluster.settle(1000); // the grid reclaims the "dead" client's permit

    // Someone else takes the permit…
    c1.acquire(&mut cluster.neat, "sem");

    // …the partition heals, and the original holder releases.
    cluster.neat.heal(&p);
    cluster.settle(300);
    c0.release(&mut cluster.neat, "sem");
    cluster.settle(300);

    let mut violations = check_semaphore(cluster.neat.history(), "sem", 1);
    let st = cluster.state_of(cluster.servers[0]);
    if st.semaphores.get("sem").is_some_and(|s| s.corrupted()) {
        violations.push(Violation::new(
            ViolationKind::BrokenLock,
            "semaphore permits exceed capacity after the reclaimed holder's release",
        ));
    }
    let timeline = cluster.neat.observe(&violations);
    GridOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

/// IGNITE-9768: atomic counters incremented on both sides of a split
/// diverge; the surviving state misses acknowledged increments.
pub fn broken_atomics(flaws: GridFlaws, seed: u64, record: bool) -> GridOutcome {
    let (mut cluster, a, b) = split_cluster(flaws, seed, record);
    cluster.settle(200);
    let c0 = cluster.client(0).via(a);
    let c1 = cluster.client(1).via(b);

    let minority = [a, cluster.clients[0]];
    let p = cluster
        .neat
        .partition_complete(&minority, &rest_of(&cluster.neat.world.node_ids(), &minority));
    cluster.settle(800);

    c0.incr(&mut cluster.neat, "ctr", 1);
    c0.incr(&mut cluster.neat, "ctr", 1);
    c1.incr(&mut cluster.neat, "ctr", 1);
    c1.incr(&mut cluster.neat, "ctr", 1);
    c1.incr(&mut cluster.neat, "ctr", 1);

    cluster.neat.heal(&p);
    cluster.settle(1000);

    let final_value = majority_state(&cluster)
        .atomics
        .get("ctr")
        .copied()
        .unwrap_or(0);
    let violations = check_counter(cluster.neat.history(), "ctr", 0, final_value);
    let timeline = cluster.neat.observe(&violations);
    GridOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

/// IGNITE-9762: cache reads on the isolated side return stale data while
/// the majority moves on.
pub fn cache_stale_read(flaws: GridFlaws, seed: u64, record: bool) -> GridOutcome {
    let (mut cluster, a, b) = split_cluster(flaws, seed, record);
    cluster.settle(200);
    let c0 = cluster.client(0).via(a);
    let c1 = cluster.client(1).via(b);
    c0.put(&mut cluster.neat, "k", 1);
    cluster.settle(200);

    let minority = [a, cluster.clients[0]];
    let p = cluster
        .neat
        .partition_complete(&minority, &rest_of(&cluster.neat.world.node_ids(), &minority));
    cluster.settle(800);

    c1.put(&mut cluster.neat, "k", 2);
    c0.get(&mut cluster.neat, "k");

    cluster.neat.heal(&p);
    cluster.settle(1000);

    let st = majority_state(&cluster);
    let final_state = [("k".to_string(), st.cache.get("k").copied())]
        .into_iter()
        .collect();
    let violations = check_register(
        cluster.neat.history(),
        RegisterSemantics::Strong,
        &final_state,
    );
    let timeline = cluster.neat.observe(&violations);
    GridOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

/// IGNITE-9765: both sides of the split serve the same queue head.
pub fn queue_double_dequeue(flaws: GridFlaws, seed: u64, record: bool) -> GridOutcome {
    let (mut cluster, a, b) = split_cluster(flaws, seed, record);
    cluster.settle(200);
    let c0 = cluster.client(0).via(a);
    let c1 = cluster.client(1).via(b);
    c0.enq(&mut cluster.neat, "q", 1);
    c0.enq(&mut cluster.neat, "q", 2);
    cluster.settle(200);

    let minority = [a, cluster.clients[0]];
    let p = cluster
        .neat
        .partition_complete(&minority, &rest_of(&cluster.neat.world.node_ids(), &minority));
    cluster.settle(800);

    c0.deq(&mut cluster.neat, "q");
    c1.deq(&mut cluster.neat, "q");

    cluster.neat.heal(&p);
    cluster.settle(1000);

    let violations = check_queue(
        cluster.neat.history(),
        &[QueueExpectation {
            key: "q".into(),
            drained: None,
        }],
    );
    let timeline = cluster.neat.observe(&violations);
    GridOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

/// Terracotta #905/#906: values added on the minority side are lost; values
/// removed on the minority side reappear.
pub fn set_loss_and_reappearance(flaws: GridFlaws, seed: u64, record: bool) -> GridOutcome {
    let (mut cluster, a, b) = split_cluster(flaws, seed, record);
    cluster.settle(200);
    let c0 = cluster.client(0).via(a);
    let c1 = cluster.client(1).via(b);
    c0.set_add(&mut cluster.neat, "set", 10);
    cluster.settle(200);

    let minority = [a, cluster.clients[0]];
    let p = cluster
        .neat
        .partition_complete(&minority, &rest_of(&cluster.neat.world.node_ids(), &minority));
    cluster.settle(800);

    // Minority side: remove an old value and add a new one — both
    // acknowledged, both doomed.
    c0.set_remove(&mut cluster.neat, "set", 10);
    c0.set_add(&mut cluster.neat, "set", 20);
    // Majority side keeps its own addition.
    c1.set_add(&mut cluster.neat, "set", 30);

    cluster.neat.heal(&p);
    cluster.settle(1000);

    let st = majority_state(&cluster);
    let final_state = [(
        "set".to_string(),
        st.sets.get("set").cloned().unwrap_or_default(),
    )]
    .into_iter()
    .collect();
    let violations = check_set(cluster.neat.history(), &final_state);
    let timeline = cluster.neat.observe(&violations);
    GridOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

/// Hazelcast §4.4: a partial partition makes a replica promote itself;
/// on reconciliation the demoted side deletes its data and downloads from
/// the winner — which permanently fails mid-download. The data is gone.
pub fn demotion_wipe_data_loss(mut flaws: GridFlaws, seed: u64, record: bool) -> GridOutcome {
    // The merge path must run for the wipe to trigger.
    flaws.rejoin_after_heal = true;
    let mut cluster = GridCluster::build(3, 2, flaws, seed, record);
    cluster.settle(200);
    let c0 = cluster.client(0).via(cluster.servers[0]);
    c0.put(&mut cluster.neat, "k", 1);
    c0.put(&mut cluster.neat, "k2", 2);
    cluster.settle(300);

    // Partial partition: the primary s0 splits from {s1, s2}; clients
    // bridge. Both sides keep a copy; s1 promotes itself on side B.
    let s0 = cluster.servers[0];
    let others = [cluster.servers[1], cluster.servers[2]];
    let p = cluster.neat.partition_partial(&[s0], &others);
    cluster.settle(600);
    // Side B serves a write so its branch has newer operations.
    let c1 = cluster.client(1).via(cluster.servers[1]);
    c1.put(&mut cluster.neat, "k", 9);

    // Heal: side A's s0 sees the better branch, wipes, and schedules its
    // download — and the source side dies for good inside that window.
    cluster.neat.heal(&p);
    cluster.settle(150); // the offer arrives and s0 wipes
    cluster.neat.crash(&[cluster.servers[1], cluster.servers[2]]);
    cluster.settle(1000); // the download request goes nowhere

    // s0 is the only survivor; read the data back through it.
    let final_kv = cluster.state_of(s0).cache;
    let final_state: std::collections::BTreeMap<String, Option<u64>> = ["k", "k2"]
        .iter()
        .map(|k| (k.to_string(), final_kv.get(*k).copied()))
        .collect();
    let violations = neat::checkers::check_register(
        cluster.neat.history(),
        neat::checkers::RegisterSemantics::Strong,
        &final_state,
    );
    let timeline = cluster.neat.observe(&violations);
    GridOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

/// Finding 3: with the flawed membership, the two half-clusters persist
/// after the partition heals.
pub fn lasting_split(flaws: GridFlaws, seed: u64, record: bool) -> GridOutcome {
    let (mut cluster, a, _b) = split_cluster(flaws, seed, record);
    cluster.settle(200);

    let minority = [a, cluster.clients[0]];
    let p = cluster
        .neat
        .partition_complete(&minority, &rest_of(&cluster.neat.world.node_ids(), &minority));
    cluster.settle(1000);
    cluster.neat.heal(&p);
    cluster.settle(2000);

    let mut violations = Vec::new();
    let full = cluster.servers.len();
    let split: Vec<(NodeId, usize)> = cluster
        .servers
        .iter()
        .map(|&s| (s, cluster.neat.world.app(s).server().view().len()))
        .filter(|(_, n)| *n < full)
        .collect();
    if !split.is_empty() {
        violations.push(Violation::new(
            ViolationKind::Other,
            format!(
                "views still split after heal (lasting damage): {split:?}"
            ),
        ));
    }
    let timeline = cluster.neat.observe(&violations);
    GridOutcome {
        violations,
        trace: cluster.neat.world.trace().summary(),
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_semaphore_double_lock_when_flawed() {
        let out = semaphore_double_lock(GridFlaws::flawed(), 61, false);
        assert!(out.has(ViolationKind::DoubleLocking), "{:?}", out.violations);
    }

    #[test]
    fn fig5_clean_with_split_brain_protection() {
        let out = semaphore_double_lock(GridFlaws::fixed(), 61, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn reclaim_corrupts_semaphore_when_flawed() {
        let out = semaphore_reclaim_corruption(GridFlaws::flawed(), 63, false);
        assert!(out.has(ViolationKind::BrokenLock), "{:?}", out.violations);
    }

    #[test]
    fn no_reclaim_no_corruption_when_fixed() {
        let out = semaphore_reclaim_corruption(GridFlaws::fixed(), 63, false);
        assert!(
            !out.has(ViolationKind::BrokenLock),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn atomics_lose_increments_when_flawed() {
        let out = broken_atomics(GridFlaws::flawed(), 65, false);
        assert!(out.has(ViolationKind::DataLoss), "{:?}", out.violations);
    }

    #[test]
    fn atomics_exact_when_fixed() {
        let out = broken_atomics(GridFlaws::fixed(), 65, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn cache_serves_stale_reads_when_flawed() {
        let out = cache_stale_read(GridFlaws::flawed(), 67, false);
        assert!(out.has(ViolationKind::StaleRead), "{:?}", out.violations);
    }

    #[test]
    fn cache_clean_when_fixed() {
        let out = cache_stale_read(GridFlaws::fixed(), 67, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn queue_double_dequeues_when_flawed() {
        let out = queue_double_dequeue(GridFlaws::flawed(), 69, false);
        assert!(out.has(ViolationKind::DoubleDequeue), "{:?}", out.violations);
    }

    #[test]
    fn queue_clean_when_fixed() {
        let out = queue_double_dequeue(GridFlaws::fixed(), 69, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn sets_lose_and_resurrect_when_flawed() {
        let out = set_loss_and_reappearance(GridFlaws::flawed(), 71, false);
        assert!(out.has(ViolationKind::DataLoss), "{:?}", out.violations);
        assert!(
            out.has(ViolationKind::ReappearanceOfDeletedData),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn sets_clean_when_fixed() {
        let out = set_loss_and_reappearance(GridFlaws::fixed(), 71, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn hazelcast_demotion_wipe_loses_data_when_flawed() {
        let mut flaws = GridFlaws::flawed();
        flaws.wipe_before_download = true;
        let out = demotion_wipe_data_loss(flaws, 75, false);
        assert!(out.has(ViolationKind::DataLoss), "{:?}", out.violations);
    }

    #[test]
    fn atomic_adoption_keeps_data_when_fixed() {
        // Without the wipe flaw the merge is atomic: even with the same
        // crash, the survivor still holds a usable copy (possibly the
        // pre-merge one, which is a legal outcome for these writes).
        let out = demotion_wipe_data_loss(GridFlaws::flawed(), 75, false);
        assert!(!out.has(ViolationKind::DataLoss), "{:?}", out.violations);
    }

    #[test]
    fn split_persists_after_heal_when_flawed() {
        let out = lasting_split(GridFlaws::flawed(), 73, false);
        assert!(out.has(ViolationKind::Other), "{:?}", out.violations);
    }

    #[test]
    fn membership_heals_when_fixed() {
        let out = lasting_split(GridFlaws::fixed(), 73, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }
}
