//! Grid nodes: peer membership, failure detection, and op coordination.
//!
//! The membership layer is the heart of the reproduced failures: every node
//! pings every other member, and an unreachable member is **removed from
//! the view** — on *both* sides of a partition. Each side then keeps
//! operating with its own primary (the lowest id in its view), which is
//! exactly the "assumption that an unreachable node has crashed" the paper
//! blames for the whole Ignite/Hazelcast/Terracotta failure family (§6.4).
//!
//! Toggles ([`GridFlaws`]):
//!
//! - `split_brain_protection = false` — the flawed default: a minority view
//!   keeps serving. `true` is the Hazelcast/VoltDB technique the paper
//!   describes: a node that loses the majority pauses.
//! - `reclaim_unreachable_holders` — Ignite's semaphore behaviour: permits
//!   of an unreachable client are reclaimed; the healed client's release
//!   then corrupts the semaphore.
//! - `rejoin_after_heal = false` — the flawed default: once removed, a node
//!   never rejoins (the clusters stay separate after the partition heals —
//!   lasting damage, Finding 3).

use std::collections::BTreeMap;

use simnet::{Ctx, NodeId, Time, TimerId};

use crate::state::{GridOp, GridResp, GridState};

const TAG_PING: u64 = 51;
/// Quorum-commit deadline for the pending mutation: tag is `TAG_COMMIT + seq`.
const TAG_COMMIT: u64 = 300_000;
/// Download delay before a wiped node pulls the winner's state.
const TAG_DOWNLOAD: u64 = 61;

/// Flaw toggles for the grid membership layer.
#[derive(Clone, Copy, Debug)]
pub struct GridFlaws {
    /// Pause when the view drops below a majority of the full cluster.
    pub split_brain_protection: bool,
    /// Reclaim semaphore permits held by unreachable clients.
    pub reclaim_unreachable_holders: bool,
    /// Re-admit previously removed members when they answer again.
    pub rejoin_after_heal: bool,
    /// Reject semaphore releases from non-holders (`false` = the flawed
    /// blind apply that corrupts reclaimed semaphores).
    pub strict_semaphore_release: bool,
    /// Acknowledge mutations after only the local apply (`true` = the
    /// studied behaviour). The repaired baseline replicates to a majority
    /// of the FULL cluster before acknowledging, and rolls back on timeout.
    pub ack_without_quorum: bool,
    /// Hazelcast §4.4: a node that loses a state merge *deletes its local
    /// data first* and then downloads the winner's copy. If the winner
    /// permanently fails during the download window, the data is gone.
    pub wipe_before_download: bool,
}

impl GridFlaws {
    /// The systems as studied: no protection, reclaim on, no rejoin.
    pub fn flawed() -> Self {
        Self {
            split_brain_protection: false,
            reclaim_unreachable_holders: true,
            rejoin_after_heal: false,
            strict_semaphore_release: false,
            ack_without_quorum: true,
            wipe_before_download: false,
        }
    }

    /// The repaired baseline.
    pub fn fixed() -> Self {
        Self {
            split_brain_protection: true,
            reclaim_unreachable_holders: false,
            rejoin_after_heal: true,
            strict_semaphore_release: true,
            ack_without_quorum: false,
            wipe_before_download: false,
        }
    }
}

/// Grid wire protocol.
#[derive(Clone, Debug)]
pub enum GridMsg {
    Ping,
    Pong,
    /// Client → server.
    Req { op_id: u64, op: GridOp },
    /// Server → client.
    Resp { op_id: u64, resp: GridResp },
    /// Receiving server → primary.
    Forward {
        op_id: u64,
        client: NodeId,
        op: GridOp,
    },
    /// Primary → receiving server.
    ForwardResp {
        op_id: u64,
        client: NodeId,
        resp: GridResp,
    },
    /// Primary → view members: authoritative state. `commits` counts the
    /// quorum-committed mutations on the sender's branch. Ordinary offers
    /// are adopted only when strictly newer by `(commits, seq)`; heal-time
    /// `merge` offers additionally break exact ties by origin id so two
    /// equally ranked divergent branches still converge.
    StateSync {
        seq: u64,
        commits: u64,
        merge: bool,
        state: GridState,
    },
    /// Member → primary: adopted the state at `seq` (quorum-ack mode).
    StateSyncAck { seq: u64 },
    /// Pull-sync mode: "send me your full state".
    Pull,
}

/// One grid server.
pub struct GridNode {
    me: NodeId,
    all_servers: Vec<NodeId>,
    flaws: GridFlaws,
    /// Current membership view (servers only).
    view: Vec<NodeId>,
    state: GridState,
    state_seq: u64,
    /// Mutations that achieved a replication quorum on this state's branch.
    commit_count: u64,
    /// The node whose branch produced the current state (merge tiebreak).
    state_origin: NodeId,
    last_seen: BTreeMap<NodeId, Time>,
    /// Clients currently holding permits, for the reclaim flaw.
    tracked_holders: BTreeMap<NodeId, Time>,
    /// Quorum-ack mode: the one in-flight mutation awaiting replication.
    pending: Option<PendingMutation>,
    /// Pull-sync mode: the node we wiped for and will download from.
    downloading_from: Option<NodeId>,
    ping_interval: Time,
    suspect_after: Time,
}

/// A mutation applied locally but not yet acknowledged by a majority.
struct PendingMutation {
    seq: u64,
    reply: ReplyRoute,
    resp: GridResp,
    acks: usize,
    needed: usize,
}

/// Where the pending mutation's answer goes.
enum ReplyRoute {
    Client { client: NodeId, op_id: u64 },
    Forwarded { via: NodeId, client: NodeId, op_id: u64 },
}

impl GridNode {
    /// Creates a grid node.
    pub fn new(me: NodeId, all_servers: Vec<NodeId>, flaws: GridFlaws) -> Self {
        Self {
            me,
            view: all_servers.clone(),
            all_servers,
            flaws,
            state: GridState::default(),
            state_seq: 0,
            commit_count: 0,
            state_origin: me,
            last_seen: BTreeMap::new(),
            tracked_holders: BTreeMap::new(),
            pending: None,
            downloading_from: None,
            ping_interval: 100,
            suspect_after: 400,
        }
    }

    /// The current membership view.
    pub fn view(&self) -> &[NodeId] {
        &self.view
    }

    /// The grid state at this node.
    pub fn state(&self) -> &GridState {
        &self.state
    }

    /// The primary for every structure: the lowest id in this node's view.
    pub fn primary(&self) -> NodeId {
        self.view.iter().copied().min().unwrap_or(self.me)
    }

    /// `true` when split-brain protection has paused this node.
    pub fn paused(&self) -> bool {
        self.flaws.split_brain_protection && self.view.len() < self.all_servers.len() / 2 + 1
    }

    /// Boot.
    pub fn start(&mut self, ctx: &mut Ctx<'_, GridMsg>) {
        self.view = self.all_servers.clone();
        let now = ctx.now();
        for &s in &self.all_servers {
            self.last_seen.insert(s, now);
        }
        ctx.set_timer(self.ping_interval, TAG_PING);
    }

    /// Timer dispatch.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, GridMsg>, _t: TimerId, tag: u64) {
        if tag >= TAG_COMMIT {
            let seq = tag - TAG_COMMIT;
            if self.pending.as_ref().is_some_and(|p| p.seq == seq) {
                // No quorum: answer nothing. The outcome is genuinely
                // unknown — the mutation may still survive the merge if no
                // committed branch outranks it — so the client sees a
                // timeout, never a false failure (the repaired answer to
                // the paper's ack-then-fail pattern).
                self.pending = None;
                ctx.note("mutation unacknowledged: no replication quorum".to_string());
            }
            return;
        }
        if tag == TAG_DOWNLOAD {
            if let Some(src) = self.downloading_from.take() {
                ctx.note(format!("downloading state from {src}"));
                ctx.send(src, GridMsg::Pull);
            }
            return;
        }
        if tag != TAG_PING {
            return;
        }
        let now = ctx.now();
        // Suspect and remove unreachable members (both sides do this!).
        let suspects: Vec<NodeId> = self
            .view
            .iter()
            .copied()
            .filter(|&s| s != self.me)
            .filter(|s| now.saturating_sub(self.last_seen.get(s).copied().unwrap_or(0)) > self.suspect_after)
            .collect();
        for s in suspects {
            ctx.note(format!("removes unreachable {s} from the view"));
            self.view.retain(|&v| v != s);
        }
        // Reclaim permits of unreachable client holders (Ignite flaw).
        if self.flaws.reclaim_unreachable_holders && self.primary() == self.me {
            let dead: Vec<NodeId> = self
                .tracked_holders
                .iter()
                .filter(|(_, &t)| now.saturating_sub(t) > self.suspect_after)
                .map(|(c, _)| *c)
                .collect();
            for c in dead {
                let n = self.state.reclaim_permits(c);
                if n > 0 {
                    ctx.note(format!("RECLAIMS {n} permit(s) from unreachable client {c}"));
                    self.push_state(ctx);
                }
                self.tracked_holders.remove(&c);
            }
        }
        // Anti-entropy: the primary periodically re-offers its state so a
        // member that missed a sync (e.g., during a short glitch) catches
        // up; receivers only adopt strictly newer states.
        if self.primary() == self.me {
            self.push_state_no_bump(ctx, false);
        }
        // Ping everyone we should know about.
        let targets: Vec<NodeId> = if self.flaws.rejoin_after_heal {
            self.all_servers.clone()
        } else {
            self.view.clone()
        };
        for s in targets {
            if s != self.me {
                ctx.send(s, GridMsg::Ping);
            }
        }
        for c in self.tracked_holders.keys().copied().collect::<Vec<_>>() {
            ctx.send(c, GridMsg::Ping);
        }
        ctx.set_timer(self.ping_interval, TAG_PING);
    }

    fn mark_alive(&mut self, ctx: &mut Ctx<'_, GridMsg>, from: NodeId) {
        self.last_seen.insert(from, ctx.now());
        if self.tracked_holders.contains_key(&from) {
            self.tracked_holders.insert(from, ctx.now());
        }
        let is_server = self.all_servers.contains(&from);
        if is_server && !self.view.contains(&from) && self.flaws.rejoin_after_heal {
            ctx.note(format!("re-admits {from} to the view"));
            self.view.push(from);
            self.view.sort();
            // Converge after a merge: everyone re-offers its state at its
            // CURRENT sequence (no bump — sequence counts applied ops, so
            // the side that actually served writes wins the merge; exact
            // ties fall to the lower origin).
            self.push_state_no_bump(ctx, true);
        }
    }

    fn push_state(&mut self, ctx: &mut Ctx<'_, GridMsg>) {
        self.state_seq += 1;
        self.push_state_no_bump(ctx, false);
    }

    /// Re-offers the current state at the current sequence (anti-entropy);
    /// receivers ignore it unless it outranks what they hold. `merge`
    /// offers may additionally win exact-rank ties (heal-time convergence).
    fn push_state_no_bump(&mut self, ctx: &mut Ctx<'_, GridMsg>, merge: bool) {
        let seq = self.state_seq;
        let commits = self.commit_count;
        let state = self.state.clone();
        // Quorum mode offers to every server (a quorum may span nodes the
        // view has dropped); flawed mode only reaches its own view — the
        // studied behaviour.
        let peers: Vec<NodeId> = if self.flaws.ack_without_quorum {
            self.view.iter().copied().filter(|&s| s != self.me).collect()
        } else {
            self.all_servers
                .iter()
                .copied()
                .filter(|&s| s != self.me)
                .collect()
        };
        ctx.broadcast(
            &peers,
            GridMsg::StateSync {
                seq,
                commits,
                merge,
                state,
            },
        );
    }

    /// Message dispatch.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, GridMsg>, from: NodeId, msg: GridMsg) {
        match msg {
            GridMsg::Ping => {
                self.mark_alive(ctx, from);
                ctx.send(from, GridMsg::Pong);
            }
            GridMsg::Pong => self.mark_alive(ctx, from),
            GridMsg::Req { op_id, op } => {
                if self.paused() {
                    ctx.send(
                        from,
                        GridMsg::Resp {
                            op_id,
                            resp: GridResp::Fail,
                        },
                    );
                    return;
                }
                let primary = self.primary();
                if primary == self.me {
                    let route = ReplyRoute::Client { client: from, op_id };
                    self.handle_op(ctx, route, from, &op);
                } else {
                    ctx.send(
                        primary,
                        GridMsg::Forward {
                            op_id,
                            client: from,
                            op,
                        },
                    );
                }
            }
            GridMsg::Forward { op_id, client, op } => {
                if self.paused() || self.primary() != self.me {
                    ctx.send(
                        from,
                        GridMsg::ForwardResp {
                            op_id,
                            client,
                            resp: GridResp::Fail,
                        },
                    );
                    return;
                }
                let route = ReplyRoute::Forwarded {
                    via: from,
                    client,
                    op_id,
                };
                self.handle_op(ctx, route, client, &op);
            }
            GridMsg::ForwardResp { op_id, client, resp } => {
                ctx.send(client, GridMsg::Resp { op_id, resp });
            }
            GridMsg::StateSync {
                seq,
                commits,
                merge,
                state,
            } => {
                // Branch order: committed work dominates, then applied-op
                // count. Exact ties between divergent branches are broken
                // by origin id — but ONLY for heal-time merge offers: an
                // ordinary quorum offer must never displace an equal-rank
                // branch, or an acker could discard work it already
                // acknowledged.
                let strictly_newer =
                    (commits, seq) > (self.commit_count, self.state_seq);
                let tie_break = merge
                    && (commits, seq) == (self.commit_count, self.state_seq)
                    && from.0 < self.state_origin.0;
                if self.flaws.wipe_before_download && self.downloading_from.is_some() {
                    // Mid-download: the wiped node ignores pushed states and
                    // waits for its own download to come back (or not).
                    return;
                }
                if strictly_newer || tie_break {
                    if self.flaws.wipe_before_download && self.downloading_from.is_none() {
                        // Hazelcast §4.4: step down, DELETE the local copy,
                        // and only then start downloading the winner's.
                        ctx.note(format!(
                            "WIPES local data, will download from {from} (flaw)"
                        ));
                        self.state = GridState::default();
                        self.state_seq = 0;
                        self.commit_count = 0;
                        self.state_origin = self.me;
                        self.downloading_from = Some(from);
                        ctx.set_timer(300, TAG_DOWNLOAD);
                        return;
                    }
                    self.state_seq = seq;
                    self.commit_count = commits;
                    self.state_origin = from;
                    self.state = state;
                    self.downloading_from = None;
                    if !self.flaws.ack_without_quorum {
                        ctx.send(from, GridMsg::StateSyncAck { seq });
                    }
                }
            }
            GridMsg::Pull => {
                let seq = self.state_seq;
                let commits = self.commit_count;
                let state = self.state.clone();
                ctx.send(
                    from,
                    GridMsg::StateSync {
                        seq,
                        commits,
                        merge: true,
                        state,
                    },
                );
            }
            GridMsg::StateSyncAck { seq } => {
                let done = match &mut self.pending {
                    Some(p) if p.seq == seq => {
                        p.acks += 1;
                        p.acks >= p.needed
                    }
                    _ => false,
                };
                if done {
                    let p = self.pending.take().expect("checked"); // lint:allow(unwrap-expect)
                    self.commit_count += 1;
                    self.answer(ctx, &p.reply, p.resp);
                }
            }
            GridMsg::Resp { .. } => {}
        }
    }

    /// Sends the answer along the route it arrived by.
    fn answer(&self, ctx: &mut Ctx<'_, GridMsg>, route: &ReplyRoute, resp: GridResp) {
        match route {
            ReplyRoute::Client { client, op_id } => ctx.send(
                *client,
                GridMsg::Resp {
                    op_id: *op_id,
                    resp,
                },
            ),
            ReplyRoute::Forwarded { via, client, op_id } => ctx.send(
                *via,
                GridMsg::ForwardResp {
                    op_id: *op_id,
                    client: *client,
                    resp,
                },
            ),
        }
    }

    /// Applies one operation at the primary and answers per the ack mode.
    fn handle_op(
        &mut self,
        ctx: &mut Ctx<'_, GridMsg>,
        route: ReplyRoute,
        client: NodeId,
        op: &GridOp,
    ) {
        if !self.flaws.ack_without_quorum && self.pending.is_some() {
            // One quorum round at a time; refuse rather than reorder.
            self.answer(ctx, &route, GridResp::Fail);
            return;
        }
        let before = self.state.clone();
        let resp = self
            .state
            .apply(client, op, self.flaws.strict_semaphore_release);
        if matches!(op, GridOp::SemAcquire { .. }) && resp == GridResp::Ok {
            self.tracked_holders.insert(client, ctx.now());
        }
        if self.state == before {
            // Reads and refused mutations need no replication.
            self.answer(ctx, &route, resp);
            return;
        }
        self.state_seq += 1;
        self.state_origin = self.me;
        if self.flaws.ack_without_quorum {
            // The studied behaviour: acknowledge on the local apply.
            self.push_state_no_bump(ctx, false);
            self.answer(ctx, &route, resp);
        } else {
            let needed = self.all_servers.len() / 2;
            let seq = self.state_seq;
            self.pending = Some(PendingMutation {
                seq,
                reply: route,
                resp,
                acks: 0,
                needed,
            });
            self.push_state_no_bump(ctx, false);
            ctx.set_timer(400, TAG_COMMIT + seq);
        }
    }

    /// Crash loses the in-memory grid.
    pub fn on_crash(&mut self) {
        self.state = GridState::default();
        self.view.clear();
        self.tracked_holders.clear();
    }
}
