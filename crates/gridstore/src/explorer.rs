//! A [`TestTarget`] adapter for the data grid, giving the NEAT explorer
//! the full Table 8 event palette — including lock acquire/release and
//! enqueue/dequeue — against the flawed or protected membership layer.

use neat::{
    checkers::{check_counter, check_queue, check_semaphore, QueueExpectation},
    explore::{EventChoice, TestTarget},
    fault::PartitionSpec,
    gray::DegradeSpec,
    Violation,
};
use rand::{rngs::StdRng, Rng};
use simnet::{NodeId, Time};

use crate::{
    cluster::{GridClient, GridCluster},
    node::GridFlaws,
};

/// Drives a three-server, two-client grid deployment under
/// explorer-generated faults and events.
pub struct GridTarget {
    flaws: GridFlaws,
    cluster: Option<GridCluster>,
    next_val: u64,
}

impl GridTarget {
    /// Creates an adapter running under `flaws`.
    pub fn new(flaws: GridFlaws) -> Self {
        Self {
            flaws,
            cluster: None,
            next_val: 0,
        }
    }

    fn cluster(&mut self) -> &mut GridCluster {
        self.cluster.as_mut().expect("reset() builds the cluster") // lint:allow(unwrap-expect)
    }

    /// The current deployment, for post-mortem inspection.
    pub fn deployment(&self) -> Option<&GridCluster> {
        self.cluster.as_ref()
    }

    fn client(cluster: &GridCluster, rng: &mut StdRng) -> GridClient {
        let which = rng.gen_range(0..cluster.clients.len());
        // Clients stay attached to their home server, like real grid
        // clients; ops route to the primary internally.
        cluster.client(which)
    }
}

impl TestTarget for GridTarget {
    fn reset(&mut self, seed: u64, record: bool) {
        let mut cluster = GridCluster::build(3, 2, self.flaws, seed, record);
        cluster.settle(200);
        let c0 = cluster.client(0);
        c0.sem_create(&mut cluster.neat, "sem", 1);
        cluster.settle(200);
        self.cluster = Some(cluster);
        self.next_val = 0;
    }

    fn servers(&self) -> Vec<NodeId> {
        self.cluster.as_ref().expect("built").servers.clone() // lint:allow(unwrap-expect)
    }

    fn leader(&mut self) -> Option<NodeId> {
        // The structure primary is the lowest live member; surface it so
        // the guided strategy can isolate it.
        let cluster = self.cluster.as_ref().expect("built"); // lint:allow(unwrap-expect)
        let s = cluster
            .servers
            .iter()
            .copied()
            .find(|&s| cluster.neat.world.is_alive(s))?;
        Some(cluster.neat.world.app(s).server().primary())
    }

    fn supported_events(&self) -> Vec<EventChoice> {
        vec![
            EventChoice::Write,
            EventChoice::Read,
            EventChoice::Acquire,
            EventChoice::Release,
            EventChoice::Enqueue,
            EventChoice::Dequeue,
        ]
    }

    fn inject(&mut self, spec: &PartitionSpec) {
        let cluster = self.cluster();
        cluster.neat.partition(spec.clone());
        // Give the membership layer time to diverge (or pause), as the
        // paper's tests sleep past the detection period.
        cluster.settle(600);
    }

    fn degrade(&mut self, spec: &DegradeSpec) {
        let cluster = self.cluster();
        cluster.neat.degrade(spec.clone());
        cluster.settle(600);
    }

    fn crash(&mut self, nodes: &[NodeId]) {
        self.cluster().neat.crash(nodes);
    }

    fn restart(&mut self, nodes: &[NodeId]) {
        self.cluster().neat.restart(nodes);
    }

    fn advance(&mut self, ms: Time) {
        self.cluster().neat.sleep(ms);
    }

    fn heal_all(&mut self) {
        let neat = &mut self.cluster().neat;
        neat.heal_all();
        neat.heal_all_degrades();
    }

    fn apply_event(&mut self, ev: EventChoice, rng: &mut StdRng) {
        self.next_val += 1;
        let val = self.next_val;
        let cluster = self.cluster.as_mut().expect("built"); // lint:allow(unwrap-expect)
        let client = Self::client(cluster, rng);
        match ev {
            EventChoice::Write => {
                client.incr(&mut cluster.neat, "ctr", 1);
            }
            EventChoice::Read => {
                client.get(&mut cluster.neat, "k");
            }
            EventChoice::Acquire => {
                client.acquire(&mut cluster.neat, "sem");
            }
            EventChoice::Release => {
                client.release(&mut cluster.neat, "sem");
            }
            EventChoice::Enqueue => {
                client.enq(&mut cluster.neat, "q", val);
            }
            EventChoice::Dequeue => {
                client.deq(&mut cluster.neat, "q");
            }
            _ => {}
        }
    }

    fn finish_and_check(&mut self) -> Vec<Violation> {
        let cluster = self.cluster.as_mut().expect("built"); // lint:allow(unwrap-expect)
        cluster.neat.heal_all();
        cluster.neat.heal_all_degrades();
        // Bring crashed-but-never-restarted nodes back before judging.
        let servers = cluster.servers.clone();
        cluster.neat.restart(&servers);
        cluster.settle(2500);
        let mut violations = check_semaphore(cluster.neat.history(), "sem", 1);
        violations.extend(check_queue(
            cluster.neat.history(),
            &[QueueExpectation {
                key: "q".into(),
                drained: None,
            }],
        ));
        let final_ctr = cluster
            .state_of(cluster.servers[1])
            .atomics
            .get("ctr")
            .copied()
            .unwrap_or(0);
        violations.extend(check_counter(cluster.neat.history(), "ctr", 0, final_ctr));
        violations
    }

    fn timeline(&mut self) -> neat::obs::Timeline {
        self.cluster().neat.timeline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat::explore::{explore, Strategy};

    #[test]
    fn guided_exploration_breaks_the_flawed_grid() {
        let mut target = GridTarget::new(GridFlaws::flawed());
        let report = explore(&mut target, &Strategy::findings_guided(), 15, 31);
        assert!(
            report.trials_with_violation > 0,
            "guided exploration should hit the membership flaws: {report:?}"
        );
    }

    #[test]
    fn protected_grid_survives_guided_exploration() {
        let mut target = GridTarget::new(GridFlaws::fixed());
        let report = explore(&mut target, &Strategy::findings_guided(), 15, 31);
        assert_eq!(
            report.trials_with_violation, 0,
            "the protected grid must stay clean: {report:?}"
        );
    }
}
