//! The replicated data-grid state: cache, atomics, semaphores, locks,
//! queues, and sets — the structure families NEAT tested in Ignite,
//! Hazelcast, and Terracotta (Table 15).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use simnet::NodeId;

/// A counting semaphore's replicated state.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SemState {
    /// Total permits.
    pub capacity: u64,
    /// Current grants (one entry per held permit).
    pub granted: Vec<NodeId>,
    /// Releases applied without a matching grant — a corrupted semaphore
    /// (the Ignite reclaim failure).
    pub extra_releases: u64,
}

impl SemState {
    /// Permits currently available.
    pub fn available(&self) -> u64 {
        self.capacity + self.extra_releases - self.granted.len() as u64
    }

    /// A semaphore is corrupted when more permits exist than its capacity.
    pub fn corrupted(&self) -> bool {
        self.extra_releases > 0
    }
}

/// One client/admin operation on the grid.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GridOp {
    Put { key: String, val: u64 },
    Get { key: String },
    Remove { key: String },
    Incr { key: String, by: u64 },
    Cas { key: String, expect: u64, new: u64 },
    SemCreate { key: String, permits: u64 },
    SemAcquire { key: String },
    SemRelease { key: String },
    Enq { key: String, val: u64 },
    Deq { key: String },
    SetAdd { key: String, val: u64 },
    SetRemove { key: String, val: u64 },
    SetRead { key: String },
}

/// The result of a grid operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GridResp {
    Ok,
    Fail,
    Value(Option<u64>),
    Values(Vec<u64>),
}

/// The fully replicated grid state.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GridState {
    pub cache: BTreeMap<String, u64>,
    pub atomics: BTreeMap<String, u64>,
    pub semaphores: BTreeMap<String, SemState>,
    pub queues: BTreeMap<String, VecDeque<u64>>,
    pub sets: BTreeMap<String, BTreeSet<u64>>,
}

impl GridState {
    /// Applies `op` on behalf of `client`, returning the response.
    ///
    /// `strict_release` controls unmatched semaphore releases: `true`
    /// rejects them (the repaired behaviour); `false` applies them blindly,
    /// which is how a reclaimed holder's late release corrupts the
    /// semaphore in Ignite.
    pub fn apply(&mut self, client: NodeId, op: &GridOp, strict_release: bool) -> GridResp {
        match op {
            GridOp::Put { key, val } => {
                self.cache.insert(key.clone(), *val);
                GridResp::Ok
            }
            GridOp::Get { key } => GridResp::Value(self.cache.get(key).copied()),
            GridOp::Remove { key } => {
                self.cache.remove(key);
                GridResp::Ok
            }
            GridOp::Incr { key, by } => {
                let v = self.atomics.entry(key.clone()).or_insert(0);
                *v += by;
                GridResp::Value(Some(*v))
            }
            GridOp::Cas { key, expect, new } => {
                let v = self.atomics.entry(key.clone()).or_insert(0);
                if *v == *expect {
                    *v = *new;
                    GridResp::Ok
                } else {
                    GridResp::Fail
                }
            }
            GridOp::SemCreate { key, permits } => {
                self.semaphores.entry(key.clone()).or_insert(SemState {
                    capacity: *permits,
                    ..SemState::default()
                });
                GridResp::Ok
            }
            GridOp::SemAcquire { key } => match self.semaphores.get_mut(key) {
                Some(s) if s.available() > 0 => {
                    s.granted.push(client);
                    GridResp::Ok
                }
                _ => GridResp::Fail,
            },
            GridOp::SemRelease { key } => match self.semaphores.get_mut(key) {
                Some(s) => {
                    if let Some(pos) = s.granted.iter().position(|&g| g == client) {
                        s.granted.remove(pos);
                        GridResp::Ok
                    } else if strict_release {
                        GridResp::Fail
                    } else {
                        // Releasing a permit the grid no longer thinks the
                        // client holds: the semaphore is now corrupted.
                        s.extra_releases += 1;
                        GridResp::Ok
                    }
                }
                None => GridResp::Fail,
            },
            GridOp::Enq { key, val } => {
                self.queues.entry(key.clone()).or_default().push_back(*val);
                GridResp::Ok
            }
            GridOp::Deq { key } => {
                GridResp::Value(self.queues.entry(key.clone()).or_default().pop_front())
            }
            GridOp::SetAdd { key, val } => {
                self.sets.entry(key.clone()).or_default().insert(*val);
                GridResp::Ok
            }
            GridOp::SetRemove { key, val } => {
                self.sets.entry(key.clone()).or_default().remove(val);
                GridResp::Ok
            }
            GridOp::SetRead { key } => GridResp::Values(
                self.sets
                    .get(key)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default(),
            ),
        }
    }

    /// Frees every permit held by `holder` (the Ignite reclaim behaviour
    /// for unreachable clients).
    pub fn reclaim_permits(&mut self, holder: NodeId) -> usize {
        let mut reclaimed = 0;
        for s in self.semaphores.values_mut() {
            let before = s.granted.len();
            s.granted.retain(|&g| g != holder);
            reclaimed += before - s.granted.len();
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(n: usize) -> NodeId {
        NodeId(n)
    }

    #[test]
    fn cache_put_get_remove() {
        let mut st = GridState::default();
        st.apply(client(1), &GridOp::Put { key: "k".into(), val: 5 }, false);
        assert_eq!(
            st.apply(client(1), &GridOp::Get { key: "k".into() }, false),
            GridResp::Value(Some(5))
        );
        st.apply(client(1), &GridOp::Remove { key: "k".into() }, false);
        assert_eq!(
            st.apply(client(1), &GridOp::Get { key: "k".into() }, false),
            GridResp::Value(None)
        );
    }

    #[test]
    fn atomics_incr_and_cas() {
        let mut st = GridState::default();
        assert_eq!(
            st.apply(client(1), &GridOp::Incr { key: "c".into(), by: 2 }, false),
            GridResp::Value(Some(2))
        );
        assert_eq!(
            st.apply(client(1), &GridOp::Cas { key: "c".into(), expect: 2, new: 9 }, false),
            GridResp::Ok
        );
        assert_eq!(
            st.apply(client(1), &GridOp::Cas { key: "c".into(), expect: 2, new: 1 }, false),
            GridResp::Fail
        );
    }

    #[test]
    fn semaphore_grant_and_exhaust() {
        let mut st = GridState::default();
        st.apply(client(0), &GridOp::SemCreate { key: "s".into(), permits: 1 }, false);
        assert_eq!(
            st.apply(client(1), &GridOp::SemAcquire { key: "s".into() }, false),
            GridResp::Ok
        );
        assert_eq!(
            st.apply(client(2), &GridOp::SemAcquire { key: "s".into() }, false),
            GridResp::Fail
        );
        assert_eq!(
            st.apply(client(1), &GridOp::SemRelease { key: "s".into() }, false),
            GridResp::Ok
        );
        assert_eq!(
            st.apply(client(2), &GridOp::SemAcquire { key: "s".into() }, false),
            GridResp::Ok
        );
    }

    #[test]
    fn strict_release_refuses_non_holders() {
        let mut st = GridState::default();
        st.apply(client(0), &GridOp::SemCreate { key: "s".into(), permits: 1 }, true);
        assert_eq!(
            st.apply(client(1), &GridOp::SemRelease { key: "s".into() }, true),
            GridResp::Fail
        );
        assert!(!st.semaphores["s"].corrupted());
    }

    #[test]
    fn unmatched_release_corrupts() {
        let mut st = GridState::default();
        st.apply(client(0), &GridOp::SemCreate { key: "s".into(), permits: 1 }, false);
        st.apply(client(1), &GridOp::SemRelease { key: "s".into() }, false);
        let s = &st.semaphores["s"];
        assert!(s.corrupted());
        assert_eq!(s.available(), 2, "more permits than capacity");
    }

    #[test]
    fn reclaim_frees_holder_permits() {
        let mut st = GridState::default();
        st.apply(client(0), &GridOp::SemCreate { key: "s".into(), permits: 2 }, false);
        st.apply(client(1), &GridOp::SemAcquire { key: "s".into() }, false);
        st.apply(client(1), &GridOp::SemAcquire { key: "s".into() }, false);
        assert_eq!(st.reclaim_permits(client(1)), 2);
        assert_eq!(st.semaphores["s"].available(), 2);
    }

    #[test]
    fn queue_fifo() {
        let mut st = GridState::default();
        st.apply(client(1), &GridOp::Enq { key: "q".into(), val: 1 }, false);
        st.apply(client(1), &GridOp::Enq { key: "q".into(), val: 2 }, false);
        assert_eq!(
            st.apply(client(2), &GridOp::Deq { key: "q".into() }, false),
            GridResp::Value(Some(1))
        );
        assert_eq!(
            st.apply(client(2), &GridOp::Deq { key: "q".into() }, false),
            GridResp::Value(Some(2))
        );
        assert_eq!(
            st.apply(client(2), &GridOp::Deq { key: "q".into() }, false),
            GridResp::Value(None)
        );
    }

    #[test]
    fn set_add_remove_read() {
        let mut st = GridState::default();
        st.apply(client(1), &GridOp::SetAdd { key: "s".into(), val: 7 }, false);
        st.apply(client(1), &GridOp::SetAdd { key: "s".into(), val: 8 }, false);
        st.apply(client(1), &GridOp::SetRemove { key: "s".into(), val: 7 }, false);
        assert_eq!(
            st.apply(client(2), &GridOp::SetRead { key: "s".into() }, false),
            GridResp::Values(vec![8])
        );
    }
}
