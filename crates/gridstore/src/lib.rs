//! An in-memory data grid (Ignite/Hazelcast/Terracotta-like) with the
//! membership flaw behind the paper's largest NEAT failure family.
//!
//! Every structure — cache, atomics, semaphores, queues, sets — is
//! replicated across a peer membership where **both sides of a partition
//! remove each other from the view** and keep serving (§6.4: "the
//! assumption that an unreachable node has crashed"). [`GridFlaws`] toggles
//! split-brain protection (the Hazelcast/VoltDB minority pause), the Ignite
//! permit-reclaim behaviour, and whether members rejoin after healing.

pub mod cluster;
pub mod explored;
pub mod explorer;
pub mod node;
pub mod scenarios;
pub mod state;

pub use cluster::{GridClient, GridClientProc, GridCluster, GridProc};
pub use explorer::GridTarget;
pub use node::{GridFlaws, GridMsg, GridNode};
pub use state::{GridOp, GridResp, GridState, SemState};
