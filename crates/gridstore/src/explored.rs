//! Delta-minimized regression schedules for the data grid.
//!
//! Mined by the coverage-guided explorer against the flawed membership
//! layer and shrunk to a 1-minimal nemesis sequence with
//! `neat::explore::minimize::ddmin`. Notably the surviving schedule
//! *requires* the mid-trial heal (satellite: heal as a schedulable
//! event): the write only lands on stale state because the silenced
//! primary rejoins before the client issues it.

use neat::{
    explore::{run_schedule, EventChoice, SchedulePlan, ScheduleStep, TestTarget},
    fault::{rest_of, PartitionSpec},
    Violation,
};
use simnet::NodeId;

use crate::{explorer::GridTarget, node::GridFlaws};

/// Op seed of the single surviving write, verbatim from the mined trial.
pub const WRITE_SEED: u64 = 18_007_421_219_739_211_395;

/// The 1-minimal schedule: simplex-silence the structure primary (the
/// rest of the grid cannot reach it), heal, then issue one counter
/// increment. The primary missed the membership churn, so the increment
/// applies to a replica set that diverged while it was deaf — surfacing
/// as [`DataLoss`] when the checker consolidates histories.
///
/// [`DataLoss`]: neat::ViolationKind::DataLoss
pub fn simplex_heal_write_plan(servers: &[NodeId], primary: NodeId) -> SchedulePlan {
    SchedulePlan {
        steps: vec![
            ScheduleStep::Partition(PartitionSpec::Simplex {
                src: rest_of(servers, &[primary]),
                dst: vec![primary],
            }),
            ScheduleStep::Heal,
            ScheduleStep::Client(EventChoice::Write, WRITE_SEED),
        ],
    }
}

/// Replays the minimized schedule against a grid running `flaws` at
/// `seed`, returning the campaign triple (violations, rendered plan,
/// timeline).
pub fn explored_simplex_heal_write(
    flaws: GridFlaws,
    seed: u64,
    record: bool,
) -> (Vec<Violation>, String, neat::obs::Timeline) {
    let mut target = GridTarget::new(flaws);
    target.reset(seed, record);
    let servers = target.servers();
    let primary = target.leader().unwrap_or(servers[0]);
    let plan = simplex_heal_write_plan(&servers, primary);
    let violations = run_schedule(&mut target, &plan);
    let rendered = plan.render();
    (violations, rendered, target.timeline())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat::explore::minimize::is_one_minimal;
    use neat::ViolationKind;

    #[test]
    fn replay_reproduces_data_loss_on_the_flawed_arm() {
        for seed in [8u64, 42] {
            let (violations, plan, _) =
                explored_simplex_heal_write(GridFlaws::flawed(), seed, false);
            assert!(
                violations.iter().any(|v| v.kind == ViolationKind::DataLoss),
                "seed {seed}: {plan} produced {violations:?}"
            );
        }
    }

    #[test]
    fn replay_is_clean_on_the_protected_grid() {
        for seed in [8u64, 42] {
            let (violations, plan, _) =
                explored_simplex_heal_write(GridFlaws::fixed(), seed, false);
            assert!(
                violations.is_empty(),
                "seed {seed}: {plan} produced {violations:?}"
            );
        }
    }

    #[test]
    fn the_baked_schedule_is_one_minimal_and_needs_the_heal() {
        let mut probe = GridTarget::new(GridFlaws::flawed());
        probe.reset(8, false);
        let servers = probe.servers();
        let primary = probe.leader().unwrap_or(servers[0]);
        let plan = simplex_heal_write_plan(&servers, primary);
        assert!(plan.heals_mid_schedule(), "the heal is part of the repro");
        let mut target = GridTarget::new(GridFlaws::flawed());
        assert!(is_one_minimal(&plan.steps, |steps| {
            target.reset(8, false);
            run_schedule(&mut target, &SchedulePlan {
                steps: steps.to_vec()
            })
            .iter()
            .any(|v| v.kind == ViolationKind::DataLoss)
        }));
    }
}
