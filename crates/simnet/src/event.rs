//! Event queue primitives: virtual time, timers, and the ordered event heap.

use std::{
    cmp::Reverse,
    collections::BinaryHeap,
};

use crate::NodeId;

/// Virtual time in milliseconds since the start of the simulation.
pub type Time = u64;

/// Identifier of a pending timer, returned by [`crate::Ctx::set_timer`].
///
/// Timer ids are unique for the lifetime of a [`crate::World`]; cancelling an
/// already fired or cancelled timer is a harmless no-op.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// What a scheduled event does when it fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` from `from` to `to`, unless a block rule or a crash
    /// intercepts it at delivery time.
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// Fire timer `id` with `tag` at node `node`, unless cancelled or the
    /// node crashed since it was set (`epoch` mismatch).
    Timer {
        node: NodeId,
        id: TimerId,
        tag: u64,
        epoch: u64,
    },
}

/// An entry in the event heap, totally ordered by `(time, seq)`.
#[derive(Debug)]
pub(crate) struct Event<M> {
    pub time: Time,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A min-heap of events ordered by `(time, seq)`.
///
/// The sequence number makes the order total and therefore the simulation
/// deterministic: two events scheduled for the same instant fire in the order
/// they were scheduled.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Reverse<Event<M>>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` to fire at `time`, returning its sequence number.
    pub fn push(&mut self, time: Time, kind: EventKind<M>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
        seq
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(to: usize) -> EventKind<u32> {
        EventKind::Deliver {
            from: NodeId(0),
            to: NodeId(to),
            msg: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, deliver(3));
        q.push(10, deliver(1));
        q.push(20, deliver(2));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, deliver(i));
        }
        let mut prev = None;
        while let Some(e) = q.pop() {
            if let Some(p) = prev {
                assert!(e.seq > p, "same-time events must pop in insertion order");
            }
            prev = Some(e.seq);
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(42, deliver(0));
        q.push(7, deliver(1));
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.pop().unwrap().time, 7);
        assert_eq!(q.peek_time(), Some(42));
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, deliver(0));
        q.push(2, deliver(1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
