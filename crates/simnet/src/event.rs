//! Event queue primitives: virtual time, timers, and the ordered queue.
//!
//! The queue is split by event class (PR 5 split key from payload; this
//! goes further):
//!
//! - **Deliveries** keep the small-key [`BinaryHeap`]: a three-word
//!   `HeapKey` orders them while the message payload lives out-of-line
//!   in a generation-checked arena (`crate::arena`), recycled through a
//!   free list.
//! - **Timers** move to a hierarchical timer wheel (`crate::wheel`):
//!   amortised `O(1)` push/pop instead of `O(log n)` sift work, with
//!   entries stored inline in wheel buckets (a timer is six words —
//!   nothing to arena).
//!
//! `EventQueue::pop` merges the two by comparing their `(time, seq)`
//! heads, so the global total order — and therefore every audit
//! fingerprint — is exactly what the single-heap queue produced. The
//! equivalence tests at the bottom drive random schedules through this
//! queue and a frozen copy of the old one and assert identical pop
//! streams.

use std::{cmp::Reverse, collections::BinaryHeap};

use crate::arena::{Arena, Handle};
use crate::wheel::{TimerEntry, TimerWheel};
use crate::NodeId;

/// Virtual time in milliseconds since the start of the simulation.
pub type Time = u64;

/// Identifier of a pending timer, returned by [`crate::Ctx::set_timer`].
///
/// Timer ids are unique for the lifetime of a [`crate::World`]; cancelling an
/// already fired or cancelled timer is a harmless no-op.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// What a scheduled event does when it fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` from `from` to `to`, unless a block rule or a crash
    /// intercepts it at delivery time.
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// Fire timer `id` with `tag` at node `node`, unless cancelled or the
    /// node crashed since it was set (`epoch` mismatch).
    Timer {
        node: NodeId,
        id: TimerId,
        tag: u64,
        epoch: u64,
    },
}

/// A scheduled event handed back by [`EventQueue::pop`].
#[derive(Debug)]
pub(crate) struct Event<M> {
    pub time: Time,
    pub seq: u64,
    pub kind: EventKind<M>,
}

/// The delivery-heap entry: ordering key plus the arena handle holding the
/// payload. Only `(time, seq)` participate in the order — sifting moves
/// three words instead of a full message, which for fat message enums is
/// the bulk of the heap traffic.
#[derive(Clone, Copy, Debug)]
struct HeapKey {
    time: Time,
    seq: u64,
    handle: Handle,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A queue of events totally ordered by `(time, seq)`.
///
/// The sequence number makes the order total and therefore the simulation
/// deterministic: two events scheduled for the same instant fire in the
/// order they were scheduled — including across the delivery/timer split,
/// because [`pop`](Self::pop) compares the heads of both structures by the
/// same key before committing to either.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Reverse<HeapKey>>,
    payloads: Arena<(NodeId, NodeId, M)>,
    wheel: TimerWheel,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    #[cfg(test)]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue pre-sized for `cap` concurrently pending deliveries
    /// — seeded from a scenario family's historical high-water mark
    /// (`events_scheduled`) so repeated arms skip the warm-up growth.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            payloads: Arena::with_capacity(cap),
            wheel: TimerWheel::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` to fire at `time`, returning its sequence number.
    pub fn push(&mut self, time: Time, kind: EventKind<M>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        match kind {
            EventKind::Deliver { from, to, msg } => {
                let handle = self.payloads.insert((from, to, msg));
                self.heap.push(Reverse(HeapKey { time, seq, handle }));
            }
            EventKind::Timer {
                node,
                id,
                tag,
                epoch,
            } => self.wheel.push(TimerEntry {
                time,
                seq,
                node,
                id,
                tag,
                epoch,
            }),
        }
        seq
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        let deliver = self.heap.peek().map(|Reverse(k)| (k.time, k.seq));
        let take_deliver = match (deliver, self.wheel.peek()) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            // Seqs are unique across both structures, so this never ties.
            (Some(d), Some(t)) => d < t,
        };
        if take_deliver {
            let Reverse(key) = self
                .heap
                .pop()
                // Invariant: the head we just peeked is still there.
                .expect("peeked delivery vanished"); // lint:allow(unwrap-expect)
            let (from, to, msg) = self.payloads.take(key.handle);
            Some(Event {
                time: key.time,
                seq: key.seq,
                kind: EventKind::Deliver { from, to, msg },
            })
        } else {
            let entry = self
                .wheel
                .pop()
                // Invariant: the wheel head we just peeked is still there.
                .expect("peeked timer vanished"); // lint:allow(unwrap-expect)
            Some(Event {
                time: entry.time,
                seq: entry.seq,
                kind: EventKind::Timer {
                    node: entry.node,
                    id: entry.id,
                    tag: entry.tag,
                    epoch: entry.epoch,
                },
            })
        }
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        let deliver = self.heap.peek().map(|Reverse(k)| k.time);
        let timer = self.wheel.peek().map(|(t, _)| t);
        match (deliver, timer) {
            (Some(d), Some(t)) => Some(d.min(t)),
            (d, t) => d.or(t),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        // The heap and the payload arena are always the same size; count
        // via the arena so its bookkeeping stays exercised in prod code.
        self.payloads.len() + self.wheel.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled on this queue — the deterministic
    /// volume proxy the perf gate pins (equals the next sequence number).
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }
}

/// The pre-wheel queue, frozen for differential testing: one comparison
/// heap over a payload slab, exactly as shipped by PR 5. The equivalence
/// suite below replays random schedules through both implementations.
#[cfg(test)]
mod legacy {
    use super::{Event, EventKind, Time};
    use std::{cmp::Reverse, collections::BinaryHeap};

    #[derive(Clone, Copy, Debug)]
    struct HeapKey {
        time: Time,
        seq: u64,
        slot: u32,
    }

    impl PartialEq for HeapKey {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl Eq for HeapKey {}
    impl PartialOrd for HeapKey {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapKey {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.time, self.seq).cmp(&(other.time, other.seq))
        }
    }

    pub(super) struct LegacyEventQueue<M> {
        heap: BinaryHeap<Reverse<HeapKey>>,
        slots: Vec<Option<EventKind<M>>>,
        free: Vec<u32>,
        next_seq: u64,
    }

    impl<M> LegacyEventQueue<M> {
        pub fn new() -> Self {
            Self {
                heap: BinaryHeap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                next_seq: 0,
            }
        }

        pub fn push(&mut self, time: Time, kind: EventKind<M>) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            let slot = match self.free.pop() {
                Some(slot) => {
                    self.slots[slot as usize] = Some(kind);
                    slot
                }
                None => {
                    let slot = self.slots.len() as u32;
                    self.slots.push(Some(kind));
                    slot
                }
            };
            self.heap.push(Reverse(HeapKey { time, seq, slot }));
            seq
        }

        pub fn pop(&mut self) -> Option<Event<M>> {
            let Reverse(key) = self.heap.pop()?;
            let kind = self.slots[key.slot as usize]
                .take()
                .expect("heap key addressed an empty slot");
            self.free.push(key.slot);
            Some(Event {
                time: key.time,
                seq: key.seq,
                kind,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(to: usize) -> EventKind<u32> {
        EventKind::Deliver {
            from: NodeId(0),
            to: NodeId(to),
            msg: 0,
        }
    }

    fn timer(node: usize, id: u64) -> EventKind<u32> {
        EventKind::Timer {
            node: NodeId(node),
            id: TimerId(id),
            tag: id,
            epoch: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, deliver(3));
        q.push(10, deliver(1));
        q.push(20, deliver(2));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order_across_classes() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            // Alternate deliveries and timers at the same instant: the
            // merged pop must still follow scheduling order exactly.
            if i % 2 == 0 {
                q.push(5, deliver(i));
            } else {
                q.push(5, timer(i, i as u64));
            }
        }
        let mut prev = None;
        while let Some(e) = q.pop() {
            if let Some(p) = prev {
                assert!(e.seq > p, "same-time events must pop in insertion order");
            }
            prev = Some(e.seq);
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(42, deliver(0));
        q.push(7, timer(1, 0));
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.pop().unwrap().time, 7);
        assert_eq!(q.peek_time(), Some(42));
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, deliver(0));
        q.push(2, timer(1, 0));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn payload_arena_is_recycled_through_the_free_list() {
        let mut q = EventQueue::new();
        // Interleave pushes and pops: the arena must never grow past the
        // high-water mark of concurrently pending deliveries.
        for round in 0..50u64 {
            q.push(round, deliver(0));
            q.push(round, deliver(1));
            q.pop().expect("pending");
        }
        assert!(
            q.payloads.len() <= 51,
            "arena holds more payloads than pending deliveries: {}",
            q.payloads.len()
        );
        while q.pop().is_some() {}
        assert!(q.is_empty());
        assert_eq!(q.payloads.len(), 0);
    }

    #[test]
    fn payloads_survive_the_round_trip() {
        let mut q = EventQueue::new();
        q.push(
            9,
            EventKind::Deliver {
                from: NodeId(4),
                to: NodeId(5),
                msg: 1234u32,
            },
        );
        q.push(
            3,
            EventKind::Timer {
                node: NodeId(6),
                id: TimerId(77),
                tag: 8,
                epoch: 2,
            },
        );
        match q.pop().expect("timer first").kind {
            EventKind::Timer { node, id, tag, epoch } => {
                assert_eq!((node, id, tag, epoch), (NodeId(6), TimerId(77), 8, 2));
            }
            other => panic!("expected timer, got {other:?}"),
        }
        match q.pop().expect("deliver second").kind {
            EventKind::Deliver { from, to, msg } => {
                assert_eq!((from, to, msg), (NodeId(4), NodeId(5), 1234));
            }
            other => panic!("expected deliver, got {other:?}"),
        }
        assert_eq!(q.scheduled(), 2);
    }

    /// The satellite equivalence harness: random schedules of timers,
    /// deliveries, cancels, and crashes through the wheel/arena queue and
    /// the frozen PR 5 queue, asserting identical pop order and identical
    /// streamed fingerprints of the *surviving* (uncancelled, epoch-live)
    /// events — the exact filter `World::step` applies.
    mod equivalence {
        use super::super::legacy::LegacyEventQueue;
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        const NODES: usize = 4;

        /// FNV-1a, the same fold the audit fingerprints stream through.
        fn fnv(hash: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *hash ^= b as u64;
                *hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        }

        /// One generated op: `(kind, delay, node, knob)`.
        type Op = (u8, u64, u8, u8);

        /// Replays `ops` through both queues, world-filtering the merged
        /// pop streams identically, and returns the two fingerprints.
        fn replay(ops: &[Op]) -> (u64, u64) {
            let mut new_q: EventQueue<u64> = EventQueue::new();
            let mut old_q: LegacyEventQueue<u64> = LegacyEventQueue::new();
            let mut now: Time = 0;
            let mut next_timer = 0u64;
            let mut next_msg = 0u64;
            let mut issued: Vec<TimerId> = Vec::new();
            let mut cancelled: BTreeSet<TimerId> = BTreeSet::new();
            let mut epochs = [0u64; NODES];
            let (mut new_hash, mut old_hash) = (0xcbf2_9ce4_8422_2325u64, 0xcbf2_9ce4_8422_2325u64);

            let pop_both = |new_q: &mut EventQueue<u64>,
                                old_q: &mut LegacyEventQueue<u64>,
                                now: &mut Time,
                                cancelled: &BTreeSet<TimerId>,
                                epochs: &[u64; NODES],
                                new_hash: &mut u64,
                                old_hash: &mut u64|
             -> bool {
                let a = new_q.pop();
                let b = old_q.pop();
                let a_render = format!("{a:#?}");
                let b_render = format!("{b:#?}");
                assert_eq!(a_render, b_render, "pop streams diverged at t={now}");
                let Some(event) = a else { return false };
                *now = event.time;
                // The world's liveness filter: cancelled timers and
                // timers from a pre-crash epoch are skipped.
                let survives = match event.kind {
                    EventKind::Timer { node, id, epoch, .. } => {
                        !cancelled.contains(&id) && epochs[node.0] == epoch
                    }
                    EventKind::Deliver { .. } => true,
                };
                if survives {
                    fnv(new_hash, a_render.as_bytes());
                    fnv(old_hash, b_render.as_bytes());
                }
                true
            };

            for &(kind, delay, node, knob) in ops {
                let node = node as usize % NODES;
                match kind % 5 {
                    0 => {
                        // A delivery `delay` ms out.
                        let k = |msg| EventKind::Deliver {
                            from: NodeId(node),
                            to: NodeId((node + 1) % NODES),
                            msg,
                        };
                        new_q.push(now + delay, k(next_msg));
                        old_q.push(now + delay, k(next_msg));
                        next_msg += 1;
                    }
                    1 => {
                        // A timer; every 13th delay is stretched past the
                        // wheel horizon to exercise the overflow list.
                        let time = if delay % 13 == 0 {
                            now + delay * 1_000_000_000
                        } else {
                            now + delay
                        };
                        let id = TimerId(next_timer);
                        next_timer += 1;
                        issued.push(id);
                        let k = || EventKind::Timer {
                            node: NodeId(node),
                            id,
                            tag: knob as u64,
                            epoch: epochs[node],
                        };
                        new_q.push(time, k());
                        old_q.push(time, k());
                    }
                    2 => {
                        // Cancel a previously issued timer.
                        if !issued.is_empty() {
                            cancelled.insert(issued[knob as usize % issued.len()]);
                        }
                    }
                    3 => {
                        // Crash: bump the node's epoch so its pending
                        // timers die on pop.
                        epochs[node] += 1;
                    }
                    _ => {
                        // Advance the clock by popping a burst.
                        for _ in 0..=(knob % 4) {
                            if !pop_both(
                                &mut new_q,
                                &mut old_q,
                                &mut now,
                                &cancelled,
                                &epochs,
                                &mut new_hash,
                                &mut old_hash,
                            ) {
                                break;
                            }
                        }
                    }
                }
            }
            // Drain to empty: the tails must agree too.
            while pop_both(
                &mut new_q,
                &mut old_q,
                &mut now,
                &cancelled,
                &epochs,
                &mut new_hash,
                &mut old_hash,
            ) {}
            (new_hash, old_hash)
        }

        proptest! {
            #[test]
            fn wheel_arena_queue_matches_frozen_heap_queue(
                ops in vec((0u8..5, 0u64..5000, 0u8..4, 0u8..8), 0..400)
            ) {
                let (new_hash, old_hash) = replay(&ops);
                prop_assert_eq!(new_hash, old_hash);
            }
        }

        #[test]
        fn dense_same_instant_schedules_agree() {
            // All five op kinds at delay 0: maximal tie-breaking stress.
            let ops: Vec<Op> = (0..200)
                .map(|i| ((i % 5) as u8, 0, (i % 3) as u8, (i % 8) as u8))
                .collect();
            let (new_hash, old_hash) = replay(&ops);
            assert_eq!(new_hash, old_hash);
        }
    }
}
