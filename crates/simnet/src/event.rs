//! Event queue primitives: virtual time, timers, and the ordered event heap.

use std::{
    cmp::Reverse,
    collections::BinaryHeap,
};

use crate::NodeId;

/// Virtual time in milliseconds since the start of the simulation.
pub type Time = u64;

/// Identifier of a pending timer, returned by [`crate::Ctx::set_timer`].
///
/// Timer ids are unique for the lifetime of a [`crate::World`]; cancelling an
/// already fired or cancelled timer is a harmless no-op.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// What a scheduled event does when it fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` from `from` to `to`, unless a block rule or a crash
    /// intercepts it at delivery time.
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// Fire timer `id` with `tag` at node `node`, unless cancelled or the
    /// node crashed since it was set (`epoch` mismatch).
    Timer {
        node: NodeId,
        id: TimerId,
        tag: u64,
        epoch: u64,
    },
}

/// A scheduled event handed back by [`EventQueue::pop`].
#[derive(Debug)]
pub(crate) struct Event<M> {
    pub time: Time,
    pub seq: u64,
    pub kind: EventKind<M>,
}

/// The heap entry: ordering key plus the slab slot holding the payload.
/// Only `(time, seq)` participate in the order — sifting moves three words
/// instead of a full `Event<M>`, which for fat message enums is the bulk
/// of the heap traffic.
#[derive(Clone, Copy, Debug)]
struct HeapKey {
    time: Time,
    seq: u64,
    slot: u32,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A min-heap of events ordered by `(time, seq)`.
///
/// The sequence number makes the order total and therefore the simulation
/// deterministic: two events scheduled for the same instant fire in the order
/// they were scheduled.
///
/// Internally the queue is split in two: a [`BinaryHeap`] of small
/// [`HeapKey`]s that carries only the ordering key, and a slab of payloads
/// (`slots`) addressed by the key's `slot` index. Freed slots are recycled
/// through a free list, so steady-state simulation allocates nothing per
/// event once the high-water mark is reached.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Reverse<HeapKey>>,
    slots: Vec<Option<EventKind<M>>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` to fire at `time`, returning its sequence number.
    pub fn push(&mut self, time: Time, kind: EventKind<M>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(kind);
                slot
            }
            None => {
                let slot = self.slots.len() as u32;
                self.slots.push(Some(kind));
                slot
            }
        };
        self.heap.push(Reverse(HeapKey { time, seq, slot }));
        seq
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        let Reverse(key) = self.heap.pop()?;
        let kind = self.slots[key.slot as usize]
            .take()
            // Invariant: a slot stays occupied from push to the pop of its
            // key — the free list only holds vacated slots.
            .expect("heap key addressed an empty slot"); // lint:allow(unwrap-expect)
        self.free.push(key.slot);
        Some(Event {
            time: key.time,
            seq: key.seq,
            kind,
        })
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(k)| k.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled on this queue — the deterministic
    /// volume proxy the perf gate pins (equals the next sequence number).
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(to: usize) -> EventKind<u32> {
        EventKind::Deliver {
            from: NodeId(0),
            to: NodeId(to),
            msg: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, deliver(3));
        q.push(10, deliver(1));
        q.push(20, deliver(2));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, deliver(i));
        }
        let mut prev = None;
        while let Some(e) = q.pop() {
            if let Some(p) = prev {
                assert!(e.seq > p, "same-time events must pop in insertion order");
            }
            prev = Some(e.seq);
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(42, deliver(0));
        q.push(7, deliver(1));
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.pop().unwrap().time, 7);
        assert_eq!(q.peek_time(), Some(42));
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, deliver(0));
        q.push(2, deliver(1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn slots_are_recycled_through_the_free_list() {
        let mut q = EventQueue::new();
        // Interleave pushes and pops: the slab must never grow past the
        // high-water mark of concurrently pending events.
        for round in 0..50u64 {
            q.push(round, deliver(0));
            q.push(round, deliver(1));
            q.pop().expect("pending");
        }
        assert!(
            q.slots.len() <= 51,
            "slab grew past the pending high-water mark: {} slots",
            q.slots.len()
        );
        while q.pop().is_some() {}
        assert!(q.is_empty());
        assert_eq!(q.free.len(), q.slots.len());
    }

    #[test]
    fn payloads_survive_the_slab_round_trip() {
        let mut q = EventQueue::new();
        q.push(
            9,
            EventKind::Deliver {
                from: NodeId(4),
                to: NodeId(5),
                msg: 1234u32,
            },
        );
        q.push(
            3,
            EventKind::Timer {
                node: NodeId(6),
                id: TimerId(77),
                tag: 8,
                epoch: 2,
            },
        );
        match q.pop().expect("timer first").kind {
            EventKind::Timer { node, id, tag, epoch } => {
                assert_eq!((node, id, tag, epoch), (NodeId(6), TimerId(77), 8, 2));
            }
            other => panic!("expected timer, got {other:?}"),
        }
        match q.pop().expect("deliver second").kind {
            EventKind::Deliver { from, to, msg } => {
                assert_eq!((from, to, msg), (NodeId(4), NodeId(5), 1234));
            }
            other => panic!("expected deliver, got {other:?}"),
        }
        assert_eq!(q.scheduled(), 2);
    }
}
