//! A deterministic hierarchical timer wheel over virtual time.
//!
//! Timers are the bulk of queue traffic in timer-heavy workloads, and a
//! comparison heap pays `O(log n)` sift work per timer. This wheel makes
//! push amortised `O(1)`: six levels of 64 power-of-two buckets cover any
//! delay below 2^36 virtual milliseconds, and a timer lands in the bucket
//! whose span matches the highest bit in which its deadline differs from
//! the wheel's `elapsed` floor (the scheme tokio's wheel uses). Farther
//! deadlines sit in an `overflow` list that is pulled back in (rebased)
//! when the wheel drains.
//!
//! Determinism contract: pops come out in exactly `(time, seq)` order —
//! the same total order the old `BinaryHeap` produced — so simulations
//! are byte-identical before and after the swap. Two rules keep that
//! order exact:
//!
//! 1. **`elapsed` advances only inside [`TimerWheel::pop`]**, never on
//!    peek. A pop is driven by the world clock reaching the popped time,
//!    so every later push is `>= elapsed`; advancing eagerly on peek
//!    would strand later pushes that land between `now` and the peeked
//!    deadline in already-passed buckets.
//! 2. **[`TimerWheel::peek`] is served from an exact cached minimum**
//!    (`next`), updated on push by comparison and recomputed after each
//!    pop by a bitmask scan — the first occupied bucket on the lowest
//!    occupied level always contains the global minimum, because a
//!    level-k bucket's span lies strictly before every occupied
//!    higher-level bucket's span.
//!
//! Level-0 buckets hold a single absolute time and are kept sorted by
//! `seq`: direct pushes arrive in ascending seq order (sequence numbers
//! are issued monotonically and a direct push can only target the
//! *current* 64 ms window), and a cascade sorts its drained entries once
//! before redistributing. Popping is therefore a cursor bump — no scan.
//! Higher-level buckets stay unordered; they are only touched once per
//! cascade. Steady state allocates nothing once every visited bucket has
//! reached its high-water capacity.

use crate::event::{Time, TimerId};
use crate::NodeId;

/// log2 of the number of slots per level.
const SLOT_BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels; level `k` buckets span `64^k` milliseconds each.
const LEVELS: usize = 6;

/// One pending timer, stored inline in its bucket (timers carry no
/// message payload, so there is nothing to arena out-of-line).
#[derive(Clone, Copy, Debug)]
pub(crate) struct TimerEntry {
    pub time: Time,
    pub seq: u64,
    pub node: NodeId,
    pub id: TimerId,
    pub tag: u64,
    pub epoch: u64,
}

/// The hierarchical wheel. See the module docs for the invariants.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    /// `LEVELS x SLOTS` buckets; the fixed-size array keeps every
    /// `[level][slot & 63]` access provably in range (no bounds checks
    /// on the hot path).
    buckets: Box<[[Vec<TimerEntry>; SLOTS]; LEVELS]>,
    /// Per-level occupancy bitmask: bit `s` set iff bucket `s` has
    /// unconsumed entries. Bits below the level's current slot are
    /// always clear.
    occupied: [u64; LEVELS],
    /// Per-slot consumption cursor for level 0: entries below the cursor
    /// are already popped. The bucket is cleared (and the cursor reset)
    /// when the last entry goes.
    heads: [u32; SLOTS],
    /// Timers beyond the wheel's 2^36 ms horizon, rebased in when the
    /// wheel itself drains.
    overflow: Vec<TimerEntry>,
    /// The wheel's time floor: every stored entry (and every future
    /// push) has `time >= elapsed`. Advanced only by `pop`.
    elapsed: Time,
    /// Exact `(time, seq)` of the earliest pending entry.
    next: Option<(Time, u64)>,
    len: usize,
}

impl TimerWheel {
    pub fn new() -> Self {
        Self {
            buckets: Box::new(std::array::from_fn(|_| std::array::from_fn(|_| Vec::new()))),
            occupied: [0; LEVELS],
            heads: [0; SLOTS],
            overflow: Vec::new(),
            elapsed: 0,
            next: None,
            len: 0,
        }
    }

    /// Number of pending timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `(time, seq)` of the earliest pending timer, if any. Exact and
    /// non-mutating: served from the cached minimum.
    pub fn peek(&self) -> Option<(Time, u64)> {
        self.next
    }

    /// Schedules `entry`. Requires `entry.time >= self.elapsed`, which the
    /// world guarantees: timers are set at `now + delay` and `elapsed`
    /// never runs ahead of the last popped (≤ current) time.
    pub fn push(&mut self, entry: TimerEntry) {
        debug_assert!(entry.time >= self.elapsed, "timer scheduled before the wheel floor");
        if self
            .next
            .map_or(true, |best| (entry.time, entry.seq) < best)
        {
            self.next = Some((entry.time, entry.seq));
        }
        self.len += 1;
        self.place(entry);
    }

    /// Removes and returns the earliest pending timer.
    pub fn pop(&mut self) -> Option<TimerEntry> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Level 0 first: its earliest occupied bucket holds the
            // global minimum at a single absolute time.
            let cur0 = (self.elapsed as usize) & (SLOTS - 1);
            let mask0 = (self.occupied[0] >> cur0) << cur0;
            if mask0 != 0 {
                let slot = mask0.trailing_zeros() as usize & (SLOTS - 1);
                let bucket = &mut self.buckets[0][slot];
                // The bucket is sorted by seq (see the module docs), so
                // the minimum is at the cursor and the runner-up right
                // behind it — popping is a cursor bump, no scan.
                let head = self.heads[slot] as usize;
                let entry = bucket[head];
                self.elapsed = entry.time;
                self.len -= 1;
                debug_assert_eq!(self.next, Some((entry.time, entry.seq)));
                if head + 1 == bucket.len() {
                    bucket.clear();
                    self.heads[slot] = 0;
                    self.occupied[0] &= !(1u64 << slot);
                    self.recompute_next();
                } else {
                    self.heads[slot] = (head + 1) as u32;
                    self.next = Some((entry.time, bucket[head + 1].seq));
                }
                return Some(entry);
            }
            if self.cascade_earliest() {
                continue;
            }
            self.rebase_overflow();
        }
    }

    /// Drains the earliest occupied bucket on the lowest occupied level
    /// `>= 1` into lower levels, advancing `elapsed` to the bucket's
    /// start. Returns `false` when every level is empty.
    fn cascade_earliest(&mut self) -> bool {
        for level in 1..LEVELS {
            let cur = ((self.elapsed >> (SLOT_BITS * level)) as usize) & (SLOTS - 1);
            let mask = (self.occupied[level] >> cur) << cur;
            if mask == 0 {
                continue;
            }
            let slot = mask.trailing_zeros() as usize & (SLOTS - 1);
            self.occupied[level] &= !(1u64 << slot);
            // The bucket's span starts at the level's window base plus
            // `slot` spans; every entry inside differs from that start
            // only below bit `SLOT_BITS * level`, so it redistributes
            // strictly downward.
            let window = 1u64 << (SLOT_BITS * (level + 1));
            let base = self.elapsed & !(window - 1);
            self.elapsed = base + ((slot as u64) << (SLOT_BITS * level));
            let mut drained = std::mem::take(&mut self.buckets[level][slot]);
            // Redistribute in seq order so level-0 targets receive
            // ascending seqs and stay sorted by pure appends.
            drained.sort_unstable_by_key(|e| e.seq);
            for entry in drained.drain(..) {
                self.place(entry);
            }
            // Hand the (now empty) vec back so the bucket keeps its
            // capacity for the next pass around the wheel.
            self.buckets[level][slot] = drained;
            return true;
        }
        false
    }

    /// Every level is empty but timers remain: move the floor to the
    /// earliest overflow deadline and pull newly-in-range entries in.
    fn rebase_overflow(&mut self) {
        debug_assert!(!self.overflow.is_empty(), "wheel len out of sync");
        let mut min_time = Time::MAX;
        for entry in &self.overflow {
            min_time = min_time.min(entry.time);
        }
        self.elapsed = min_time;
        let mut i = 0;
        while i < self.overflow.len() {
            if level_of(self.overflow[i].time, self.elapsed) < LEVELS {
                let entry = self.overflow.swap_remove(i);
                self.place(entry);
            } else {
                i += 1;
            }
        }
    }

    /// Files `entry` into the bucket selected by the highest bit in which
    /// its deadline differs from `elapsed`, or into `overflow` when that
    /// bit is beyond the wheel's horizon.
    fn place(&mut self, entry: TimerEntry) {
        let level = level_of(entry.time, self.elapsed);
        if level >= LEVELS {
            self.overflow.push(entry);
            return;
        }
        let slot = ((entry.time >> (SLOT_BITS * level)) as usize) & (SLOTS - 1);
        self.occupied[level] |= 1u64 << slot;
        let bucket = &mut self.buckets[level][slot];
        if level == 0 {
            // Keep level-0 buckets sorted by seq. Direct pushes and
            // sorted cascades always append; only an overflow rebase can
            // arrive out of order (its entries move in storage order).
            if bucket.last().is_some_and(|last| entry.seq < last.seq) {
                let pos = bucket.partition_point(|e| e.seq < entry.seq);
                debug_assert!(pos >= self.heads[slot] as usize);
                bucket.insert(pos, entry);
                return;
            }
        }
        bucket.push(entry);
    }

    /// Rebuilds the cached minimum after a pop: the first occupied bucket
    /// on the lowest occupied level contains the global minimum (its span
    /// precedes every other occupied bucket's span); failing that, the
    /// minimum lives in `overflow` (whose deadlines are all beyond every
    /// in-wheel deadline).
    fn recompute_next(&mut self) {
        if self.len == 0 {
            self.next = None;
            return;
        }
        for level in 0..LEVELS {
            let cur = ((self.elapsed >> (SLOT_BITS * level)) as usize) & (SLOTS - 1);
            let mask = (self.occupied[level] >> cur) << cur;
            if mask == 0 {
                continue;
            }
            let slot = mask.trailing_zeros() as usize & (SLOTS - 1);
            let bucket = &self.buckets[level][slot];
            if level == 0 {
                // Sorted bucket: the cursor element is the minimum.
                let e = &bucket[self.heads[slot] as usize];
                self.next = Some((e.time, e.seq));
                return;
            }
            let mut best = (bucket[0].time, bucket[0].seq);
            for entry in &bucket[1..] {
                if (entry.time, entry.seq) < best {
                    best = (entry.time, entry.seq);
                }
            }
            self.next = Some(best);
            return;
        }
        let mut best: Option<(Time, u64)> = None;
        for entry in &self.overflow {
            if best.map_or(true, |b| (entry.time, entry.seq) < b) {
                best = Some((entry.time, entry.seq));
            }
        }
        debug_assert!(best.is_some(), "wheel len out of sync with storage");
        self.next = best;
    }
}

/// The level whose bucket span matches the highest differing bit between
/// `time` and the floor; `>= LEVELS` means beyond the wheel's horizon.
fn level_of(time: Time, elapsed: Time) -> usize {
    let diff = time ^ elapsed;
    if diff == 0 {
        0
    } else {
        (63 - diff.leading_zeros() as usize) / SLOT_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(time: Time, seq: u64) -> TimerEntry {
        TimerEntry {
            time,
            seq,
            node: NodeId(0),
            id: TimerId(seq),
            tag: 0,
            epoch: 0,
        }
    }

    fn drain(wheel: &mut TimerWheel) -> Vec<(Time, u64)> {
        std::iter::from_fn(|| wheel.pop().map(|e| (e.time, e.seq))).collect()
    }

    #[test]
    fn pops_in_time_then_seq_order_across_levels() {
        let mut w = TimerWheel::new();
        // Same-bucket, cross-bucket, cross-level, and overflow deadlines.
        let times = [5, 5, 63, 64, 100, 4095, 4096, 1 << 20, (1 << 36) + 7];
        for (seq, &t) in times.iter().enumerate() {
            w.push(entry(t, seq as u64));
        }
        let mut expect: Vec<(Time, u64)> =
            times.iter().enumerate().map(|(s, &t)| (t, s as u64)).collect();
        expect.sort();
        assert_eq!(drain(&mut w), expect);
    }

    #[test]
    fn peek_always_matches_the_next_pop() {
        let mut w = TimerWheel::new();
        for seq in 0..200u64 {
            // A deterministic scatter of deadlines, including collisions.
            w.push(entry((seq * 37) % 150, seq));
        }
        while let Some(peeked) = w.peek() {
            let popped = w.pop().map(|e| (e.time, e.seq));
            assert_eq!(popped, Some(peeked));
        }
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn late_pushes_between_now_and_a_far_deadline_stay_ordered() {
        let mut w = TimerWheel::new();
        w.push(entry(5000, 0)); // far: would sit at level >= 2
        w.push(entry(3, 1));
        assert_eq!(w.pop().map(|e| e.seq), Some(1));
        // now == 3; the regression this guards: an eager cascade toward
        // 5000 would have advanced the floor past 30.
        w.push(entry(30, 2));
        w.push(entry(4000, 3));
        assert_eq!(drain(&mut w), vec![(30, 2), (4000, 3), (5000, 0)]);
    }

    #[test]
    fn overflow_rebases_when_the_wheel_drains() {
        let mut w = TimerWheel::new();
        let far = (1u64 << 36) + 123;
        w.push(entry(far, 0));
        w.push(entry(far + 50, 1));
        w.push(entry(1, 2));
        assert_eq!(drain(&mut w), vec![(1, 2), (far, 0), (far + 50, 1)]);
    }

    #[test]
    fn interleaved_push_pop_matches_a_reference_heap() {
        use std::collections::BinaryHeap;
        let mut w = TimerWheel::new();
        let mut reference: BinaryHeap<std::cmp::Reverse<(Time, u64)>> = BinaryHeap::new();
        let mut now: Time = 0;
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        for seq in 0..5000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let delay = state >> 52; // 0..4096
            w.push(entry(now + delay, seq));
            reference.push(std::cmp::Reverse((now + delay, seq)));
            if state & 1 == 0 {
                let got = w.pop().map(|e| (e.time, e.seq));
                let want = reference.pop().map(|r| r.0);
                assert_eq!(got, want);
                if let Some((t, _)) = got {
                    now = t;
                }
            }
        }
        while let Some(std::cmp::Reverse(want)) = reference.pop() {
            assert_eq!(w.pop().map(|e| (e.time, e.seq)), Some(want));
        }
        assert_eq!(w.pop().map(|e| (e.time, e.seq)), None);
    }
}
