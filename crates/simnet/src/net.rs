//! The network fabric: latency model, directional block rules, and
//! per-link degrade rules.
//!
//! Network partitions are expressed as *block rules*: sets of directed
//! `(src, dst)` pairs whose traffic is dropped. Rules stack — a pair is
//! blocked while at least one installed rule covers it — mirroring how the
//! paper's NEAT partitioner installs OpenFlow drop rules at a higher priority
//! than the learning-switch rules and removes them on heal.
//!
//! All three fault types of the paper's Figure 1 reduce to block rules:
//!
//! - **complete partition**: block both directions between two groups that
//!   together cover the cluster;
//! - **partial partition**: block both directions between two groups while a
//!   third group stays connected to both;
//! - **simplex partition**: block one direction only.
//!
//! *Gray failures* — the flaky, congested, or half-broken links the paper
//! traces most partial partitions back to (§2.1) — are expressed as
//! [`DegradeRule`]s: per-directed-pair loss probability, extra latency,
//! jitter, and duplication probability, optionally flapping on a fixed
//! period. Degrade rules stack like block rules and draw exclusively from
//! the world's seeded RNG, so a degraded run is as reproducible as a
//! clean one.

use std::collections::{BTreeMap, BTreeSet};

use rand::{rngs::StdRng, Rng};

use crate::{event::Time, NodeId};

/// Identifier of an installed block rule, used to remove it on heal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockRuleId(pub u64);

/// Identifier of an installed degrade rule, used to remove it on heal.
///
/// Degrade rules live in their own id namespace: a `DegradeRuleId` never
/// aliases a [`BlockRuleId`], so forensic tooling can pair install/remove
/// events per namespace without ambiguity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DegradeRuleId(pub u64);

/// A gray-failure profile applied to a set of directed pairs: the link is
/// *degraded*, not severed.
///
/// Every probabilistic knob draws from the world's seeded RNG, and a knob
/// set to zero draws nothing at all — a rule whose knobs are all zero is
/// byte-identical to no rule, which the property tests pin.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct DegradeRule {
    /// Probability in `[0, 1]` that a message on a covered pair is lost.
    // lint:allow(float-nondet) -- probability knob compared against a single RNG draw, never accumulated
    pub loss: f64,
    /// Fixed extra one-way latency added to every covered message, in
    /// milliseconds — the congested-link cause of §2.1.
    pub extra_latency: Time,
    /// Maximum extra *random* latency; drawn uniformly from `0..=jitter`
    /// per message when non-zero.
    pub jitter: Time,
    /// Probability in `[0, 1]` that a covered message is delivered twice —
    /// the NIC/driver duplication gray failure. The duplicate is scheduled
    /// independently (its own latency draw) and is never re-duplicated.
    // lint:allow(float-nondet) -- probability knob compared against a single RNG draw, never accumulated
    pub dup_probability: f64,
    /// When non-zero, the rule *flaps*: it only applies while
    /// `(now / flap_period) % 2 == 0`, so the link alternates between
    /// degraded and healthy windows of `flap_period` milliseconds. Zero
    /// means always active.
    pub flap_period: Time,
}

impl DegradeRule {
    /// A rule that drops covered messages with probability `loss`.
    pub fn lossy(loss: f64) -> Self {
        Self {
            loss,
            ..Self::default()
        }
    }

    /// A rule that duplicates covered messages with probability `p`.
    pub fn duplicating(p: f64) -> Self {
        Self {
            dup_probability: p,
            ..Self::default()
        }
    }

    /// A rule that slows covered messages by `extra_latency` plus up to
    /// `jitter` of random delay.
    pub fn slow(extra_latency: Time, jitter: Time) -> Self {
        Self {
            extra_latency,
            jitter,
            ..Self::default()
        }
    }

    /// Makes this rule flap with the given period (builder style).
    pub fn flapping(mut self, period: Time) -> Self {
        self.flap_period = period;
        self
    }

    /// Whether the rule applies at virtual time `now` (flap phase check).
    pub fn active_at(&self, now: Time) -> bool {
        self.flap_period == 0 || (now / self.flap_period) % 2 == 0
    }
}

/// Latency model for every link in the fabric.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Fixed one-way latency applied to every message, in milliseconds.
    pub base_latency: Time,
    /// Maximum extra latency; the actual jitter is drawn uniformly from
    /// `0..=jitter` using the world's seeded RNG.
    pub jitter: Time,
    /// When `true` (the default), messages on the same directed link are
    /// delivered in send order, like a TCP connection. When `false`, jitter
    /// may reorder them, like UDP.
    pub fifo: bool,
    /// Probability in `[0, 1]` that any message — on *any* link — is
    /// silently dropped. This is a global background-noise knob; it cannot
    /// model the paper's flaky-link cause of partial partitions (§2.1),
    /// because every pair degrades equally. For targeted per-link loss,
    /// latency, or duplication install a [`DegradeRule`] instead.
    /// Deterministic given the world seed.
    // lint:allow(float-nondet) -- probability knob compared against a single RNG draw, never accumulated
    pub drop_probability: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            base_latency: 1,
            jitter: 1,
            fifo: true,
            drop_probability: 0.0,
        }
    }
}

/// The network fabric: computes delivery delays and answers "is this directed
/// pair currently blocked?".
#[derive(Debug)]
pub struct Net {
    config: LinkConfig,
    rules: BTreeMap<BlockRuleId, BTreeSet<(NodeId, NodeId)>>,
    next_rule: u64,
    degrades: BTreeMap<DegradeRuleId, (BTreeSet<(NodeId, NodeId)>, DegradeRule)>,
    next_degrade: u64,
    /// Last scheduled delivery time per directed link, for FIFO
    /// enforcement: a dense src-major matrix (`src * n + dst`) grown on
    /// first contact with a node id, so the per-send lookup is one index
    /// instead of a `BTreeMap` walk on the hottest path in the simulator.
    link_last: Vec<Time>,
    /// Current side length of the `link_last` matrix.
    link_nodes: usize,
}

impl Net {
    pub(crate) fn new(config: LinkConfig) -> Self {
        Self {
            config,
            rules: BTreeMap::new(),
            next_rule: 0,
            degrades: BTreeMap::new(),
            next_degrade: 0,
            link_last: Vec::new(),
            link_nodes: 0,
        }
    }

    /// Grows the FIFO matrix to cover node ids up to `max_id`, preserving
    /// the recorded per-link times (a fresh link starts at 0, exactly the
    /// value the old map's `or_insert(0)` supplied).
    fn grow_link_matrix(&mut self, max_id: usize) {
        let n = max_id + 1;
        let old_n = self.link_nodes;
        let mut grown = vec![0; n * n];
        for src in 0..old_n {
            for dst in 0..old_n {
                grown[src * n + dst] = self.link_last[src * old_n + dst];
            }
        }
        self.link_last = grown;
        self.link_nodes = n;
    }

    /// Installs a rule dropping traffic for every directed pair in `pairs`.
    pub fn block_pairs(&mut self, pairs: BTreeSet<(NodeId, NodeId)>) -> BlockRuleId {
        let id = BlockRuleId(self.next_rule);
        self.next_rule += 1;
        self.rules.insert(id, pairs);
        id
    }

    /// Removes a previously installed rule. Removing an unknown or already
    /// removed rule is a no-op, so healing twice is harmless.
    pub fn unblock(&mut self, id: BlockRuleId) {
        self.rules.remove(&id);
    }

    /// Returns `true` while any installed rule blocks `src → dst`.
    pub fn is_blocked(&self, src: NodeId, dst: NodeId) -> bool {
        self.rules.values().any(|set| set.contains(&(src, dst)))
    }

    /// Number of currently installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Installs a degrade rule over every directed pair in `pairs`.
    pub fn degrade_pairs(
        &mut self,
        pairs: BTreeSet<(NodeId, NodeId)>,
        rule: DegradeRule,
    ) -> DegradeRuleId {
        let id = DegradeRuleId(self.next_degrade);
        self.next_degrade += 1;
        self.degrades.insert(id, (pairs, rule));
        id
    }

    /// Removes a previously installed degrade rule. Removing an unknown or
    /// already removed rule is a no-op, so healing twice is harmless.
    pub fn undegrade(&mut self, id: DegradeRuleId) {
        self.degrades.remove(&id);
    }

    /// Returns `true` while any installed degrade rule covers `src → dst`
    /// (regardless of flap phase — an installed flapping rule counts).
    pub fn is_degraded(&self, src: NodeId, dst: NodeId) -> bool {
        self.degrades
            .values()
            .any(|(set, _)| set.contains(&(src, dst)))
    }

    /// Number of currently installed degrade rules.
    pub fn degrade_count(&self) -> usize {
        self.degrades.len()
    }

    /// Degrade rules covering `src → dst` that apply at `now`, in id order.
    fn active_degrades(
        &self,
        now: Time,
        src: NodeId,
        dst: NodeId,
    ) -> impl Iterator<Item = &DegradeRule> {
        self.degrades.values().filter_map(move |(set, rule)| {
            (set.contains(&(src, dst)) && rule.active_at(now)).then_some(rule)
        })
    }

    /// Draws whether a message is lost to link flakiness.
    pub(crate) fn flaky_drop(&self, rng: &mut StdRng) -> bool {
        self.config.drop_probability > 0.0 && rng.gen_bool(self.config.drop_probability.min(1.0))
    }

    /// Draws whether a message on `src → dst` is lost to an active degrade
    /// rule. Every active lossy rule draws once; zero-loss rules draw
    /// nothing.
    pub(crate) fn degrade_drop(
        &self,
        now: Time,
        src: NodeId,
        dst: NodeId,
        rng: &mut StdRng,
    ) -> bool {
        let mut dropped = false;
        for rule in self.active_degrades(now, src, dst) {
            if rule.loss > 0.0 && rng.gen_bool(rule.loss.min(1.0)) {
                dropped = true;
            }
        }
        dropped
    }

    /// Draws whether a message on `src → dst` is duplicated by an active
    /// degrade rule. Zero-probability rules draw nothing.
    pub(crate) fn degrade_dup(
        &self,
        now: Time,
        src: NodeId,
        dst: NodeId,
        rng: &mut StdRng,
    ) -> bool {
        let mut dup = false;
        for rule in self.active_degrades(now, src, dst) {
            if rule.dup_probability > 0.0 && rng.gen_bool(rule.dup_probability.min(1.0)) {
                dup = true;
            }
        }
        dup
    }

    /// Extra delay from active degrade rules on `src → dst`. Zero-jitter
    /// rules draw nothing from the RNG.
    fn degrade_delay(&self, now: Time, src: NodeId, dst: NodeId, rng: &mut StdRng) -> Time {
        let mut extra = 0;
        for rule in self.active_degrades(now, src, dst) {
            extra += rule.extra_latency;
            if rule.jitter > 0 {
                extra += rng.gen_range(0..=rule.jitter);
            }
        }
        extra
    }

    /// Computes the delivery time for a message sent now on `src → dst`.
    pub(crate) fn delivery_time(&mut self, now: Time, src: NodeId, dst: NodeId, rng: &mut StdRng) -> Time {
        let jitter = if self.config.jitter == 0 {
            0
        } else {
            rng.gen_range(0..=self.config.jitter)
        };
        let extra = self.degrade_delay(now, src, dst, rng);
        let mut at = now + self.config.base_latency + jitter + extra;
        if self.config.fifo {
            if src.0 >= self.link_nodes || dst.0 >= self.link_nodes {
                self.grow_link_matrix(src.0.max(dst.0));
            }
            let last = &mut self.link_last[src.0 * self.link_nodes + dst.0];
            if at < *last {
                at = *last;
            }
            *last = at;
        }
        at
    }

    /// Renders the connectivity matrix as a string of `1`/`0`/`~` rows, used
    /// by the Figure 1 reproduction. Row `i`, column `j` is `1` when `i → j`
    /// traffic flows cleanly, `0` when a block rule severs it, and `~` when a
    /// degrade rule covers it (lossy, not severed — a block rule wins over a
    /// degrade rule). The diagonal is always `1`.
    pub fn connectivity_matrix(&self, n: usize) -> String {
        let mut out = String::new();
        for i in 0..n {
            for j in 0..n {
                let glyph = if i == j {
                    '1'
                } else if self.is_blocked(NodeId(i), NodeId(j)) {
                    '0'
                } else if self.is_degraded(NodeId(i), NodeId(j)) {
                    '~'
                } else {
                    '1'
                };
                out.push(glyph);
                if j + 1 < n {
                    out.push(' ');
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Builds the set of directed pairs for a bidirectional split of `a` from `b`.
pub fn bidirectional_pairs(a: &[NodeId], b: &[NodeId]) -> BTreeSet<(NodeId, NodeId)> {
    let mut pairs = BTreeSet::new();
    for &x in a {
        for &y in b {
            if x != y {
                pairs.insert((x, y));
                pairs.insert((y, x));
            }
        }
    }
    pairs
}

/// Builds the set of directed pairs dropping only `src → dst` traffic
/// (simplex partition: replies still flow).
pub fn simplex_pairs(src: &[NodeId], dst: &[NodeId]) -> BTreeSet<(NodeId, NodeId)> {
    let mut pairs = BTreeSet::new();
    for &x in src {
        for &y in dst {
            if x != y {
                pairs.insert((x, y));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn bidirectional_blocks_both_ways() {
        let mut net = Net::new(LinkConfig::default());
        let rule = net.block_pairs(bidirectional_pairs(&ids(&[0]), &ids(&[1, 2])));
        assert!(net.is_blocked(NodeId(0), NodeId(1)));
        assert!(net.is_blocked(NodeId(1), NodeId(0)));
        assert!(net.is_blocked(NodeId(2), NodeId(0)));
        assert!(!net.is_blocked(NodeId(1), NodeId(2)));
        net.unblock(rule);
        assert!(!net.is_blocked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn simplex_blocks_one_way_only() {
        let mut net = Net::new(LinkConfig::default());
        net.block_pairs(simplex_pairs(&ids(&[1]), &ids(&[0])));
        assert!(net.is_blocked(NodeId(1), NodeId(0)));
        assert!(!net.is_blocked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn rules_stack_independently() {
        let mut net = Net::new(LinkConfig::default());
        let r1 = net.block_pairs(bidirectional_pairs(&ids(&[0]), &ids(&[1])));
        let r2 = net.block_pairs(bidirectional_pairs(&ids(&[0]), &ids(&[1, 2])));
        net.unblock(r2);
        // r1 still blocks 0↔1 even after the broader rule is healed.
        assert!(net.is_blocked(NodeId(0), NodeId(1)));
        assert!(!net.is_blocked(NodeId(0), NodeId(2)));
        net.unblock(r1);
        assert_eq!(net.rule_count(), 0);
    }

    #[test]
    fn double_heal_is_noop() {
        let mut net = Net::new(LinkConfig::default());
        let r = net.block_pairs(bidirectional_pairs(&ids(&[0]), &ids(&[1])));
        net.unblock(r);
        net.unblock(r);
        assert!(!net.is_blocked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn self_pairs_never_generated() {
        let pairs = bidirectional_pairs(&ids(&[0, 1]), &ids(&[1, 2]));
        assert!(!pairs.contains(&(NodeId(1), NodeId(1))));
    }

    #[test]
    fn fifo_links_never_reorder() {
        let mut net = Net::new(LinkConfig {
            base_latency: 1,
            jitter: 10,
            fifo: true,
            drop_probability: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev = 0;
        for now in 0..50 {
            let at = net.delivery_time(now, NodeId(0), NodeId(1), &mut rng);
            assert!(at >= prev, "FIFO link delivered out of order");
            prev = at;
        }
    }

    #[test]
    fn non_fifo_links_can_reorder() {
        let mut net = Net::new(LinkConfig {
            base_latency: 1,
            jitter: 10,
            fifo: false,
            drop_probability: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(3);
        let times: Vec<Time> = (0..50)
            .map(|now| net.delivery_time(now, NodeId(0), NodeId(1), &mut rng))
            .collect();
        assert!(
            times.windows(2).any(|w| w[1] < w[0]),
            "expected at least one reordering with jitter 10"
        );
    }

    #[test]
    fn connectivity_matrix_renders_partition() {
        let mut net = Net::new(LinkConfig::default());
        net.block_pairs(simplex_pairs(&ids(&[0]), &ids(&[1])));
        let m = net.connectivity_matrix(2);
        assert_eq!(m, "1 0\n1 1\n");
    }

    #[test]
    fn connectivity_matrix_distinguishes_lossy_from_severed() {
        let mut net = Net::new(LinkConfig::default());
        net.block_pairs(simplex_pairs(&ids(&[0]), &ids(&[1])));
        let d = net.degrade_pairs(
            bidirectional_pairs(&ids(&[1]), &ids(&[2])),
            DegradeRule::lossy(0.5),
        );
        // 0→1 severed, 1↔2 lossy, everything else clean.
        assert_eq!(net.connectivity_matrix(3), "1 0 1\n1 1 ~\n1 ~ 1\n");
        net.undegrade(d);
        assert_eq!(net.connectivity_matrix(3), "1 0 1\n1 1 1\n1 1 1\n");
    }

    #[test]
    fn block_rule_wins_over_degrade_in_matrix() {
        let mut net = Net::new(LinkConfig::default());
        net.degrade_pairs(
            simplex_pairs(&ids(&[0]), &ids(&[1])),
            DegradeRule::lossy(0.9),
        );
        net.block_pairs(simplex_pairs(&ids(&[0]), &ids(&[1])));
        assert_eq!(net.connectivity_matrix(2), "1 0\n1 1\n");
    }

    #[test]
    fn degrade_rules_stack_and_heal_independently() {
        let mut net = Net::new(LinkConfig::default());
        let d1 = net.degrade_pairs(
            simplex_pairs(&ids(&[0]), &ids(&[1])),
            DegradeRule::lossy(0.5),
        );
        let d2 = net.degrade_pairs(
            bidirectional_pairs(&ids(&[0]), &ids(&[1])),
            DegradeRule::duplicating(0.5),
        );
        assert!(net.is_degraded(NodeId(0), NodeId(1)));
        assert!(net.is_degraded(NodeId(1), NodeId(0)));
        net.undegrade(d2);
        assert!(net.is_degraded(NodeId(0), NodeId(1)));
        assert!(!net.is_degraded(NodeId(1), NodeId(0)));
        net.undegrade(d1);
        net.undegrade(d1); // double heal is a no-op
        assert_eq!(net.degrade_count(), 0);
    }

    #[test]
    fn zero_knob_rules_consume_no_rng() {
        let mut net = Net::new(LinkConfig {
            base_latency: 1,
            jitter: 0,
            fifo: true,
            drop_probability: 0.0,
        });
        net.degrade_pairs(
            bidirectional_pairs(&ids(&[0]), &ids(&[1])),
            DegradeRule::default(),
        );
        let mut rng = StdRng::seed_from_u64(7);
        let before: u64 = rng.gen_range(0..u64::MAX);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!net.degrade_drop(0, NodeId(0), NodeId(1), &mut rng));
        assert!(!net.degrade_dup(0, NodeId(0), NodeId(1), &mut rng));
        let at = net.delivery_time(0, NodeId(0), NodeId(1), &mut rng);
        assert_eq!(at, 1, "zero-knob rule must not delay");
        assert_eq!(
            rng.gen_range(0..u64::MAX),
            before,
            "zero-knob rule drew from the RNG"
        );
    }

    #[test]
    fn total_loss_always_drops_and_slow_rules_delay() {
        let mut net = Net::new(LinkConfig {
            base_latency: 1,
            jitter: 0,
            fifo: false,
            drop_probability: 0.0,
        });
        net.degrade_pairs(
            simplex_pairs(&ids(&[0]), &ids(&[1])),
            DegradeRule::lossy(1.0),
        );
        net.degrade_pairs(
            simplex_pairs(&ids(&[0]), &ids(&[1])),
            DegradeRule::slow(50, 0),
        );
        let mut rng = StdRng::seed_from_u64(3);
        assert!(net.degrade_drop(0, NodeId(0), NodeId(1), &mut rng));
        // The uncovered direction is untouched.
        assert!(!net.degrade_drop(0, NodeId(1), NodeId(0), &mut rng));
        assert_eq!(net.delivery_time(0, NodeId(0), NodeId(1), &mut rng), 51);
        assert_eq!(net.delivery_time(0, NodeId(1), NodeId(0), &mut rng), 1);
    }

    #[test]
    fn flapping_rules_alternate_active_windows() {
        let rule = DegradeRule::lossy(1.0).flapping(100);
        assert!(rule.active_at(0));
        assert!(rule.active_at(99));
        assert!(!rule.active_at(100));
        assert!(!rule.active_at(199));
        assert!(rule.active_at(200));

        let mut net = Net::new(LinkConfig {
            base_latency: 1,
            jitter: 0,
            fifo: false,
            drop_probability: 0.0,
        });
        net.degrade_pairs(simplex_pairs(&ids(&[0]), &ids(&[1])), rule);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(net.degrade_drop(50, NodeId(0), NodeId(1), &mut rng));
        assert!(
            !net.degrade_drop(150, NodeId(0), NodeId(1), &mut rng),
            "flapping rule must be inactive in its healthy window"
        );
    }
}
