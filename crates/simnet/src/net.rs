//! The network fabric: latency model and directional block rules.
//!
//! Network partitions are expressed as *block rules*: sets of directed
//! `(src, dst)` pairs whose traffic is dropped. Rules stack — a pair is
//! blocked while at least one installed rule covers it — mirroring how the
//! paper's NEAT partitioner installs OpenFlow drop rules at a higher priority
//! than the learning-switch rules and removes them on heal.
//!
//! All three fault types of the paper's Figure 1 reduce to block rules:
//!
//! - **complete partition**: block both directions between two groups that
//!   together cover the cluster;
//! - **partial partition**: block both directions between two groups while a
//!   third group stays connected to both;
//! - **simplex partition**: block one direction only.

use std::collections::{BTreeMap, BTreeSet};

use rand::{rngs::StdRng, Rng};

use crate::{event::Time, NodeId};

/// Identifier of an installed block rule, used to remove it on heal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockRuleId(pub u64);

/// Latency model for every link in the fabric.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Fixed one-way latency applied to every message, in milliseconds.
    pub base_latency: Time,
    /// Maximum extra latency; the actual jitter is drawn uniformly from
    /// `0..=jitter` using the world's seeded RNG.
    pub jitter: Time,
    /// When `true` (the default), messages on the same directed link are
    /// delivered in send order, like a TCP connection. When `false`, jitter
    /// may reorder them, like UDP.
    pub fifo: bool,
    /// Probability in `[0, 1]` that any message is silently dropped —
    /// the *flaky link* condition the paper names as a cause of partial
    /// partitions (§2.1). Deterministic given the world seed.
    pub drop_probability: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            base_latency: 1,
            jitter: 1,
            fifo: true,
            drop_probability: 0.0,
        }
    }
}

/// The network fabric: computes delivery delays and answers "is this directed
/// pair currently blocked?".
#[derive(Debug)]
pub struct Net {
    config: LinkConfig,
    rules: BTreeMap<BlockRuleId, BTreeSet<(NodeId, NodeId)>>,
    next_rule: u64,
    /// Last scheduled delivery time per directed link, for FIFO enforcement.
    link_last: BTreeMap<(NodeId, NodeId), Time>,
}

impl Net {
    pub(crate) fn new(config: LinkConfig) -> Self {
        Self {
            config,
            rules: BTreeMap::new(),
            next_rule: 0,
            link_last: BTreeMap::new(),
        }
    }

    /// Installs a rule dropping traffic for every directed pair in `pairs`.
    pub fn block_pairs(&mut self, pairs: BTreeSet<(NodeId, NodeId)>) -> BlockRuleId {
        let id = BlockRuleId(self.next_rule);
        self.next_rule += 1;
        self.rules.insert(id, pairs);
        id
    }

    /// Removes a previously installed rule. Removing an unknown or already
    /// removed rule is a no-op, so healing twice is harmless.
    pub fn unblock(&mut self, id: BlockRuleId) {
        self.rules.remove(&id);
    }

    /// Returns `true` while any installed rule blocks `src → dst`.
    pub fn is_blocked(&self, src: NodeId, dst: NodeId) -> bool {
        self.rules.values().any(|set| set.contains(&(src, dst)))
    }

    /// Number of currently installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Draws whether a message is lost to link flakiness.
    pub(crate) fn flaky_drop(&self, rng: &mut StdRng) -> bool {
        self.config.drop_probability > 0.0 && rng.gen_bool(self.config.drop_probability.min(1.0))
    }

    /// Computes the delivery time for a message sent now on `src → dst`.
    pub(crate) fn delivery_time(&mut self, now: Time, src: NodeId, dst: NodeId, rng: &mut StdRng) -> Time {
        let jitter = if self.config.jitter == 0 {
            0
        } else {
            rng.gen_range(0..=self.config.jitter)
        };
        let mut at = now + self.config.base_latency + jitter;
        if self.config.fifo {
            let last = self.link_last.entry((src, dst)).or_insert(0);
            if at < *last {
                at = *last;
            }
            *last = at;
        }
        at
    }

    /// Renders the connectivity matrix as a string of `1`/`0` rows, used by
    /// the Figure 1 reproduction. Row `i`, column `j` is `1` when `i → j`
    /// traffic flows (the diagonal is always `1`).
    pub fn connectivity_matrix(&self, n: usize) -> String {
        let mut out = String::new();
        for i in 0..n {
            for j in 0..n {
                let ok = i == j || !self.is_blocked(NodeId(i), NodeId(j));
                out.push(if ok { '1' } else { '0' });
                if j + 1 < n {
                    out.push(' ');
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Builds the set of directed pairs for a bidirectional split of `a` from `b`.
pub fn bidirectional_pairs(a: &[NodeId], b: &[NodeId]) -> BTreeSet<(NodeId, NodeId)> {
    let mut pairs = BTreeSet::new();
    for &x in a {
        for &y in b {
            if x != y {
                pairs.insert((x, y));
                pairs.insert((y, x));
            }
        }
    }
    pairs
}

/// Builds the set of directed pairs dropping only `src → dst` traffic
/// (simplex partition: replies still flow).
pub fn simplex_pairs(src: &[NodeId], dst: &[NodeId]) -> BTreeSet<(NodeId, NodeId)> {
    let mut pairs = BTreeSet::new();
    for &x in src {
        for &y in dst {
            if x != y {
                pairs.insert((x, y));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn bidirectional_blocks_both_ways() {
        let mut net = Net::new(LinkConfig::default());
        let rule = net.block_pairs(bidirectional_pairs(&ids(&[0]), &ids(&[1, 2])));
        assert!(net.is_blocked(NodeId(0), NodeId(1)));
        assert!(net.is_blocked(NodeId(1), NodeId(0)));
        assert!(net.is_blocked(NodeId(2), NodeId(0)));
        assert!(!net.is_blocked(NodeId(1), NodeId(2)));
        net.unblock(rule);
        assert!(!net.is_blocked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn simplex_blocks_one_way_only() {
        let mut net = Net::new(LinkConfig::default());
        net.block_pairs(simplex_pairs(&ids(&[1]), &ids(&[0])));
        assert!(net.is_blocked(NodeId(1), NodeId(0)));
        assert!(!net.is_blocked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn rules_stack_independently() {
        let mut net = Net::new(LinkConfig::default());
        let r1 = net.block_pairs(bidirectional_pairs(&ids(&[0]), &ids(&[1])));
        let r2 = net.block_pairs(bidirectional_pairs(&ids(&[0]), &ids(&[1, 2])));
        net.unblock(r2);
        // r1 still blocks 0↔1 even after the broader rule is healed.
        assert!(net.is_blocked(NodeId(0), NodeId(1)));
        assert!(!net.is_blocked(NodeId(0), NodeId(2)));
        net.unblock(r1);
        assert_eq!(net.rule_count(), 0);
    }

    #[test]
    fn double_heal_is_noop() {
        let mut net = Net::new(LinkConfig::default());
        let r = net.block_pairs(bidirectional_pairs(&ids(&[0]), &ids(&[1])));
        net.unblock(r);
        net.unblock(r);
        assert!(!net.is_blocked(NodeId(0), NodeId(1)));
    }

    #[test]
    fn self_pairs_never_generated() {
        let pairs = bidirectional_pairs(&ids(&[0, 1]), &ids(&[1, 2]));
        assert!(!pairs.contains(&(NodeId(1), NodeId(1))));
    }

    #[test]
    fn fifo_links_never_reorder() {
        let mut net = Net::new(LinkConfig {
            base_latency: 1,
            jitter: 10,
            fifo: true,
            drop_probability: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev = 0;
        for now in 0..50 {
            let at = net.delivery_time(now, NodeId(0), NodeId(1), &mut rng);
            assert!(at >= prev, "FIFO link delivered out of order");
            prev = at;
        }
    }

    #[test]
    fn non_fifo_links_can_reorder() {
        let mut net = Net::new(LinkConfig {
            base_latency: 1,
            jitter: 10,
            fifo: false,
            drop_probability: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(3);
        let times: Vec<Time> = (0..50)
            .map(|now| net.delivery_time(now, NodeId(0), NodeId(1), &mut rng))
            .collect();
        assert!(
            times.windows(2).any(|w| w[1] < w[0]),
            "expected at least one reordering with jitter 10"
        );
    }

    #[test]
    fn connectivity_matrix_renders_partition() {
        let mut net = Net::new(LinkConfig::default());
        net.block_pairs(simplex_pairs(&ids(&[0]), &ids(&[1])));
        let m = net.connectivity_matrix(2);
        assert_eq!(m, "1 0\n1 1\n");
    }
}
