//! Structured execution traces and counters.
//!
//! Counters are always maintained (they are cheap and the benches use them).
//! The full per-event trace is off by default and enabled with
//! [`crate::WorldBuilder::record_trace`]; the figure reproductions use it to
//! print manifestation sequences like the paper's Figures 2, 3, 5, and 6.

use crate::{event::Time, net::BlockRuleId, NodeId};

/// Why a message was dropped instead of delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// A block rule covered the directed pair at delivery time.
    Partition,
    /// The flaky-link model dropped the message
    /// ([`crate::LinkConfig::drop_probability`]).
    Flaky,
    /// The destination node was crashed at delivery time.
    DeadDestination,
    /// The source node crashed between send and delivery.
    DeadSource,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DropReason::Partition => "partition",
            DropReason::Flaky => "flaky link",
            DropReason::DeadDestination => "dead destination",
            DropReason::DeadSource => "dead source",
        };
        f.write_str(s)
    }
}

/// One entry of the execution trace.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A message entered the fabric.
    Sent {
        at: Time,
        from: NodeId,
        to: NodeId,
        what: String,
    },
    /// A message reached its destination handler.
    Delivered {
        at: Time,
        from: NodeId,
        to: NodeId,
        what: String,
    },
    /// A message was dropped.
    Dropped {
        at: Time,
        from: NodeId,
        to: NodeId,
        what: String,
        reason: DropReason,
    },
    /// A timer fired at a live node.
    TimerFired {
        at: Time,
        node: NodeId,
        tag: u64,
    },
    /// A node crashed.
    Crashed {
        at: Time,
        node: NodeId,
    },
    /// A node restarted.
    Restarted {
        at: Time,
        node: NodeId,
    },
    /// A block rule (partition) was installed.
    RuleInstalled {
        at: Time,
        rule: BlockRuleId,
        pairs: usize,
    },
    /// A block rule was removed (partition healed).
    RuleRemoved {
        at: Time,
        rule: BlockRuleId,
    },
    /// A free-form annotation emitted by an application via
    /// [`crate::Ctx::note`].
    Note {
        at: Time,
        node: NodeId,
        text: String,
    },
}

impl TraceEvent {
    /// Virtual time of the event.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Sent { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::TimerFired { at, .. }
            | TraceEvent::Crashed { at, .. }
            | TraceEvent::Restarted { at, .. }
            | TraceEvent::RuleInstalled { at, .. }
            | TraceEvent::RuleRemoved { at, .. }
            | TraceEvent::Note { at, .. } => *at,
        }
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::Sent { at, from, to, what } => {
                write!(f, "[{at:>6}] {from} -> {to}  send {what}")
            }
            TraceEvent::Delivered { at, from, to, what } => {
                write!(f, "[{at:>6}] {from} => {to}  deliver {what}")
            }
            TraceEvent::Dropped {
                at,
                from,
                to,
                what,
                reason,
            } => write!(f, "[{at:>6}] {from} -x {to}  DROP ({reason}) {what}"),
            TraceEvent::TimerFired { at, node, tag } => {
                write!(f, "[{at:>6}] {node}  timer fired (tag {tag})")
            }
            TraceEvent::Crashed { at, node } => write!(f, "[{at:>6}] {node}  CRASH"),
            TraceEvent::Restarted { at, node } => write!(f, "[{at:>6}] {node}  RESTART"),
            TraceEvent::RuleInstalled { at, rule, pairs } => {
                write!(f, "[{at:>6}] net  install rule {} ({pairs} pairs)", rule.0)
            }
            TraceEvent::RuleRemoved { at, rule } => {
                write!(f, "[{at:>6}] net  heal rule {}", rule.0)
            }
            TraceEvent::Note { at, node, text } => write!(f, "[{at:>6}] {node}  {text}"),
        }
    }
}

/// Aggregate counters, always maintained.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counters {
    pub sent: u64,
    pub delivered: u64,
    pub dropped_partition: u64,
    pub dropped_flaky: u64,
    pub dropped_dead: u64,
    pub timers_fired: u64,
    pub crashes: u64,
    pub restarts: u64,
}

/// The execution trace: counters plus (optionally) the full event list.
#[derive(Debug, Default)]
pub struct Trace {
    pub counters: Counters,
    recording: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn new(recording: bool) -> Self {
        Self {
            counters: Counters::default(),
            recording,
            events: Vec::new(),
        }
    }

    /// Whether per-event recording is enabled.
    pub fn recording(&self) -> bool {
        self.recording
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.recording {
            self.events.push(ev);
        }
    }

    /// Recorded events (empty unless recording was enabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops recorded events, keeping counters.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }

    /// Renders the recorded notes and drops only — a compact manifestation
    /// sequence like the paper's figure captions.
    pub fn summary(&self) -> String {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Note { .. }
                        | TraceEvent::Crashed { .. }
                        | TraceEvent::Restarted { .. }
                        | TraceEvent::RuleInstalled { .. }
                        | TraceEvent::RuleRemoved { .. }
                )
            })
            .map(|e| format!("{e}\n"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_gate_respected() {
        let mut t = Trace::new(false);
        t.push(TraceEvent::Crashed {
            at: 1,
            node: NodeId(0),
        });
        assert!(t.events().is_empty());

        let mut t = Trace::new(true);
        t.push(TraceEvent::Crashed {
            at: 1,
            node: NodeId(0),
        });
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn display_is_stable() {
        let ev = TraceEvent::Dropped {
            at: 12,
            from: NodeId(0),
            to: NodeId(1),
            what: "Ping".into(),
            reason: DropReason::Partition,
        };
        assert_eq!(format!("{ev}"), "[    12] n0 -x n1  DROP (partition) Ping");
    }

    #[test]
    fn summary_filters_message_noise() {
        let mut t = Trace::new(true);
        t.push(TraceEvent::Sent {
            at: 0,
            from: NodeId(0),
            to: NodeId(1),
            what: "x".into(),
        });
        t.push(TraceEvent::Note {
            at: 3,
            node: NodeId(1),
            text: "elected leader".into(),
        });
        let s = t.summary();
        assert!(s.contains("elected leader"));
        assert!(!s.contains("send"));
    }

    #[test]
    fn at_returns_event_time() {
        let ev = TraceEvent::Note {
            at: 99,
            node: NodeId(2),
            text: "hi".into(),
        };
        assert_eq!(ev.at(), 99);
    }
}
