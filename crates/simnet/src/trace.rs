//! Structured execution traces and counters.
//!
//! Counters are always maintained (they are cheap and the benches use them).
//! The full per-event trace is off by default and enabled with
//! [`crate::WorldBuilder::record_trace`]; the figure reproductions use it to
//! print manifestation sequences like the paper's Figures 2, 3, 5, and 6.
//! [`Trace::spans`] derives typed intervals (partition lifetimes, node
//! down-times) from the event stream for the forensics layer (`obs`).

#![deny(missing_docs)]

use crate::{
    event::Time,
    net::{BlockRuleId, DegradeRuleId},
    NodeId,
};

/// Why a message was dropped instead of delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// A block rule covered the directed pair at delivery time.
    Partition,
    /// The flaky-link model dropped the message
    /// ([`crate::LinkConfig::drop_probability`]).
    Flaky,
    /// A per-link [`crate::DegradeRule`] lost the message — targeted
    /// gray-failure loss, distinct from the global flaky model.
    Degraded,
    /// The destination node was crashed at delivery time.
    DeadDestination,
    /// The source node crashed between send and delivery.
    DeadSource,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DropReason::Partition => "partition",
            DropReason::Flaky => "flaky link",
            DropReason::Degraded => "degraded link",
            DropReason::DeadDestination => "dead destination",
            DropReason::DeadSource => "dead source",
        };
        f.write_str(s)
    }
}

/// One entry of the execution trace.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A message entered the fabric.
    Sent {
        /// Virtual send time.
        at: Time,
        /// Sender.
        from: NodeId,
        /// Addressee.
        to: NodeId,
        /// Rendered message payload.
        what: String,
    },
    /// A message reached its destination handler.
    Delivered {
        /// Virtual delivery time.
        at: Time,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Rendered message payload.
        what: String,
    },
    /// A message was dropped.
    Dropped {
        /// Virtual time the drop was decided (delivery time).
        at: Time,
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Rendered message payload.
        what: String,
        /// Why the fabric dropped it.
        reason: DropReason,
    },
    /// A timer fired at a live node.
    TimerFired {
        /// Virtual firing time.
        at: Time,
        /// The node whose timer fired.
        node: NodeId,
        /// The application-chosen timer tag.
        tag: u64,
    },
    /// A node crashed.
    Crashed {
        /// Virtual crash time.
        at: Time,
        /// The node that went down.
        node: NodeId,
    },
    /// A node restarted.
    Restarted {
        /// Virtual restart time.
        at: Time,
        /// The node that came back.
        node: NodeId,
    },
    /// A block rule (partition) was installed.
    RuleInstalled {
        /// Virtual install time.
        at: Time,
        /// Handle of the installed rule.
        rule: BlockRuleId,
        /// Directed (from, to) pairs the rule blocks.
        pairs: usize,
    },
    /// A block rule was removed (partition healed).
    RuleRemoved {
        /// Virtual removal time.
        at: Time,
        /// Handle of the removed rule.
        rule: BlockRuleId,
    },
    /// A degrade rule (gray failure) was installed.
    DegradeRuleInstalled {
        /// Virtual install time.
        at: Time,
        /// Handle of the installed rule.
        rule: DegradeRuleId,
        /// Directed (from, to) pairs the rule degrades.
        pairs: usize,
    },
    /// A degrade rule was removed (link restored).
    DegradeRuleRemoved {
        /// Virtual removal time.
        at: Time,
        /// Handle of the removed rule.
        rule: DegradeRuleId,
    },
    /// A degrade rule duplicated a message: a second delivery of the same
    /// payload was scheduled at send time.
    Duplicated {
        /// Virtual send time (when the duplicate was scheduled).
        at: Time,
        /// Sender.
        from: NodeId,
        /// Addressee.
        to: NodeId,
        /// Rendered message payload.
        what: String,
    },
    /// A free-form annotation emitted by an application via
    /// [`crate::Ctx::note`].
    Note {
        /// Virtual time of the note.
        at: Time,
        /// The node that emitted it.
        node: NodeId,
        /// The annotation text.
        text: String,
    },
}

impl TraceEvent {
    /// Virtual time of the event.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Sent { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::TimerFired { at, .. }
            | TraceEvent::Crashed { at, .. }
            | TraceEvent::Restarted { at, .. }
            | TraceEvent::RuleInstalled { at, .. }
            | TraceEvent::RuleRemoved { at, .. }
            | TraceEvent::DegradeRuleInstalled { at, .. }
            | TraceEvent::DegradeRuleRemoved { at, .. }
            | TraceEvent::Duplicated { at, .. }
            | TraceEvent::Note { at, .. } => *at,
        }
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::Sent { at, from, to, what } => {
                write!(f, "[{at:>6}] {from} -> {to}  send {what}")
            }
            TraceEvent::Delivered { at, from, to, what } => {
                write!(f, "[{at:>6}] {from} => {to}  deliver {what}")
            }
            TraceEvent::Dropped {
                at,
                from,
                to,
                what,
                reason,
            } => write!(f, "[{at:>6}] {from} -x {to}  DROP ({reason}) {what}"),
            TraceEvent::TimerFired { at, node, tag } => {
                write!(f, "[{at:>6}] {node}  timer fired (tag {tag})")
            }
            TraceEvent::Crashed { at, node } => write!(f, "[{at:>6}] {node}  CRASH"),
            TraceEvent::Restarted { at, node } => write!(f, "[{at:>6}] {node}  RESTART"),
            TraceEvent::RuleInstalled { at, rule, pairs } => {
                write!(f, "[{at:>6}] net  install rule {} ({pairs} pairs)", rule.0)
            }
            TraceEvent::RuleRemoved { at, rule } => {
                write!(f, "[{at:>6}] net  heal rule {}", rule.0)
            }
            TraceEvent::DegradeRuleInstalled { at, rule, pairs } => {
                write!(
                    f,
                    "[{at:>6}] net  degrade rule {} ({pairs} pairs)",
                    rule.0
                )
            }
            TraceEvent::DegradeRuleRemoved { at, rule } => {
                write!(f, "[{at:>6}] net  restore rule {}", rule.0)
            }
            TraceEvent::Duplicated { at, from, to, what } => {
                write!(f, "[{at:>6}] {from} ~> {to}  duplicate {what}")
            }
            TraceEvent::Note { at, node, text } => write!(f, "[{at:>6}] {node}  {text}"),
        }
    }
}

/// Aggregate counters, always maintained.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counters {
    /// Messages that entered the fabric.
    pub sent: u64,
    /// Messages that reached their destination handler.
    pub delivered: u64,
    /// Messages dropped by an active block rule.
    pub dropped_partition: u64,
    /// Messages dropped by the flaky-link model.
    pub dropped_flaky: u64,
    /// Messages dropped by a per-link degrade rule.
    pub dropped_degraded: u64,
    /// Messages duplicated by a per-link degrade rule.
    pub duplicated: u64,
    /// Messages dropped because an endpoint was down.
    pub dropped_dead: u64,
    /// Timers that fired at live nodes.
    pub timers_fired: u64,
    /// Node crashes.
    pub crashes: u64,
    /// Node restarts.
    pub restarts: u64,
}

/// A typed interval derived from the recorded events: the lifetime of a
/// partition rule or the down-time of a crashed node.
///
/// Spans are the bridge between the flat [`TraceEvent`] stream and the
/// window-based questions forensics asks ("which ops overlapped the
/// fault?"). `end` is `None` while the interval was still open when the
/// run finished.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Span {
    /// A block rule's lifetime, from install to removal.
    Partition {
        /// Handle of the rule.
        rule: BlockRuleId,
        /// Directed pairs it blocked.
        pairs: usize,
        /// Virtual install time.
        start: Time,
        /// Virtual removal time (`None` = never healed).
        end: Option<Time>,
    },
    /// A node's down-time, from crash to restart.
    Down {
        /// The node that was down.
        node: NodeId,
        /// Virtual crash time.
        start: Time,
        /// Virtual restart time (`None` = still down at the end).
        end: Option<Time>,
    },
    /// A degrade rule's lifetime, from install to removal (the gray-failure
    /// window; for flapping rules this is the envelope, not each flap).
    Degrade {
        /// Handle of the degrade rule.
        rule: DegradeRuleId,
        /// Directed pairs it degraded.
        pairs: usize,
        /// Virtual install time.
        start: Time,
        /// Virtual removal time (`None` = never restored).
        end: Option<Time>,
    },
}

impl Span {
    /// Virtual start of the interval.
    pub fn start(&self) -> Time {
        match self {
            Span::Partition { start, .. }
            | Span::Down { start, .. }
            | Span::Degrade { start, .. } => *start,
        }
    }

    /// Virtual end of the interval (`None` = still open).
    pub fn end(&self) -> Option<Time> {
        match self {
            Span::Partition { end, .. } | Span::Down { end, .. } | Span::Degrade { end, .. } => {
                *end
            }
        }
    }

    /// Whether `[from, to]` overlaps this span (open spans extend to the
    /// end of the run).
    pub fn overlaps(&self, from: Time, to: Time) -> bool {
        from <= self.end().unwrap_or(Time::MAX) && to >= self.start()
    }
}

/// The execution trace: counters plus (optionally) the full event list.
#[derive(Debug, Default)]
pub struct Trace {
    /// Aggregate counters, live even when event recording is off.
    pub counters: Counters,
    recording: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn new(recording: bool) -> Self {
        Self {
            counters: Counters::default(),
            recording,
            // Recorded runs log hundreds-to-thousands of events; start at a
            // useful capacity so the hot loop doesn't regrow from 0. The
            // non-recording path never pushes, so it gets no buffer at all.
            events: Vec::with_capacity(if recording { 1024 } else { 0 }),
        }
    }

    /// Whether per-event recording is enabled.
    pub fn recording(&self) -> bool {
        self.recording
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.recording {
            self.events.push(ev);
        }
    }

    /// Recorded events (empty unless recording was enabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops recorded events, keeping counters.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }

    /// Renders the recorded notes and drops only — a compact manifestation
    /// sequence like the paper's figure captions.
    pub fn summary(&self) -> String {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Note { .. }
                        | TraceEvent::Crashed { .. }
                        | TraceEvent::Restarted { .. }
                        | TraceEvent::RuleInstalled { .. }
                        | TraceEvent::RuleRemoved { .. }
                        | TraceEvent::DegradeRuleInstalled { .. }
                        | TraceEvent::DegradeRuleRemoved { .. }
                )
            })
            .map(|e| format!("{e}\n"))
            .collect()
    }

    /// Derives typed [`Span`]s from the recorded events, ordered by start
    /// time (insertion order within a tick). Empty unless recording was
    /// enabled.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = Vec::new();
        for ev in &self.events {
            match ev {
                TraceEvent::RuleInstalled { at, rule, pairs } => spans.push(Span::Partition {
                    rule: *rule,
                    pairs: *pairs,
                    start: *at,
                    end: None,
                }),
                TraceEvent::RuleRemoved { at, rule } => {
                    if let Some(Span::Partition { end, .. }) = spans.iter_mut().find(|s| {
                        matches!(s, Span::Partition { rule: r, end: None, .. } if r == rule)
                    }) {
                        *end = Some(*at);
                    }
                }
                TraceEvent::DegradeRuleInstalled { at, rule, pairs } => {
                    spans.push(Span::Degrade {
                        rule: *rule,
                        pairs: *pairs,
                        start: *at,
                        end: None,
                    })
                }
                TraceEvent::DegradeRuleRemoved { at, rule } => {
                    if let Some(Span::Degrade { end, .. }) = spans.iter_mut().find(|s| {
                        matches!(s, Span::Degrade { rule: r, end: None, .. } if r == rule)
                    }) {
                        *end = Some(*at);
                    }
                }
                TraceEvent::Crashed { at, node } => spans.push(Span::Down {
                    node: *node,
                    start: *at,
                    end: None,
                }),
                TraceEvent::Restarted { at, node } => {
                    if let Some(Span::Down { end, .. }) = spans.iter_mut().find(|s| {
                        matches!(s, Span::Down { node: n, end: None, .. } if n == node)
                    }) {
                        *end = Some(*at);
                    }
                }
                _ => {}
            }
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_gate_respected() {
        let mut t = Trace::new(false);
        t.push(TraceEvent::Crashed {
            at: 1,
            node: NodeId(0),
        });
        assert!(t.events().is_empty());

        let mut t = Trace::new(true);
        t.push(TraceEvent::Crashed {
            at: 1,
            node: NodeId(0),
        });
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn display_is_stable() {
        let ev = TraceEvent::Dropped {
            at: 12,
            from: NodeId(0),
            to: NodeId(1),
            what: "Ping".into(),
            reason: DropReason::Partition,
        };
        assert_eq!(format!("{ev}"), "[    12] n0 -x n1  DROP (partition) Ping");
    }

    #[test]
    fn summary_filters_message_noise() {
        let mut t = Trace::new(true);
        t.push(TraceEvent::Sent {
            at: 0,
            from: NodeId(0),
            to: NodeId(1),
            what: "x".into(),
        });
        t.push(TraceEvent::Note {
            at: 3,
            node: NodeId(1),
            text: "elected leader".into(),
        });
        let s = t.summary();
        assert!(s.contains("elected leader"));
        assert!(!s.contains("send"));
    }

    #[test]
    fn spans_pair_installs_with_removals() {
        let mut t = Trace::new(true);
        t.push(TraceEvent::RuleInstalled {
            at: 10,
            rule: BlockRuleId(0),
            pairs: 4,
        });
        t.push(TraceEvent::Crashed {
            at: 20,
            node: NodeId(1),
        });
        t.push(TraceEvent::RuleRemoved {
            at: 50,
            rule: BlockRuleId(0),
        });
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start(), 10);
        assert_eq!(spans[0].end(), Some(50));
        assert_eq!(spans[1].end(), None, "unrestarted node stays open");
        assert!(spans[0].overlaps(40, 60));
        assert!(!spans[0].overlaps(51, 60));
        assert!(spans[1].overlaps(99, 99), "open span extends to end of run");
    }

    #[test]
    fn degrade_events_render_and_pair_into_spans() {
        let inst = TraceEvent::DegradeRuleInstalled {
            at: 5,
            rule: DegradeRuleId(0),
            pairs: 2,
        };
        assert_eq!(format!("{inst}"), "[     5] net  degrade rule 0 (2 pairs)");
        let dup = TraceEvent::Duplicated {
            at: 7,
            from: NodeId(0),
            to: NodeId(1),
            what: "Ping".into(),
        };
        assert_eq!(format!("{dup}"), "[     7] n0 ~> n1  duplicate Ping");
        assert_eq!(
            format!(
                "{}",
                TraceEvent::Dropped {
                    at: 9,
                    from: NodeId(0),
                    to: NodeId(1),
                    what: "Ping".into(),
                    reason: DropReason::Degraded,
                }
            ),
            "[     9] n0 -x n1  DROP (degraded link) Ping"
        );

        let mut t = Trace::new(true);
        t.push(inst);
        t.push(TraceEvent::DegradeRuleRemoved {
            at: 40,
            rule: DegradeRuleId(0),
        });
        let spans = t.spans();
        assert_eq!(
            spans,
            vec![Span::Degrade {
                rule: DegradeRuleId(0),
                pairs: 2,
                start: 5,
                end: Some(40),
            }]
        );
        let s = t.summary();
        assert!(s.contains("degrade rule 0"));
        assert!(s.contains("restore rule 0"));
    }

    #[test]
    fn at_returns_event_time() {
        let ev = TraceEvent::Note {
            at: 99,
            node: NodeId(2),
            text: "hi".into(),
        };
        assert_eq!(ev.at(), 99);
    }
}
