//! The simulation world: nodes, the event loop, and the external control API.

use std::collections::BTreeSet;

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{
    event::{EventKind, EventQueue, Time, TimerId},
    net::{BlockRuleId, DegradeRule, DegradeRuleId, LinkConfig, Net},
    trace::{DropReason, Trace, TraceEvent},
    NodeId,
};

/// Errors returned by the external control API.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The referenced node id does not exist in this world.
    NoSuchNode(NodeId),
    /// The operation requires a live node but the node is crashed.
    NodeDown(NodeId),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            SimError::NodeDown(n) => write!(f, "node is down: {n}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The behaviour of a simulated node.
///
/// A world hosts many nodes of one `Application` type; heterogeneous systems
/// (servers, clients, auxiliary services) wrap their roles in one enum or
/// struct. Handlers interact with the world exclusively through [`Ctx`]:
/// sends and timers are buffered and applied when the handler returns, so
/// handlers never observe partially applied effects.
pub trait Application: 'static {
    /// The message type exchanged between nodes of this application.
    type Msg: Clone + std::fmt::Debug + 'static;

    /// Called once when the node boots (and again after a restart, unless
    /// [`Application::on_restart`] is overridden).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called for every delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set by this node fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, timer: TimerId, tag: u64);

    /// Called when the node crashes. Implementations clear *volatile* state
    /// here; anything kept is, by definition, the node's stable storage.
    fn on_crash(&mut self) {}

    /// Called when the node restarts after a crash. Defaults to
    /// [`Application::on_start`] (recover from stable storage).
    fn on_restart(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        self.on_start(ctx);
    }
}

/// Buffered effect produced by a handler.
enum Action<M> {
    Send { to: NodeId, msg: M },
    SetTimer { id: TimerId, at: Time, tag: u64 },
    CancelTimer(TimerId),
    Note(String),
}

/// Handler-side view of the world.
///
/// All effects are buffered and applied after the handler returns.
pub struct Ctx<'a, M> {
    id: NodeId,
    now: Time,
    rng: &'a mut StdRng,
    next_timer: &'a mut u64,
    /// Borrowed from the world's reusable buffer: handler effects append
    /// here and are drained by `apply_actions`, so the steady-state
    /// delivery path allocates no fresh `Vec` per handler call.
    actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// The id of the node this handler runs on.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current virtual time in milliseconds.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `to`. Delivery is subject to the latency model, block
    /// rules, and the destination being alive at delivery time. Sending to
    /// self is allowed and goes through the queue like any other message.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends `msg` to every node in `peers` except self.
    pub fn broadcast(&mut self, peers: &[NodeId], msg: M)
    where
        M: Clone,
    {
        for &p in peers {
            if p != self.id {
                self.send(p, msg.clone());
            }
        }
    }

    /// Schedules a timer to fire after `delay` milliseconds with `tag`.
    ///
    /// The timer is implicitly cancelled if the node crashes before it fires.
    pub fn set_timer(&mut self, delay: Time, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.actions.push(Action::SetTimer {
            id,
            at: self.now + delay,
            tag,
        });
        id
    }

    /// Cancels a pending timer. Cancelling a fired or unknown timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }

    /// Emits a free-form annotation into the trace (visible in
    /// [`Trace::summary`]).
    pub fn note(&mut self, text: impl Into<String>) {
        self.actions.push(Action::Note(text.into()));
    }

    /// Deterministic per-world random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Draws a uniform value in `[0, n)`; convenience over [`Ctx::rng`].
    pub fn rand_below(&mut self, n: u64) -> u64 {
        self.rng.gen_range(0..n)
    }
}

struct Slot<A> {
    app: A,
    alive: bool,
    /// Bumped on every crash; stale timers and (optionally) in-flight
    /// messages carry the epoch at which they were created.
    epoch: u64,
}

/// Builder for a [`World`].
#[derive(Clone, Copy, Debug)]
pub struct WorldBuilder {
    seed: u64,
    link: LinkConfig,
    record_trace: bool,
    purge_in_flight_on_crash: bool,
    event_capacity: usize,
}

impl WorldBuilder {
    /// Creates a builder with the given RNG seed and default link model
    /// (1 ms base latency, 1 ms jitter, FIFO links).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            link: LinkConfig::default(),
            record_trace: false,
            purge_in_flight_on_crash: false,
            event_capacity: 0,
        }
    }

    /// Pre-sizes the event queue for `cap` concurrently pending events.
    ///
    /// Scenario families pass their historical high-water mark (measured
    /// via [`World::events_scheduled`]) so repeated arms of a campaign
    /// skip the queue's warm-up reallocations. A hint that is too small
    /// is only a missed optimisation, never a behaviour change — the
    /// capacity is an explicit constant rather than a learned cache so
    /// back-to-back runs of the same arm stay allocation-identical.
    pub fn event_capacity(mut self, cap: usize) -> Self {
        self.event_capacity = cap;
        self
    }

    /// Overrides the link latency model.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Enables full per-event trace recording.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// When enabled, messages still in flight from a node are dropped if the
    /// node crashes before they are delivered. The default (`false`) models
    /// a process crash: packets already on the wire still arrive.
    pub fn purge_in_flight_on_crash(mut self, on: bool) -> Self {
        self.purge_in_flight_on_crash = on;
        self
    }

    /// Builds a world of `n` nodes created by `factory` and runs each node's
    /// `on_start` handler (in node-id order, at time 0).
    pub fn build<A: Application>(self, n: usize, mut factory: impl FnMut(NodeId) -> A) -> World<A> {
        let mut world = World {
            slots: (0..n)
                .map(|i| Slot {
                    app: factory(NodeId(i)),
                    alive: true,
                    epoch: 0,
                })
                .collect(),
            queue: EventQueue::with_capacity(self.event_capacity),
            next_timer: 0,
            now: 0,
            rng: StdRng::seed_from_u64(self.seed),
            net: Net::new(self.link),
            cancelled: BTreeSet::new(),
            trace: Trace::new(self.record_trace),
            purge_in_flight_on_crash: self.purge_in_flight_on_crash,
            action_buf: Vec::new(),
        };
        for i in 0..n {
            world.with_handler(NodeId(i), |app, ctx| app.on_start(ctx));
        }
        world
    }
}

/// A running simulation: the event loop plus the external control API used
/// by test harnesses (the role the NEAT *test engine* plays in the paper).
pub struct World<A: Application> {
    slots: Vec<Slot<A>>,
    queue: EventQueue<(A::Msg, u64)>,
    next_timer: u64,
    now: Time,
    rng: StdRng,
    net: Net,
    cancelled: BTreeSet<TimerId>,
    trace: Trace,
    purge_in_flight_on_crash: bool,
    /// Reusable handler-effect buffer; see `with_handler`.
    action_buf: Vec<Action<A::Msg>>,
}

impl<A: Application> World<A> {
    /// Number of nodes in the world.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the world has no nodes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.slots.len()).map(NodeId).collect()
    }

    /// Current virtual time in milliseconds.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Immutable access to a node's application state, for assertions.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist.
    pub fn app(&self, id: NodeId) -> &A {
        &self.slots[id.0].app
    }

    /// Mutable access to a node's application state. Prefer [`World::call`]
    /// when the mutation needs to send messages or set timers.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist.
    pub fn app_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.slots[id.0].app
    }

    /// Whether the node is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.slots.get(id.0).map(|s| s.alive).unwrap_or(false)
    }

    /// The network fabric (rule inspection, connectivity matrix).
    pub fn net(&self) -> &Net {
        &self.net
    }

    /// Execution trace and counters.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (e.g., to clear recorded events between phases).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Installs a block rule over explicit directed pairs. Most callers use
    /// the partition helpers in the `neat` crate instead.
    pub fn block_pairs(&mut self, pairs: BTreeSet<(NodeId, NodeId)>) -> BlockRuleId {
        let n = pairs.len();
        let id = self.net.block_pairs(pairs);
        self.trace.push(TraceEvent::RuleInstalled {
            at: self.now,
            rule: id,
            pairs: n,
        });
        id
    }

    /// Removes a block rule (heals that partition).
    pub fn unblock(&mut self, id: BlockRuleId) {
        self.net.unblock(id);
        self.trace.push(TraceEvent::RuleRemoved { at: self.now, rule: id });
    }

    /// Installs a degrade rule (gray failure) over explicit directed pairs.
    /// Most callers use the `DegradeSpec` helpers in the `neat` crate.
    pub fn degrade_pairs(
        &mut self,
        pairs: BTreeSet<(NodeId, NodeId)>,
        rule: DegradeRule,
    ) -> DegradeRuleId {
        let n = pairs.len();
        let id = self.net.degrade_pairs(pairs, rule);
        self.trace.push(TraceEvent::DegradeRuleInstalled {
            at: self.now,
            rule: id,
            pairs: n,
        });
        id
    }

    /// Removes a degrade rule (restores those links).
    pub fn undegrade(&mut self, id: DegradeRuleId) {
        self.net.undegrade(id);
        self.trace.push(TraceEvent::DegradeRuleRemoved {
            at: self.now,
            rule: id,
        });
    }

    /// Crashes a node: volatile state is cleared via
    /// [`Application::on_crash`], pending timers die, and messages addressed
    /// to it are dropped until it restarts.
    pub fn crash(&mut self, id: NodeId) -> Result<(), SimError> {
        let slot = self.slots.get_mut(id.0).ok_or(SimError::NoSuchNode(id))?;
        if !slot.alive {
            return Err(SimError::NodeDown(id));
        }
        slot.alive = false;
        slot.epoch += 1;
        slot.app.on_crash();
        self.trace.counters.crashes += 1;
        self.trace.push(TraceEvent::Crashed { at: self.now, node: id });
        Ok(())
    }

    /// Restarts a crashed node, running [`Application::on_restart`].
    pub fn restart(&mut self, id: NodeId) -> Result<(), SimError> {
        let slot = self.slots.get_mut(id.0).ok_or(SimError::NoSuchNode(id))?;
        if slot.alive {
            return Ok(());
        }
        slot.alive = true;
        self.trace.counters.restarts += 1;
        self.trace.push(TraceEvent::Restarted { at: self.now, node: id });
        self.with_handler(id, |app, ctx| app.on_restart(ctx));
        Ok(())
    }

    /// Invokes `f` on a live node's application with a full [`Ctx`], applying
    /// any buffered effects afterwards. This is how external harnesses inject
    /// client operations.
    pub fn call<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>) -> R,
    ) -> Result<R, SimError> {
        let slot = self.slots.get(id.0).ok_or(SimError::NoSuchNode(id))?;
        if !slot.alive {
            return Err(SimError::NodeDown(id));
        }
        Ok(self.with_handler(id, f))
    }

    /// Runs `f` with a ctx for node `id` and applies resulting actions.
    fn with_handler<R>(&mut self, id: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>) -> R) -> R {
        // Reuse the world's action buffer across handler calls: `take`
        // leaves an empty Vec behind (no allocation), the buffer is
        // drained by `apply_actions`, and its capacity survives for the
        // next call.
        let mut actions = std::mem::take(&mut self.action_buf);
        let mut ctx = Ctx {
            id,
            now: self.now,
            rng: &mut self.rng,
            next_timer: &mut self.next_timer,
            actions: &mut actions,
        };
        let r = f(&mut self.slots[id.0].app, &mut ctx);
        self.apply_actions(id, &mut actions);
        self.action_buf = actions;
        r
    }

    fn apply_actions(&mut self, from: NodeId, actions: &mut Vec<Action<A::Msg>>) {
        let src_epoch = self.slots[from.0].epoch;
        for a in actions.drain(..) {
            match a {
                Action::Send { to, msg } => {
                    self.trace.counters.sent += 1;
                    if self.trace.recording() {
                        self.trace.push(TraceEvent::Sent {
                            at: self.now,
                            from,
                            to,
                            what: format!("{msg:?}"),
                        });
                    }
                    let at = self.net.delivery_time(self.now, from, to, &mut self.rng);
                    // Duplication is drawn once at send time (a duplicate is
                    // never re-duplicated) and the copy gets its own latency
                    // draw, so it can arrive before or after the original.
                    if self.net.degrade_dup(self.now, from, to, &mut self.rng) {
                        self.trace.counters.duplicated += 1;
                        if self.trace.recording() {
                            self.trace.push(TraceEvent::Duplicated {
                                at: self.now,
                                from,
                                to,
                                what: format!("{msg:?}"),
                            });
                        }
                        let at2 = self.net.delivery_time(self.now, from, to, &mut self.rng);
                        self.queue.push(
                            at2,
                            EventKind::Deliver {
                                from,
                                to,
                                msg: (msg.clone(), src_epoch),
                            },
                        );
                    }
                    self.queue.push(
                        at,
                        EventKind::Deliver {
                            from,
                            to,
                            msg: (msg, src_epoch),
                        },
                    );
                }
                Action::SetTimer { id, at, tag } => {
                    self.queue.push(
                        at,
                        EventKind::Timer {
                            node: from,
                            id,
                            tag,
                            epoch: src_epoch,
                        },
                    );
                }
                Action::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
                Action::Note(text) => {
                    self.trace.push(TraceEvent::Note {
                        at: self.now,
                        node: from,
                        text,
                    });
                }
            }
        }
    }

    /// Processes the next pending event, if any. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        debug_assert!(
            ev.seq < self.queue.scheduled(),
            "popped a sequence number that was never issued"
        );
        self.now = ev.time;
        match ev.kind {
            EventKind::Deliver { from, to, msg: (msg, src_epoch) } => {
                self.deliver(from, to, msg, src_epoch);
            }
            EventKind::Timer { node, id, tag, epoch } => {
                if self.cancelled.remove(&id) {
                    return true;
                }
                let slot = &self.slots[node.0];
                if !slot.alive || slot.epoch != epoch {
                    return true;
                }
                self.trace.counters.timers_fired += 1;
                // Guarded like the delivery sites: skip even constructing
                // the trace event when nothing records it.
                if self.trace.recording() {
                    self.trace.push(TraceEvent::TimerFired {
                        at: self.now,
                        node,
                        tag,
                    });
                }
                self.with_handler(node, |app, ctx| app.on_timer(ctx, id, tag));
            }
        }
        true
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, msg: A::Msg, src_epoch: u64) {
        let drop_reason = if self.net.is_blocked(from, to) {
            Some(DropReason::Partition)
        } else if self.net.flaky_drop(&mut self.rng) {
            Some(DropReason::Flaky)
        } else if self.net.degrade_drop(self.now, from, to, &mut self.rng) {
            Some(DropReason::Degraded)
        } else if !self.slots[to.0].alive {
            Some(DropReason::DeadDestination)
        } else if self.purge_in_flight_on_crash && self.slots[from.0].epoch != src_epoch {
            Some(DropReason::DeadSource)
        } else {
            None
        };
        if let Some(reason) = drop_reason {
            match reason {
                DropReason::Partition => self.trace.counters.dropped_partition += 1,
                DropReason::Flaky => self.trace.counters.dropped_flaky += 1,
                DropReason::Degraded => self.trace.counters.dropped_degraded += 1,
                _ => self.trace.counters.dropped_dead += 1,
            }
            if self.trace.recording() {
                self.trace.push(TraceEvent::Dropped {
                    at: self.now,
                    from,
                    to,
                    what: format!("{msg:?}"),
                    reason,
                });
            }
            return;
        }
        self.trace.counters.delivered += 1;
        if self.trace.recording() {
            self.trace.push(TraceEvent::Delivered {
                at: self.now,
                from,
                to,
                what: format!("{msg:?}"),
            });
        }
        self.with_handler(to, |app, ctx| app.on_message(ctx, from, msg));
    }

    /// Processes every event scheduled up to and including virtual time `t`,
    /// then advances the clock to `t`.
    pub fn run_until(&mut self, t: Time) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Advances the simulation by `d` milliseconds of virtual time.
    pub fn run_for(&mut self, d: Time) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Processes events until the queue drains, up to a safety cap of one
    /// million events (systems with periodic timers never drain; use
    /// [`World::run_for`] for those). Returns the number of events processed.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut n = 0;
        while n < 1_000_000 && !self.queue.is_empty() {
            self.step();
            n += 1;
        }
        n
    }

    /// Number of pending events, for tests and benches.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Total events ever scheduled on this world (deliveries including
    /// later drops and duplicates, plus timers) — a deterministic volume
    /// proxy for perf gating.
    pub fn events_scheduled(&self) -> u64 {
        self.queue.scheduled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::bidirectional_pairs;
    use crate::net::LinkConfig;

    /// Echo: replies `x + 1` to every message; counts received values.
    struct Echo {
        seen: Vec<u64>,
        heartbeats: u64,
        heartbeat_timer: bool,
    }

    impl Echo {
        fn new() -> Self {
            Self {
                seen: Vec::new(),
                heartbeats: 0,
                heartbeat_timer: false,
            }
        }
    }

    impl Application for Echo {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.heartbeat_timer {
                ctx.set_timer(10, 1);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.seen.push(msg);
            if msg.is_multiple_of(2) {
                ctx.send(from, msg + 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _timer: TimerId, tag: u64) {
            self.heartbeats += 1;
            if tag == 1 && self.heartbeats < 5 {
                ctx.set_timer(10, 1);
            }
        }
    }

    fn two_nodes() -> World<Echo> {
        WorldBuilder::new(1).build(2, |_| Echo::new())
    }

    #[test]
    fn request_reply_round_trip() {
        let mut w = two_nodes();
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 2)).unwrap();
        w.run_until_idle();
        assert_eq!(w.app(NodeId(1)).seen, vec![2]);
        assert_eq!(w.app(NodeId(0)).seen, vec![3]);
    }

    #[test]
    fn partition_drops_messages_and_heal_restores() {
        let mut w = two_nodes();
        let rule = w.block_pairs(bidirectional_pairs(&[NodeId(0)], &[NodeId(1)]));
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 2)).unwrap();
        w.run_until_idle();
        assert!(w.app(NodeId(1)).seen.is_empty());
        assert_eq!(w.trace().counters.dropped_partition, 1);

        w.unblock(rule);
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 4)).unwrap();
        w.run_until_idle();
        assert_eq!(w.app(NodeId(1)).seen, vec![4]);
    }

    #[test]
    fn partition_installed_after_send_still_drops_in_flight() {
        // The message is in flight when the rule is installed; delivery-time
        // checking drops it, like a switch rule would.
        let mut w = two_nodes();
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 2)).unwrap();
        w.block_pairs(bidirectional_pairs(&[NodeId(0)], &[NodeId(1)]));
        w.run_until_idle();
        assert!(w.app(NodeId(1)).seen.is_empty());
    }

    #[test]
    fn crash_drops_deliveries_and_timers() {
        let mut w = WorldBuilder::new(1).build(2, |id| Echo {
            heartbeat_timer: id.0 == 1,
            ..Echo::new()
        });
        w.crash(NodeId(1)).unwrap();
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 2)).unwrap();
        w.run_for(100);
        assert!(w.app(NodeId(1)).seen.is_empty());
        assert_eq!(w.app(NodeId(1)).heartbeats, 0, "timers must die with the node");
        assert_eq!(w.trace().counters.dropped_dead, 1);
    }

    #[test]
    fn restart_runs_on_restart_and_revives_delivery() {
        let mut w = two_nodes();
        w.crash(NodeId(1)).unwrap();
        w.run_for(5);
        w.restart(NodeId(1)).unwrap();
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 2)).unwrap();
        w.run_until_idle();
        assert_eq!(w.app(NodeId(1)).seen, vec![2]);
    }

    #[test]
    fn crash_twice_is_error() {
        let mut w = two_nodes();
        w.crash(NodeId(1)).unwrap();
        assert_eq!(w.crash(NodeId(1)), Err(SimError::NodeDown(NodeId(1))));
    }

    #[test]
    fn call_on_dead_node_is_error() {
        let mut w = two_nodes();
        w.crash(NodeId(0)).unwrap();
        assert!(matches!(
            w.call(NodeId(0), |_, _| ()),
            Err(SimError::NodeDown(_))
        ));
    }

    #[test]
    fn timers_fire_with_recurrence() {
        let mut w = WorldBuilder::new(1).build(1, |_| Echo {
            heartbeat_timer: true,
            ..Echo::new()
        });
        w.run_for(100);
        assert_eq!(w.app(NodeId(0)).heartbeats, 5);
    }

    #[test]
    fn cancel_timer_prevents_fire() {
        struct Canceller {
            fired: bool,
        }
        impl Application for Canceller {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                let id = ctx.set_timer(10, 0);
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerId, _: u64) {
                self.fired = true;
            }
        }
        let mut w = WorldBuilder::new(1).build(1, |_| Canceller { fired: false });
        w.run_for(100);
        assert!(!w.app(NodeId(0)).fired);
    }

    #[test]
    fn run_until_advances_clock_past_last_event() {
        let mut w = two_nodes();
        w.run_until(500);
        assert_eq!(w.now(), 500);
    }

    #[test]
    fn deterministic_same_seed_same_counters() {
        let run = |seed| {
            let mut w = WorldBuilder::new(seed).build(3, |_| Echo {
                heartbeat_timer: true,
                ..Echo::new()
            });
            for i in 0..10u64 {
                let from = NodeId((i % 3) as usize);
                let to = NodeId(((i + 1) % 3) as usize);
                w.call(from, |_, ctx| ctx.send(to, i * 2)).unwrap();
                w.run_for(3);
            }
            w.run_for(200);
            w.trace().counters
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn flaky_links_drop_a_fraction_of_messages() {
        let mut w = WorldBuilder::new(5)
            .link(LinkConfig {
                drop_probability: 0.3,
                ..LinkConfig::default()
            })
            .build(2, |_| Echo::new());
        for i in 0..200u64 {
            w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), i * 2 + 1)).unwrap();
        }
        w.run_for(1000);
        let c = w.trace().counters;
        assert_eq!(c.sent, 200);
        assert!(c.dropped_flaky > 20, "{c:?}");
        assert!(c.delivered > 100, "{c:?}");
        assert_eq!(c.delivered + c.dropped_flaky, 200, "{c:?}");
    }

    #[test]
    fn zero_drop_probability_loses_nothing() {
        let mut w = WorldBuilder::new(5).build(2, |_| Echo::new());
        for i in 0..50u64 {
            w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), i * 2 + 1)).unwrap();
        }
        w.run_for(1000);
        assert_eq!(w.trace().counters.dropped_flaky, 0);
        assert_eq!(w.trace().counters.delivered, 50);
    }

    #[test]
    fn degraded_link_loses_messages_until_restored() {
        let mut w = two_nodes();
        let d = w.degrade_pairs(
            crate::net::simplex_pairs(&[NodeId(0)], &[NodeId(1)]),
            DegradeRule::lossy(1.0),
        );
        for i in 0..5u64 {
            w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), i * 2 + 1)).unwrap();
        }
        w.run_until_idle();
        assert!(w.app(NodeId(1)).seen.is_empty());
        assert_eq!(w.trace().counters.dropped_degraded, 5);

        w.undegrade(d);
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 4)).unwrap();
        w.run_until_idle();
        assert_eq!(w.app(NodeId(1)).seen, vec![4]);
    }

    #[test]
    fn duplicating_link_delivers_twice() {
        let mut w = two_nodes();
        w.degrade_pairs(
            crate::net::simplex_pairs(&[NodeId(0)], &[NodeId(1)]),
            DegradeRule::duplicating(1.0),
        );
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 7)).unwrap();
        w.run_until_idle();
        assert_eq!(w.app(NodeId(1)).seen, vec![7, 7]);
        let c = w.trace().counters;
        assert_eq!(c.sent, 1, "a duplicate is a fabric artifact, not a send");
        assert_eq!(c.duplicated, 1);
        assert_eq!(c.delivered, 2);
        // The reply direction is untouched: replies (odd values get none
        // here) would flow once.
    }

    #[test]
    fn flapping_rule_only_degrades_in_active_windows() {
        let mut w = two_nodes();
        w.degrade_pairs(
            crate::net::simplex_pairs(&[NodeId(0)], &[NodeId(1)]),
            DegradeRule::lossy(1.0).flapping(100),
        );
        // Delivered at ~t=101..150: the healthy window.
        w.run_until(100);
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 2)).unwrap();
        w.run_until(199);
        assert_eq!(w.app(NodeId(1)).seen, vec![2]);
        // Delivered at ~t=201: back in the degraded window.
        w.run_until(200);
        w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 4)).unwrap();
        w.run_until_idle();
        assert_eq!(w.app(NodeId(1)).seen, vec![2]);
        assert_eq!(w.trace().counters.dropped_degraded, 1);
    }

    #[test]
    fn degrade_runs_are_deterministic_per_seed() {
        let run = |seed| {
            let mut w = WorldBuilder::new(seed).build(2, |_| Echo::new());
            w.degrade_pairs(
                crate::net::bidirectional_pairs(&[NodeId(0)], &[NodeId(1)]),
                DegradeRule {
                    loss: 0.3,
                    extra_latency: 5,
                    jitter: 7,
                    dup_probability: 0.2,
                    flap_period: 40,
                },
            );
            for i in 0..50u64 {
                w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), i * 2)).unwrap();
                w.run_for(3);
            }
            w.run_for(500);
            w.trace().counters
        };
        assert_eq!(run(11), run(11));
        let c = run(11);
        assert!(c.dropped_degraded > 0, "{c:?}");
        assert!(c.duplicated > 0, "{c:?}");
    }

    #[test]
    fn epoch_isolation_timer_set_before_crash_never_fires_after_restart() {
        let mut w = WorldBuilder::new(1).build(1, |_| Echo {
            heartbeat_timer: true,
            ..Echo::new()
        });
        w.run_for(5); // timer pending at t=10
        w.crash(NodeId(0)).unwrap();
        w.restart(NodeId(0)).unwrap(); // sets a fresh timer
        w.run_for(200);
        // Only the post-restart chain fires (5 beats), not the stale timer.
        assert_eq!(w.app(NodeId(0)).heartbeats, 5);
    }
}
