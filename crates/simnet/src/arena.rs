//! A generational arena for event payloads.
//!
//! The event queue stores message payloads out-of-line so the ordering
//! structures (heap keys, wheel entries) stay a few words wide. Payload
//! slots are recycled through a free list, and every slot carries a
//! generation counter that is bumped on each vacate — a [`Handle`] is only
//! valid for the exact insertion that produced it, so a stale handle (a
//! bug in the queue) is caught at `take` time instead of silently aliasing
//! a newer payload.
//!
//! Steady state — pending events oscillating below the high-water mark —
//! allocates nothing: `insert` pops the free list and `take` pushes it.

/// A generation-checked reference to a value stored in an [`Arena`].
///
/// Two words: slot index plus the generation the slot had when the value
/// was inserted. Handles are `Copy` keys, not borrows — redeeming one via
/// [`Arena::take`] verifies the generation still matches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Handle {
    index: u32,
    generation: u32,
}

/// One payload slot: the current generation and (while occupied) a value.
#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// The payload store: a slab of generation-tagged slots plus a free list.
#[derive(Debug)]
pub(crate) struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Arena<T> {
    /// An empty arena whose slab and free list can hold `cap` payloads
    /// before reallocating — seeded from a scenario's historical
    /// high-water mark so repeated trials skip the warm-up growth.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            len: 0,
        }
    }

    /// Stores `value`, reusing a vacated slot when one is free.
    pub fn insert(&mut self, value: T) -> Handle {
        self.len += 1;
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.value.is_none(), "free list held an occupied slot");
                slot.value = Some(value);
                Handle {
                    index,
                    generation: slot.generation,
                }
            }
            None => {
                let index = self.slots.len() as u32;
                self.slots.push(Slot {
                    generation: 0,
                    value: Some(value),
                });
                Handle {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Removes and returns the value behind `handle`.
    ///
    /// Panics when the handle is stale (its slot was vacated, or vacated
    /// and re-used, since the insertion): each handle is redeemable
    /// exactly once, and the queue invariant is that every pushed payload
    /// is taken by exactly one pop.
    pub fn take(&mut self, handle: Handle) -> T {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale arena handle: slot was recycled under it"
        );
        let value = slot
            .value
            .take()
            // Invariant: generation matches, so the insertion that minted
            // this handle has not been taken yet.
            .expect("arena handle addressed an empty slot"); // lint:allow(unwrap-expect)
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.len -= 1;
        value
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_round_trips() {
        let mut a = Arena::with_capacity(0);
        let h = a.insert("payload");
        assert_eq!(a.len(), 1);
        assert_eq!(a.take(h), "payload");
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut a = Arena::with_capacity(2);
        for i in 0..100u32 {
            let h1 = a.insert(i);
            let h2 = a.insert(i + 1);
            assert_eq!(a.take(h1), i);
            assert_eq!(a.take(h2), i + 1);
        }
        assert!(a.slots.len() <= 2, "slab grew past high-water: {}", a.slots.len());
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn stale_handle_is_caught_by_generation_check() {
        let mut a = Arena::with_capacity(0);
        let h = a.insert(1u32);
        a.take(h);
        a.insert(2u32); // recycles the slot with a bumped generation
        a.take(h); // stale: must panic, not alias the new payload
    }

    #[test]
    fn distinct_pending_handles_never_alias() {
        let mut a = Arena::with_capacity(0);
        let hs: Vec<Handle> = (0..10u64).map(|i| a.insert(i)).collect();
        for (i, h) in hs.into_iter().enumerate().rev() {
            assert_eq!(a.take(h), i as u64);
        }
    }
}
