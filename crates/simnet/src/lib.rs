//! A deterministic discrete-event simulator for distributed systems.
//!
//! `simnet` is the substrate on which the NEAT reproduction runs every
//! distributed protocol. It provides:
//!
//! - a virtual clock and a totally ordered event queue (same seed, same
//!   program ⇒ identical execution, byte for byte),
//! - nodes implementing the [`Application`] trait (message and timer
//!   handlers, crash/restart lifecycle),
//! - a network fabric with a configurable latency model and stacked
//!   *directional block rules*, the primitive from which complete, partial,
//!   and simplex network partitions (Figure 1 of the paper) are built,
//! - per-link [`net::DegradeRule`]s for *gray failures* — targeted loss,
//!   extra latency, jitter, and duplication, optionally flapping — the
//!   flaky-link causes the paper traces partial partitions to (§2.1),
//! - a structured [`trace::Trace`] of everything that happened, used by the
//!   figure reproductions to print manifestation sequences.
//!
//! # Examples
//!
//! ```
//! use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};
//!
//! /// Every node pings its successor once at startup.
//! struct Ping {
//!     got: Option<NodeId>,
//! }
//!
//! impl Application for Ping {
//!     type Msg = &'static str;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
//!         let next = NodeId((ctx.id().0 + 1) % 3);
//!         ctx.send(next, "ping");
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, _msg: Self::Msg) {
//!         self.got = Some(from);
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _timer: TimerId, _tag: u64) {}
//! }
//!
//! let mut world = WorldBuilder::new(7).build(3, |_| Ping { got: None });
//! world.run_until_idle();
//! assert_eq!(world.app(NodeId(1)).got, Some(NodeId(0)));
//! ```

pub(crate) mod arena;
pub mod event;
pub mod net;
pub mod trace;
pub(crate) mod wheel;
pub mod world;

pub use event::{Time, TimerId};
pub use net::{BlockRuleId, DegradeRule, DegradeRuleId, LinkConfig};
pub use trace::{Span, Trace, TraceEvent};
pub use world::{Application, Ctx, SimError, World, WorldBuilder};

/// Identifier of a simulated node (server, client, or auxiliary service).
///
/// Node ids are dense indices assigned by the [`WorldBuilder`] in creation
/// order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}
