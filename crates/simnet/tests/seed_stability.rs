//! Seed stability: the same seed must yield a byte-identical execution.
//! This is the per-crate slice of the determinism contract in DESIGN.md;
//! `cargo run -p lint -- --audit` checks the same property campaign-wide.

use proptest::prelude::*;
use simnet::{
    net::bidirectional_pairs, Application, Ctx, LinkConfig, NodeId, TimerId, WorldBuilder,
};

#[derive(Default)]
struct Echo {
    seen: Vec<(NodeId, u64)>,
}

impl Application for Echo {
    type Msg = u64;
    fn on_start(&mut self, _ctx: &mut Ctx<'_, u64>) {}
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        self.seen.push((from, msg));
        if msg % 3 == 0 {
            ctx.send(from, msg + 1);
        }
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _t: TimerId, _tag: u64) {}
}

/// A run that exercises jittered delivery, a partition window, and a
/// crash/restart, then renders everything observable about it.
fn fingerprint(seed: u64) -> String {
    let n = 3;
    let mut w = WorldBuilder::new(seed)
        .link(LinkConfig {
            base_latency: 1,
            jitter: 9,
            fifo: false,
            drop_probability: 0.0,
        })
        .build(n, |_| Echo::default());
    // Burst sends so many messages are in flight at once; with non-FIFO
    // links the jitter draws decide the interleaving.
    for k in 0..12u64 {
        let from = NodeId((k as usize) % n);
        let to = NodeId((k as usize + 1) % n);
        let _ = w.call(from, |_, ctx| ctx.send(to, k));
    }
    w.run_for(40);
    let rule = w.block_pairs(bidirectional_pairs(&[NodeId(0)], &[NodeId(1), NodeId(2)]));
    w.run_for(100);
    let _ = w.crash(NodeId(1));
    w.run_for(50);
    let _ = w.restart(NodeId(1));
    w.unblock(rule);
    w.run_for(300);
    let logs: Vec<_> = (0..n).map(|i| w.app(NodeId(i)).seen.clone()).collect();
    format!("{logs:?}\n{}\n{:?}", w.trace().summary(), w.trace().counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn same_seed_same_trace(seed in 0u64..100_000) {
        prop_assert_eq!(fingerprint(seed), fingerprint(seed));
    }

    #[test]
    fn different_seeds_change_the_schedule(seed in 0u64..100_000) {
        // Not a strict requirement per-pair, but across the jittered links
        // two adjacent seeds virtually always schedule differently; allow
        // the rare collision by only requiring inequality for one of three
        // neighbours.
        let base = fingerprint(seed);
        let diverged = (1..=3u64).any(|d| fingerprint(seed + d) != base);
        prop_assert!(diverged, "seeds {seed}..={} all produced identical runs", seed + 3);
    }
}
