//! Cluster assembly: the process enum, builder, and inspection helpers.

use std::collections::BTreeMap;

use neat::Neat;
use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};

use crate::{
    client::{ClientProc, KvClient},
    config::Config,
    msg::Msg,
    server::{Role, Server},
};

/// A node of the replicated KV deployment: replica server or client.
pub enum Proc {
    Server(Box<Server>),
    Client(ClientProc),
}

impl Proc {
    /// The server state.
    ///
    /// # Panics
    ///
    /// Panics when called on a client node.
    pub fn server(&self) -> &Server {
        match self {
            Proc::Server(s) => s,
            Proc::Client(_) => panic!("not a server node"),
        }
    }

    /// Mutable server state.
    ///
    /// # Panics
    ///
    /// Panics when called on a client node.
    pub fn server_mut(&mut self) -> &mut Server {
        match self {
            Proc::Server(s) => s,
            Proc::Client(_) => panic!("not a server node"),
        }
    }

    /// Mutable client state.
    ///
    /// # Panics
    ///
    /// Panics when called on a server node.
    pub fn client_mut(&mut self) -> &mut ClientProc {
        match self {
            Proc::Client(c) => c,
            Proc::Server(_) => panic!("not a client node"),
        }
    }
}

impl Application for Proc {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let Proc::Server(s) = self {
            s.start(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match self {
            Proc::Server(s) => s.on_message(ctx, from, msg),
            Proc::Client(c) => c.on_message(msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: TimerId, tag: u64) {
        if let Proc::Server(s) = self {
            s.on_timer(ctx, timer, tag);
        }
    }

    fn on_crash(&mut self) {
        if let Proc::Server(s) = self {
            s.on_crash();
        }
    }
}

/// Deployment shape.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Number of replica servers (including the arbiter, if any).
    pub servers: usize,
    /// Number of client nodes.
    pub clients: usize,
    /// Make the last server a vote-only arbiter.
    pub arbiter: bool,
    pub config: Config,
    pub seed: u64,
    /// Record the full simnet trace (for figure reproductions).
    pub record_trace: bool,
}

impl ClusterSpec {
    /// Three servers, two clients — the paper's canonical test deployment
    /// (Finding 12: 83% of failures reproduce on three nodes).
    pub fn three_by_two(config: Config, seed: u64) -> Self {
        Self {
            servers: 3,
            clients: 2,
            arbiter: false,
            config,
            seed,
            record_trace: false,
        }
    }
}

/// A running deployment of the replicated KV store under the NEAT engine.
pub struct Cluster {
    /// The NEAT test engine around the simulated world.
    pub neat: Neat<Proc>,
    /// Server node ids (arbiter last, when present).
    pub servers: Vec<NodeId>,
    /// The arbiter's node id, if configured.
    pub arbiter: Option<NodeId>,
    /// Client node ids.
    pub clients: Vec<NodeId>,
}

impl Cluster {
    /// Builds and boots the deployment.
    pub fn build(spec: ClusterSpec) -> Self {
        let servers: Vec<NodeId> = (0..spec.servers).map(NodeId).collect();
        let clients: Vec<NodeId> = (spec.servers..spec.servers + spec.clients)
            .map(NodeId)
            .collect();
        let arbiter = spec.arbiter.then(|| servers[spec.servers - 1]);
        let config = spec.config.clone();
        let world = WorldBuilder::new(spec.seed)
            .record_trace(spec.record_trace)
            // Historical high-water mark of the repkv arms (longest:
            // load_retry_storm_gray_loss, ~2540 events at seed 8).
            .event_capacity(2560)
            .build(spec.servers + spec.clients, |id| {
                if id.0 < spec.servers {
                    Proc::Server(Box::new(Server::new(
                        id,
                        servers.clone(),
                        arbiter,
                        config.clone(),
                    )))
                } else {
                    Proc::Client(ClientProc::default())
                }
            });
        Self {
            neat: Neat::new(world),
            servers,
            arbiter,
            clients,
        }
    }

    /// A client handle for client `i`, initially pointed at server 0.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn client(&self, i: usize) -> KvClient {
        KvClient {
            node: self.clients[i],
            target: self.servers[0],
        }
    }

    /// Data servers (excluding the arbiter).
    pub fn data_servers(&self) -> Vec<NodeId> {
        self.servers
            .iter()
            .copied()
            .filter(|s| Some(*s) != self.arbiter)
            .collect()
    }

    /// The live leader with the highest term, if any.
    pub fn leader(&self) -> Option<NodeId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| self.neat.world.is_alive(s))
            .filter(|&s| self.neat.world.app(s).server().role() == Role::Leader)
            .max_by_key(|&s| self.neat.world.app(s).server().term())
    }

    /// Runs the cluster until a leader exists or `max_ms` elapses.
    pub fn wait_for_leader(&mut self, max_ms: u64) -> Option<NodeId> {
        let deadline = self.neat.now() + max_ms;
        loop {
            if let Some(l) = self.leader() {
                return Some(l);
            }
            if self.neat.now() >= deadline {
                return None;
            }
            self.neat.sleep(10);
        }
    }

    /// Lets the cluster run for `ms` of virtual time.
    pub fn settle(&mut self, ms: u64) {
        self.neat.sleep(ms);
    }

    /// Direct copy of a server's applied key-value state.
    pub fn kv_of(&self, server: NodeId) -> BTreeMap<String, u64> {
        self.neat.world.app(server).server().kv().clone()
    }

    /// The final state of `keys` as stored on the current leader — the
    /// ground truth the register checker compares against. Call after
    /// healing and settling.
    pub fn final_state(&self, keys: &[&str]) -> BTreeMap<String, Option<u64>> {
        let leader = self.leader().unwrap_or(self.servers[0]);
        let kv = self.kv_of(leader);
        keys.iter()
            .map(|k| (k.to_string(), kv.get(*k).copied()))
            .collect()
    }

    /// Total elections won across servers (thrash metric, §4.4).
    pub fn total_elections(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| self.neat.world.app(s).server().elections_won)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat::Outcome;

    fn cluster(seed: u64) -> Cluster {
        Cluster::build(ClusterSpec::three_by_two(Config::fixed(), seed))
    }

    #[test]
    fn a_leader_emerges() {
        let mut c = cluster(1);
        let leader = c.wait_for_leader(2000);
        assert!(leader.is_some());
    }

    #[test]
    fn exactly_one_leader_in_steady_state() {
        let mut c = cluster(2);
        c.wait_for_leader(2000).unwrap();
        c.settle(1000);
        let leaders: Vec<NodeId> = c
            .servers
            .iter()
            .copied()
            .filter(|&s| c.neat.world.app(s).server().role() == Role::Leader)
            .collect();
        assert_eq!(leaders.len(), 1, "{leaders:?}");
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut c = cluster(3);
        let leader = c.wait_for_leader(2000).unwrap();
        let client = c.client(0).via(leader);
        assert_eq!(client.write(&mut c.neat, "k", 7), Outcome::Ok(None));
        assert_eq!(client.read(&mut c.neat, "k"), Outcome::Ok(Some(7)));
    }

    #[test]
    fn write_replicates_to_followers() {
        let mut c = cluster(4);
        let leader = c.wait_for_leader(2000).unwrap();
        let client = c.client(0).via(leader);
        client.write(&mut c.neat, "k", 7);
        c.settle(500);
        for s in c.servers.clone() {
            assert_eq!(c.kv_of(s).get("k"), Some(&7), "{s} missing the write");
        }
    }

    #[test]
    fn delete_round_trip() {
        let mut c = cluster(5);
        let leader = c.wait_for_leader(2000).unwrap();
        let client = c.client(0).via(leader);
        client.write(&mut c.neat, "k", 7);
        assert_eq!(client.delete(&mut c.neat, "k"), Outcome::Ok(None));
        assert_eq!(client.read(&mut c.neat, "k"), Outcome::Ok(None));
    }

    #[test]
    fn incr_accumulates() {
        let mut c = cluster(6);
        let leader = c.wait_for_leader(2000).unwrap();
        let client = c.client(0).via(leader);
        client.incr(&mut c.neat, "n", 2);
        client.incr(&mut c.neat, "n", 3);
        assert_eq!(client.read(&mut c.neat, "n"), Outcome::Ok(Some(5)));
    }

    #[test]
    fn read_at_follower_fails_without_routing() {
        let mut c = cluster(7);
        let leader = c.wait_for_leader(2000).unwrap();
        let follower = c.servers.iter().copied().find(|&s| s != leader).unwrap();
        let client = c.client(0).via(follower);
        assert_eq!(client.read(&mut c.neat, "k"), Outcome::Fail);
    }

    #[test]
    fn crashed_leader_is_replaced() {
        let mut c = cluster(8);
        let leader = c.wait_for_leader(2000).unwrap();
        c.neat.crash(&[leader]);
        let next = c.wait_for_leader(3000);
        assert!(next.is_some());
        assert_ne!(next, Some(leader));
    }

    #[test]
    fn history_records_each_operation() {
        let mut c = cluster(9);
        let leader = c.wait_for_leader(2000).unwrap();
        let client = c.client(0).via(leader);
        client.write(&mut c.neat, "k", 1);
        client.read(&mut c.neat, "k");
        assert_eq!(c.neat.history().len(), 2);
    }

    #[test]
    fn isolated_minority_leader_eventually_steps_down() {
        let mut c = cluster(10);
        let leader = c.wait_for_leader(2000).unwrap();
        let rest = neat::rest_of(&c.servers, &[leader]);
        c.neat.partition_complete(&[leader], &rest);
        c.settle(3000);
        assert_ne!(
            c.neat.world.app(leader).server().role(),
            Role::Leader,
            "old leader must step down after losing the majority"
        );
        // And the majority elected a replacement.
        let new = c.leader().expect("majority side should have a leader");
        assert!(rest.contains(&new));
    }
}
