//! Reusable reproductions of the paper's primary-backup failures.
//!
//! Every scenario takes the [`Config`] to run under, so the same
//! manifestation sequence can be executed against a flawed profile (where
//! the checkers find the paper's violation) and against [`Config::fixed`]
//! (where they find nothing) — the ablation the benches report.

use std::collections::BTreeMap;

use neat::{
    checkers::{check_counter, check_register, RegisterSemantics},
    rest_of, DegradeSpec, RetryPolicy, Violation, ViolationKind,
};
use simnet::DegradeRule;

use crate::{
    cluster::{Cluster, ClusterSpec},
    config::Config,
    server::Role,
};

/// What a scenario produced.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Violations the NEAT checkers detected.
    pub violations: Vec<Violation>,
    /// Total elections won across servers (thrash metric).
    pub elections: u64,
    /// Manifestation-sequence summary (non-empty when tracing was on).
    pub trace: String,
    /// The final per-key state used by the register checker.
    pub final_state: BTreeMap<String, Option<u64>>,
    /// Rendered operation history, one line per op.
    pub history: String,
    /// Typed observability timeline (faults, ops, verdicts; see `obs`).
    pub timeline: neat::obs::Timeline,
}

impl ScenarioOutcome {
    /// Kinds of the detected violations, deduplicated and sorted.
    pub fn kinds(&self) -> Vec<ViolationKind> {
        let mut ks: Vec<ViolationKind> = self.violations.iter().map(|v| v.kind).collect();
        ks.sort();
        ks.dedup();
        ks
    }

    /// `true` when a violation of `kind` was detected.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }
}

fn finish(cluster: &mut Cluster, keys: &[&str]) -> ScenarioOutcome {
    let final_state = cluster.final_state(keys);
    let violations = check_register(
        cluster.neat.history(),
        RegisterSemantics::Strong,
        &final_state,
    );
    let timeline = cluster.neat.observe(&violations);
    ScenarioOutcome {
        violations,
        elections: cluster.total_elections(),
        trace: cluster.neat.world.trace().summary(),
        final_state,
        history: cluster.neat.history().render(),
        timeline,
    }
}

fn spec(config: Config, seed: u64, record: bool) -> ClusterSpec {
    ClusterSpec {
        record_trace: record,
        ..ClusterSpec::three_by_two(config, seed)
    }
}

/// Figure 2: a complete partition isolates the master; a write at the old
/// master fails yet stays visible (dirty read), and after the majority
/// elects a new master, the old one still serves the old value (stale read).
pub fn dirty_and_stale_read(mut config: Config, seed: u64, record: bool) -> ScenarioOutcome {
    // The old master must keep serving through the overlap window — the
    // paper's "period of time in which each partition has a leader".
    config.step_down_rounds = 30;
    let mut cluster = Cluster::build(spec(config, seed, record));
    let old = cluster.wait_for_leader(3000).expect("initial leader"); // lint:allow(unwrap-expect)
    let c1 = cluster.client(0).via(old);
    c1.write(&mut cluster.neat, "dirty_key", 10);
    c1.write(&mut cluster.neat, "stale_key", 10);

    // (1) Complete partition: old master + client1 vs the rest + client2.
    let minority = [old, cluster.clients[0]];
    let majority = rest_of(&cluster.neat.world.node_ids(), &minority);
    let p = cluster.neat.partition_complete(&minority, &majority);

    // (2) Write at the old master right after the fault (the paper's timing
    // constraint): replication cannot reach a majority, so it fails.
    c1.write(&mut cluster.neat, "dirty_key", 20);
    // (3) Read at the old master: under the flawed profile this returns 20.
    c1.read(&mut cluster.neat, "dirty_key");

    // Majority side elects a new master, then accepts a write.
    let deadline = cluster.neat.now() + 1200;
    let rest = rest_of(&cluster.servers, &[old]);
    while cluster.neat.now() < deadline {
        let elected = rest
            .iter()
            .any(|&s| cluster.neat.world.app(s).server().role() == Role::Leader);
        if elected {
            break;
        }
        cluster.neat.sleep(10);
    }
    if let Some(new_leader) = rest
        .iter()
        .copied()
        .find(|&s| cluster.neat.world.app(s).server().role() == Role::Leader)
    {
        let c2 = cluster.client(1).via(new_leader);
        c2.write(&mut cluster.neat, "stale_key", 30);
        // Read at the old master while both leaders coexist: it still
        // serves the pre-partition value 10 — a stale read.
        c1.read(&mut cluster.neat, "stale_key");
    }

    cluster.neat.heal(&p);
    cluster.settle(2000);
    finish(&mut cluster, &["dirty_key", "stale_key"])
}

/// ENG-10486: the longest-log election criterion lets an old minority
/// master with *failed* (uncommitted) writes win the post-heal election and
/// erase the majority's committed write.
pub fn longest_log_data_loss(mut config: Config, seed: u64, record: bool) -> ScenarioOutcome {
    // The old master must survive as leader until the heal so the two logs
    // meet while its (longer) log is still authoritative.
    config.step_down_rounds = 60;
    let mut cluster = Cluster::build(spec(config, seed, record));
    let old = cluster.wait_for_leader(3000).expect("initial leader"); // lint:allow(unwrap-expect)
    let c1 = cluster.client(0).via(old);
    c1.write(&mut cluster.neat, "k1", 1);

    let minority = [old, cluster.clients[0]];
    let majority = rest_of(&cluster.neat.world.node_ids(), &minority);
    let p = cluster.neat.partition_complete(&minority, &majority);

    // Pad the old master's log with writes that fail to replicate.
    c1.write(&mut cluster.neat, "k2", 2);
    c1.write(&mut cluster.neat, "k3", 3);
    c1.write(&mut cluster.neat, "k4", 4);

    // Wait until the majority elects a new master, then commit a write there.
    let deadline = cluster.neat.now() + 1200;
    let rest = rest_of(&cluster.servers, &[old]);
    while cluster.neat.now() < deadline && {
        !rest
            .iter()
            .any(|&s| cluster.neat.world.app(s).server().role() == Role::Leader)
    } {
        cluster.neat.sleep(10);
    }
    let new_leader = rest
        .iter()
        .copied()
        .find(|&s| cluster.neat.world.app(s).server().role() == Role::Leader)
        .expect("majority side leader"); // lint:allow(unwrap-expect)
    let c2 = cluster.client(1).via(new_leader);
    c2.write(&mut cluster.neat, "k5", 5);

    cluster.neat.heal(&p);
    cluster.settle(2000);
    finish(&mut cluster, &["k1", "k2", "k3", "k4", "k5"])
}

/// Listing 1: a partial partition with an intersecting bridge node yields
/// two simultaneous leaders; writes succeed on both sides; after healing,
/// the election criterion picks one log and the other side's acknowledged
/// write is lost.
pub fn listing1_data_loss(config: Config, seed: u64, record: bool) -> ScenarioOutcome {
    let mut cluster = Cluster::build(spec(config, seed, record));
    let s1 = cluster.wait_for_leader(3000).expect("initial leader"); // lint:allow(unwrap-expect)
    let others = rest_of(&cluster.servers, &[s1]);
    let (s2, _s3) = (others[0], others[1]);

    // Partial partition: {primary, client1} | {s2, client2}; s3 bridges.
    let side1 = [s1, cluster.clients[0]];
    let side2 = [s2, cluster.clients[1]];
    let p = cluster.neat.partition_partial(&side1, &side2);

    // sleep(SLEEP_LEADER_ELECTION_PERIOD): s2 elects itself with the bridge
    // node's vote.
    cluster.settle(600);

    let c1 = cluster.client(0).via(s1);
    let c2 = cluster.client(1).via(s2);
    c1.write(&mut cluster.neat, "obj1", 1);
    c2.write(&mut cluster.neat, "obj2", 2);

    cluster.neat.heal(&p);
    cluster.settle(2000);

    // Listing 1's verification step: client2 reads both objects.
    let leader = cluster.leader().unwrap_or(s1);
    let c2 = c2.via(leader);
    c2.read(&mut cluster.neat, "obj1");
    c2.read(&mut cluster.neat, "obj2");

    finish(&mut cluster, &["obj1", "obj2"])
}

/// Issue #9967: a simplex partition drops the primary→coordinator
/// direction; the coordinator reports failure although the primary applied
/// and committed the operation. A retried increment executes twice
/// (data corruption), and a "failed" write remains visible (dirty read).
pub fn coordinator_double_execution(config: Config, seed: u64, record: bool) -> ScenarioOutcome {
    let coordinator_routing = config.coordinator_routing;
    let mut cluster = Cluster::build(spec(config, seed, record));
    let leader = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let coordinator = rest_of(&cluster.servers, &[leader])[0];

    // Simplex: primary → coordinator replies vanish; everything else flows.
    let p = cluster.neat.partition_simplex(&[leader], &[coordinator]);

    let c1 = cluster.client(0).via(coordinator);
    // The increment "fails" at the coordinator… so the client retries.
    c1.incr(&mut cluster.neat, "counter", 1);
    c1.incr(&mut cluster.neat, "counter", 1);
    // A write that "fails" the same way stays visible to other clients.
    c1.write(&mut cluster.neat, "w", 42);

    cluster.neat.heal(&p);
    cluster.settle(1500);

    let leader_now = cluster.leader().unwrap_or(leader);
    let c2 = cluster.client(1).via(leader_now);
    c2.read(&mut cluster.neat, "w");

    let mut outcome = finish(&mut cluster, &["w"]);
    let final_counter = cluster
        .kv_of(leader_now)
        .get("counter")
        .copied()
        .unwrap_or(0);
    let extra = check_counter(cluster.neat.history(), "counter", 0, final_counter);
    if !extra.is_empty() {
        outcome.timeline = cluster.neat.observe(&extra);
    }
    outcome.violations.extend(extra);
    // Without request routing the operations are refused up front and
    // nothing double-executes; with it, the counter shows the flaw.
    let _ = coordinator_routing;
    outcome
}

/// Jepsen-Redis: asynchronous replication acknowledges writes that exist
/// only on the isolated master; failover then rolls them back.
pub fn async_replication_data_loss(mut config: Config, seed: u64, record: bool) -> ScenarioOutcome {
    config.step_down_rounds = 20;
    let mut cluster = Cluster::build(spec(config, seed, record));
    let old = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let c1 = cluster.client(0).via(old);

    let minority = [old, cluster.clients[0]];
    let majority = rest_of(&cluster.neat.world.node_ids(), &minority);
    let p = cluster.neat.partition_complete(&minority, &majority);

    // Acknowledged instantly under async replication — on the wrong side.
    c1.write(&mut cluster.neat, "k", 1);

    cluster.settle(600);
    cluster.neat.heal(&p);
    cluster.settle(2000);
    finish(&mut cluster, &["k"])
}

/// Aerospike [140]-style: the latest-operation-timestamp consolidation
/// criterion lets an old leader whose log merely *contains* a late
/// (failed!) write win the merge — resurrecting a successfully deleted
/// key on the majority side.
pub fn timestamp_consolidation_reappearance(
    mut config: Config,
    seed: u64,
    record: bool,
) -> ScenarioOutcome {
    config.step_down_rounds = 60; // the old leader survives to the heal
    let mut cluster = Cluster::build(spec(config, seed, record));
    let old = cluster.wait_for_leader(3000).expect("initial leader"); // lint:allow(unwrap-expect)
    let c1 = cluster.client(0).via(old);
    // The doomed record, fully replicated.
    c1.write(&mut cluster.neat, "doomed", 1);

    let minority = [old, cluster.clients[0]];
    let majority = rest_of(&cluster.neat.world.node_ids(), &minority);
    let p = cluster.neat.partition_complete(&minority, &majority);

    // The majority elects a new leader and successfully DELETES the record.
    let deadline = cluster.neat.now() + 1200;
    let rest = rest_of(&cluster.servers, &[old]);
    while cluster.neat.now() < deadline
        && !rest
            .iter()
            .any(|&s| cluster.neat.world.app(s).server().role() == Role::Leader)
    {
        cluster.neat.sleep(10);
    }
    let new_leader = rest
        .iter()
        .copied()
        .find(|&s| cluster.neat.world.app(s).server().role() == Role::Leader)
        .expect("majority leader"); // lint:allow(unwrap-expect)
    let c2 = cluster.client(1).via(new_leader);
    c2.delete(&mut cluster.neat, "doomed");

    // Meanwhile the old leader's log gains a LATER timestamp from a write
    // that fails to replicate — enough to win a timestamp-based merge.
    c1.write(&mut cluster.neat, "unrelated", 7);

    cluster.neat.heal(&p);
    cluster.settle(2000);
    finish(&mut cluster, &["doomed"])
}

/// SERVER-14885: a replica with absolute election priority vetoes every
/// other candidate; isolating it leaves the majority unable to elect a
/// leader at all — total write unavailability.
pub fn priority_livelock(config: Config, seed: u64, record: bool) -> ScenarioOutcome {
    let mut cluster = Cluster::build(spec(config, seed, record));
    let leader = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let rest = rest_of(&cluster.servers, &[leader]);

    let p = cluster
        .neat
        .partition_complete(&[leader], &rest_of(&cluster.neat.world.node_ids(), &[leader, cluster.clients[0]]));

    // Give the majority ample time to elect… which it cannot.
    cluster.settle(2000);
    let c2 = cluster.client(1).via(rest[0]);
    let w = c2.write(&mut cluster.neat, "k", 1);

    let majority_leader = rest
        .iter()
        .copied()
        .find(|&s| cluster.neat.world.app(s).server().role() == Role::Leader);

    cluster.neat.heal(&p);
    cluster.settle(2000);

    let mut outcome = finish(&mut cluster, &[]);
    if majority_leader.is_none() && !w.is_ok() {
        let v = Violation::new(
            ViolationKind::DataUnavailability,
            "majority side could not elect a leader; writes unavailable for the whole partition",
        );
        outcome.timeline = cluster.neat.observe(std::slice::from_ref(&v));
        outcome.violations.push(v);
    }
    outcome
}

/// §4.4 MongoDB arbiter thrashing: a partial partition separates the two
/// data replicas while the arbiter reaches both; leadership ping-pongs
/// until the partition heals.
pub fn arbiter_thrashing(mut config: Config, seed: u64, record: bool) -> ScenarioOutcome {
    // Pre-pv1 MongoDB arbiters vote even while they see a healthy primary.
    config.vote_while_connected_to_leader = true;
    let mut cluster = Cluster::build(ClusterSpec {
        servers: 3,
        clients: 1,
        arbiter: true,
        config,
        seed,
        record_trace: record,
    });
    let a = cluster.data_servers()[0];
    let b = cluster.data_servers()[1];
    cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let elections_before = cluster.total_elections();

    let p = cluster.neat.partition_partial(&[a], &[b]);
    cluster.settle(4000);
    let thrash = cluster.total_elections() - elections_before;
    cluster.neat.heal(&p);
    cluster.settle(1500);

    let mut outcome = finish(&mut cluster, &[]);
    outcome.elections = thrash;
    if thrash >= 4 {
        let v = Violation::new(
            ViolationKind::Other,
            format!(
                "leadership thrashed {thrash} times during the partial partition \
                 (availability degradation, §4.4)"
            ),
        );
        outcome.timeline = cluster.neat.observe(std::slice::from_ref(&v));
        outcome.violations.push(v);
    }
    outcome
}

/// Gray failure §2.1: a flapping, totally lossy link strands the client
/// from the leader during its active windows. A fire-and-forget client
/// (`retry = false`) loses every write to the gray window — availability
/// collapses although the cluster itself is healthy; a client retrying
/// with backoff (`retry = true`) rides out the flaps and every write
/// lands. Client-side handling decides the impact.
pub fn gray_lossy_client_writes(retry: bool, seed: u64, record: bool) -> ScenarioOutcome {
    let mut cluster = Cluster::build(spec(Config::fixed(), seed, record));
    let leader = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let c0 = cluster.clients[0];

    // Total loss, flapping with a 600 ms half-period: the link is dead in
    // [1200k, 1200k+600) and healthy in between — the paper's
    // intermittently flaky NIC.
    let flap = 600;
    let d = cluster.neat.degrade(DegradeSpec::flapping(
        vec![c0],
        vec![leader],
        DegradeRule::lossy(1.0),
        flap,
    ));

    // Align to the start of the next degraded window.
    let now = cluster.neat.now();
    cluster.neat.sleep(2 * flap - (now % (2 * flap)) + 5);
    cluster.neat.op_timeout = 150;

    let client = cluster.client(0).via(leader);
    let outcomes = if retry {
        let rc = client.retrying(RetryPolicy::backoff(4, 150, seed));
        vec![
            rc.write(&mut cluster.neat, "gray1", 1),
            rc.write(&mut cluster.neat, "gray2", 2),
        ]
    } else {
        vec![
            client.write(&mut cluster.neat, "gray1", 1),
            client.write(&mut cluster.neat, "gray2", 2),
        ]
    };

    cluster.neat.heal_degrade(&d);
    cluster.neat.op_timeout = 1000;
    cluster.settle(1000);

    let mut outcome = finish(&mut cluster, &["gray1", "gray2"]);
    if outcomes.iter().all(|o| !o.is_ok()) {
        let v = Violation::new(
            ViolationKind::DataUnavailability,
            "every client write was lost to the flapping link; \
             without retries the service is unavailable although the cluster is healthy",
        );
        outcome.timeline = cluster.neat.observe(std::slice::from_ref(&v));
        outcome.violations.push(v);
    }
    outcome
}

/// Gray failure §2.1, simplex: the leader→client direction silently drops
/// every response while requests still arrive and execute. A client that
/// blindly retries its timed-out *increment* (`retry = true`) executes it
/// once per attempt — the history acknowledges at most one increment, the
/// counter shows three: data corruption. A no-retry client (`retry =
/// false`) leaves one ambiguous timeout, which the checker accepts.
pub fn gray_simplex_retry_double_incr(retry: bool, seed: u64, record: bool) -> ScenarioOutcome {
    let mut cluster = Cluster::build(spec(Config::fixed(), seed, record));
    let leader = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let c0 = cluster.clients[0];

    let d = cluster.neat.degrade(DegradeSpec::Simplex {
        src: vec![leader],
        dst: vec![c0],
        rule: DegradeRule::lossy(1.0),
    });

    cluster.neat.op_timeout = 300;
    let client = cluster.client(0).via(leader);
    if retry {
        client
            .retrying(RetryPolicy::backoff(3, 100, seed))
            .incr(&mut cluster.neat, "counter", 5);
    } else {
        client.incr(&mut cluster.neat, "counter", 5);
    }

    cluster.neat.heal_degrade(&d);
    cluster.neat.op_timeout = 1000;
    cluster.settle(1000);

    let mut outcome = finish(&mut cluster, &[]);
    let leader_now = cluster.leader().unwrap_or(leader);
    let final_counter = cluster
        .kv_of(leader_now)
        .get("counter")
        .copied()
        .unwrap_or(0);
    let extra = check_counter(cluster.neat.history(), "counter", 0, final_counter);
    if !extra.is_empty() {
        outcome.timeline = cluster.neat.observe(&extra);
    }
    outcome.violations.extend(extra);
    outcome
}

/// Gray failure §2.1: a duplicating client→leader link delivers every
/// request twice. A non-idempotent increment (`idempotent = false`)
/// executes twice while the history acknowledges it once — data
/// corruption; an idempotent put (`idempotent = true`) is harmlessly
/// re-applied and the checkers stay quiet.
pub fn gray_duplicating_link_incr(idempotent: bool, seed: u64, record: bool) -> ScenarioOutcome {
    let mut cluster = Cluster::build(spec(Config::fixed(), seed, record));
    let leader = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let c0 = cluster.clients[0];

    let d = cluster.neat.degrade(DegradeSpec::Simplex {
        src: vec![c0],
        dst: vec![leader],
        rule: DegradeRule::duplicating(1.0),
    });

    let client = cluster.client(0).via(leader);
    if idempotent {
        client.write(&mut cluster.neat, "dup_key", 7);
    } else {
        client.incr(&mut cluster.neat, "counter", 3);
    }

    cluster.neat.heal_degrade(&d);
    cluster.settle(1000);

    let keys: &[&str] = if idempotent { &["dup_key"] } else { &[] };
    let mut outcome = finish(&mut cluster, keys);
    if !idempotent {
        let leader_now = cluster.leader().unwrap_or(leader);
        let final_counter = cluster
            .kv_of(leader_now)
            .get("counter")
            .copied()
            .unwrap_or(0);
        let extra = check_counter(cluster.neat.history(), "counter", 0, final_counter);
        if !extra.is_empty() {
            outcome.timeline = cluster.neat.observe(&extra);
        }
        outcome.violations.extend(extra);
    }
    outcome
}

/// Gray failure §2.1: the leader's outbound links degrade to a crawl —
/// not severed, merely slow. Replication acks arrive after the leader's
/// replication timeout; the flawed apply-then-replicate profile answers
/// *failure* while the local apply survives, and the next local read
/// serves the failed value — a dirty read from a link that never dropped
/// a single message. [`Config::fixed`] keeps the outcome ambiguous and
/// applies only after commit, so nothing dirty becomes visible.
pub fn gray_slow_replication_dirty_read(
    mut config: Config,
    seed: u64,
    record: bool,
) -> ScenarioOutcome {
    // The leader's own heartbeat acks come back late too; it must not step
    // down before serving the read that exposes the dirty value.
    config.step_down_rounds = 30;
    let mut cluster = Cluster::build(spec(config, seed, record));
    let leader = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let followers = rest_of(&cluster.servers, &[leader]);

    // 260 ms of extra latency: past the 200 ms replication timeout, but a
    // *constant* shift — heartbeats keep their spacing, so the cluster
    // never suspects a partition.
    let d = cluster.neat.degrade(DegradeSpec::Simplex {
        src: vec![leader],
        dst: followers,
        rule: DegradeRule::slow(260, 0),
    });

    let c1 = cluster.client(0).via(leader);
    c1.write(&mut cluster.neat, "slow_key", 20);
    c1.read(&mut cluster.neat, "slow_key");

    cluster.neat.heal_degrade(&d);
    cluster.settle(2000);
    finish(&mut cluster, &["slow_key"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_dirty_and_stale_reads_on_voltdb_profile() {
        let out = dirty_and_stale_read(Config::voltdb(), 7, false);
        assert!(out.has(ViolationKind::DirtyRead), "{:?}", out.violations);
        assert!(out.has(ViolationKind::StaleRead), "{:?}", out.violations);
    }

    #[test]
    fn figure2_clean_on_fixed_profile() {
        let out = dirty_and_stale_read(Config::fixed(), 7, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn mongodb_profile_also_shows_stale_reads() {
        let out = dirty_and_stale_read(Config::mongodb(), 11, false);
        assert!(out.has(ViolationKind::StaleRead), "{:?}", out.violations);
    }

    #[test]
    fn longest_log_erases_committed_write() {
        let out = longest_log_data_loss(Config::voltdb(), 5, false);
        assert!(out.has(ViolationKind::DataLoss), "{:?}", out.violations);
        // Specifically, the majority's k5 must be the casualty.
        assert_eq!(out.final_state.get("k5"), Some(&None));
    }

    #[test]
    fn longest_log_scenario_clean_on_fixed_profile() {
        let out = longest_log_data_loss(Config::fixed(), 5, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn listing1_loses_one_side_on_elasticsearch_profile() {
        let out = listing1_data_loss(Config::elasticsearch(), 3, false);
        assert!(out.has(ViolationKind::DataLoss), "{:?}", out.violations);
    }

    #[test]
    fn listing1_clean_on_fixed_profile() {
        let out = listing1_data_loss(Config::fixed(), 3, false);
        assert!(
            !out.has(ViolationKind::DataLoss),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn coordinator_retry_double_executes() {
        let out = coordinator_double_execution(Config::elasticsearch(), 8, false);
        assert!(
            out.has(ViolationKind::DataCorruption),
            "{:?}",
            out.violations
        );
        assert!(out.has(ViolationKind::DirtyRead), "{:?}", out.violations);
    }

    #[test]
    fn coordinator_scenario_clean_on_fixed_profile() {
        let out = coordinator_double_execution(Config::fixed(), 8, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn async_replication_loses_acked_write() {
        let out = async_replication_data_loss(Config::redis(), 13, false);
        assert!(out.has(ViolationKind::DataLoss), "{:?}", out.violations);
    }

    #[test]
    fn sync_replication_does_not_lose_the_write() {
        let out = async_replication_data_loss(Config::fixed(), 13, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn timestamp_merge_resurrects_deleted_data() {
        let out = timestamp_consolidation_reappearance(Config::mongodb(), 23, false);
        assert!(
            out.has(ViolationKind::ReappearanceOfDeletedData),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn term_based_merge_keeps_the_delete() {
        let out = timestamp_consolidation_reappearance(Config::fixed(), 23, false);
        assert!(
            !out.has(ViolationKind::ReappearanceOfDeletedData),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn priority_veto_causes_unavailability() {
        let out = priority_livelock(Config::mongodb_with_priority(0), 17, false);
        assert!(
            out.has(ViolationKind::DataUnavailability),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn no_priority_no_unavailability() {
        let out = priority_livelock(Config::mongodb(), 17, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn arbiter_thrashing_under_partial_partition() {
        let out = arbiter_thrashing(Config::mongodb(), 19, false);
        assert!(out.elections >= 4, "only {} elections", out.elections);
        assert!(out.has(ViolationKind::Other));
    }

    #[test]
    fn flapping_link_strands_the_no_retry_client() {
        let out = gray_lossy_client_writes(false, 8, false);
        assert!(
            out.has(ViolationKind::DataUnavailability),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn backoff_retries_ride_out_the_flapping_link() {
        let out = gray_lossy_client_writes(true, 8, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // The retried writes actually landed.
        assert_eq!(out.final_state.get("gray1"), Some(&Some(1)));
        assert_eq!(out.final_state.get("gray2"), Some(&Some(2)));
    }

    #[test]
    fn blind_retry_of_increment_double_executes() {
        let out = gray_simplex_retry_double_incr(true, 8, false);
        assert!(
            out.has(ViolationKind::DataCorruption),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn single_ambiguous_timeout_is_not_corruption() {
        let out = gray_simplex_retry_double_incr(false, 8, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn duplicating_link_corrupts_the_counter() {
        let out = gray_duplicating_link_incr(false, 8, false);
        assert!(
            out.has(ViolationKind::DataCorruption),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn idempotent_puts_tolerate_duplication() {
        let out = gray_duplicating_link_incr(true, 8, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.final_state.get("dup_key"), Some(&Some(7)));
    }

    #[test]
    fn slow_replication_dirty_read_on_voltdb_profile() {
        let out = gray_slow_replication_dirty_read(Config::voltdb(), 8, false);
        assert!(out.has(ViolationKind::DirtyRead), "{:?}", out.violations);
    }

    #[test]
    fn slow_replication_clean_on_fixed_profile() {
        let out = gray_slow_replication_dirty_read(Config::fixed(), 8, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn no_thrashing_without_the_connected_vote_flaw() {
        // With the veto in place the arbiter refuses to elect a second
        // leader while the current one is healthy.
        let mut cfg = Config::fixed();
        cfg.vote_while_connected_to_leader = false;
        let mut cluster = Cluster::build(ClusterSpec {
            servers: 3,
            clients: 1,
            arbiter: true,
            config: cfg,
            seed: 19,
            record_trace: false,
        });
        let a = cluster.data_servers()[0];
        let b = cluster.data_servers()[1];
        cluster.wait_for_leader(3000).expect("leader");
        let before = cluster.total_elections();
        let p = cluster.neat.partition_partial(&[a], &[b]);
        cluster.settle(4000);
        let thrash = cluster.total_elections() - before;
        cluster.neat.heal(&p);
        assert!(thrash <= 2, "unexpected thrashing: {thrash}");
    }
}
