//! A primary-backup replicated key-value store with pluggable policies,
//! modelling the paper's most-studied failure family.
//!
//! One protocol core reproduces, depending on the [`Config`] profile:
//!
//! | Profile | Paper failures |
//! |---|---|
//! | [`Config::voltdb`] | Figure 2 dirty/stale reads (ENG-10389), longest-log data loss (ENG-10486) |
//! | [`Config::mongodb`] | stale reads (SERVER-17975), rollback data loss, priority livelock (SERVER-14885), arbiter thrashing (§4.4) |
//! | [`Config::elasticsearch`] | Listing 1 data loss (#2488), intersecting split brain, coordinator double execution (#9967) |
//! | [`Config::redis`] | async-replication data loss (Jepsen: Redis) |
//! | [`Config::fixed`] | none — the ablation baseline |
//!
//! The [`scenarios`] module packages each failure as a reusable, seeded
//! scenario returning the violations the NEAT checkers detected.

pub mod client;
pub mod explored;
pub mod explorer;
pub mod cluster;
pub mod config;
pub mod load;
pub mod msg;
pub mod scenarios;
pub mod server;

pub use client::{KvClient, RetryingKvClient};
pub use cluster::{Cluster, ClusterSpec, Proc};
pub use config::{Config, ElectionPolicy, ReadPolicy, Replication};
pub use msg::{Entry, EntryOp, LogSummary, Msg, Req, Resp};
pub use server::{Role, Server};
pub use explorer::RepkvTarget;
