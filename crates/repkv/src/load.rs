//! Load-driven reproductions: the paper's failures exercised under
//! sustained traffic from a [`workload::Driver`] instead of a handful of
//! hand-placed operations.
//!
//! The point of the family is *load dependence*: several of the flaws
//! modelled here are invisible to the legacy low-op drive (one or two
//! carefully timed requests) and only manifest once a workload keeps the
//! system busy while the fault is active — retry storms need enough
//! requests for a response to drop, torn batches need a batch to be in
//! flight when the partition lands, and hot-key divergence needs both
//! sides of a split brain to keep writing. Each scenario emits periodic
//! [`obs::Event::Load`](neat::obs) samples so the forensic timeline shows
//! issue/complete/in-flight curves next to the fault windows.

use std::collections::BTreeMap;

use neat::{
    checkers::{check_counter, check_register, RegisterSemantics},
    rest_of, DegradeSpec, Outcome, RetryPolicy, Violation, ViolationKind,
};
use simnet::DegradeRule;
use workload::{Arrival, Driver, Keyspace, Mix, OpKind, OpStatus, Pacing, WorkloadSpec};

use crate::{
    cluster::{Cluster, ClusterSpec},
    config::Config,
    scenarios::ScenarioOutcome,
};

/// Emit one [`obs`](neat::obs) load sample every this many driven ops.
const SAMPLE_EVERY: u64 = 10;

fn spec(config: Config, seed: u64, record: bool) -> ClusterSpec {
    ClusterSpec {
        record_trace: record,
        ..ClusterSpec::three_by_two(config, seed)
    }
}

/// Maps a client-observed [`Outcome`] onto the driver's accounting.
fn status_of(o: &Outcome) -> OpStatus {
    match o {
        Outcome::Ok(_) | Outcome::OkMany(_) => OpStatus::Ok,
        Outcome::Fail => OpStatus::Fail,
        Outcome::Timeout => OpStatus::Timeout,
    }
}

/// Sleeps virtual time up to the op's scheduled arrival (no-op when the
/// simulation is already past it — the op runs *behind*, which the driver
/// accounts as lag).
fn pace(cluster: &mut Cluster, at: u64) {
    let now = cluster.neat.now();
    if at > now {
        cluster.neat.sleep(at - now);
    }
}

/// Emits a periodic load sample into the observability stream.
fn sample(cluster: &mut Cluster, driver: &Driver, seq: u64) {
    if seq % SAMPLE_EVERY == 0 {
        cluster.neat.load_sample(
            driver.issued(),
            driver.report().completed,
            driver.in_flight(),
            driver.behind(),
        );
    }
}

/// Runs the register checker and assembles the common outcome fields,
/// folding the driver's final report into the trace summary.
fn finish(cluster: &mut Cluster, keys: &[&str], driver: Driver) -> ScenarioOutcome {
    let report = driver.into_report();
    cluster.neat.load_sample(
        report.issued,
        report.completed,
        report.issued - report.completed,
        report.behind,
    );
    let final_state = cluster.final_state(keys);
    let violations = check_register(
        cluster.neat.history(),
        RegisterSemantics::Strong,
        &final_state,
    );
    let timeline = cluster.neat.observe(&violations);
    ScenarioOutcome {
        violations,
        elections: cluster.total_elections(),
        trace: format!("{} | load {}", cluster.neat.world.trace().summary(), report.render()),
        final_state,
        history: cluster.neat.history().render(),
        timeline,
    }
}

/// Retry storm under gray loss (§2.1): the leader→client direction drops
/// a fraction of responses while requests keep arriving and executing. An
/// open-loop Poisson stream of non-idempotent increments through a
/// backoff-retrying client (`retry = true`) re-executes every increment
/// whose ack was eaten — under sustained load some response *will* drop,
/// and the counter runs ahead of what the history acknowledges: data
/// corruption. The fixed arm (`retry = false`) leaves isolated ambiguous
/// timeouts, which the checker accepts.
///
/// The violation is load-dependent by construction: see
/// [`load_retry_storm_gray_loss_with_ops`] — a legacy low-op drive of the
/// same choreography finds nothing at the campaign seed.
pub fn load_retry_storm_gray_loss(retry: bool, seed: u64, record: bool) -> ScenarioOutcome {
    load_retry_storm_gray_loss_with_ops(retry, seed, record, 60)
}

/// [`load_retry_storm_gray_loss`] with the op count exposed: `ops` is the
/// length of the increment stream. Two ops model the legacy hand-placed
/// drive; sixty model real traffic.
pub fn load_retry_storm_gray_loss_with_ops(
    retry: bool,
    seed: u64,
    record: bool,
    ops: u64,
) -> ScenarioOutcome {
    let mut cluster = Cluster::build(spec(Config::fixed(), seed, record));
    let leader = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let c0 = cluster.clients[0];

    // Gray, not severed: 40% of responses vanish on the way back.
    let d = cluster.neat.degrade(DegradeSpec::Simplex {
        src: vec![leader],
        dst: vec![c0],
        rule: DegradeRule::lossy(0.4),
    });

    cluster.neat.op_timeout = 200;
    let client = cluster.client(0).via(leader);
    let policy = RetryPolicy::backoff(4, 100, seed);

    let mut driver = Driver::new(
        WorkloadSpec {
            pacing: Pacing::Open(Arrival::Poisson { rate: 120.0 }),
            keyspace: Keyspace::Uniform { keys: 1 },
            mix: Mix::incrs(),
            ops,
            batch: 0,
            start_at: cluster.neat.now(),
        },
        seed,
    );
    while let Some(op) = driver.next_op() {
        pace(&mut cluster, op.at);
        let start = cluster.neat.now();
        let outcome = if retry {
            client.retrying(policy).incr(&mut cluster.neat, "counter", 1)
        } else {
            client.incr(&mut cluster.neat, "counter", 1)
        };
        driver.complete(&op, start, cluster.neat.now(), status_of(&outcome));
        sample(&mut cluster, &driver, op.seq);
    }

    cluster.neat.heal_degrade(&d);
    cluster.neat.op_timeout = 1000;
    cluster.settle(1000);

    let leader_now = cluster.leader().unwrap_or(leader);
    let final_counter = cluster.kv_of(leader_now).get("counter").copied().unwrap_or(0);
    let mut outcome = finish(&mut cluster, &[], driver);
    let extra = check_counter(cluster.neat.history(), "counter", 0, final_counter);
    if !extra.is_empty() {
        outcome.timeline = cluster.neat.observe(&extra);
    }
    outcome.violations.extend(extra);
    outcome
}

/// Overload during partition and heal: an open-loop rate ramp of reads
/// and writes keeps hammering the old leader while a complete partition
/// isolates it and then heals. Under the flawed profile every write that
/// times out replication is answered *failure* yet stays applied
/// (apply-before-commit), and the continuing read stream serves those
/// failed values straight back — dirty reads at load, repeating as fast
/// as the workload does. [`Config::fixed`] keeps failed writes invisible
/// and fails reads once the lease lapses: clean.
pub fn load_overload_during_heal(mut config: Config, seed: u64, record: bool) -> ScenarioOutcome {
    // The old leader must keep serving through the fault window.
    config.step_down_rounds = 30;
    let mut cluster = Cluster::build(spec(config, seed, record));
    let old = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let client = cluster.client(0).via(old);

    let keys = ["load0", "load1", "load2", "load3"];
    let t0 = cluster.neat.now();
    let install_at = t0 + 500;
    let heal_at = t0 + 1600;

    cluster.neat.op_timeout = 300;
    let mut driver = Driver::new(
        WorkloadSpec {
            pacing: Pacing::Open(Arrival::Ramp {
                from: 40.0,
                to: 120.0,
                ramp_ms: 2500,
            }),
            keyspace: Keyspace::Zipfian { keys: keys.len(), theta: 0.9 },
            mix: Mix::read_write(1, 2),
            ops: 90,
            batch: 0,
            start_at: t0,
        },
        seed,
    );

    let minority = [old, cluster.clients[0]];
    let majority = rest_of(&cluster.neat.world.node_ids(), &minority);
    let mut partition = None;
    while let Some(op) = driver.next_op() {
        if partition.is_none() && op.at >= install_at && op.at < heal_at {
            partition = Some(cluster.neat.partition_complete(&minority, &majority));
        }
        if op.at >= heal_at {
            if let Some(p) = partition.take() {
                cluster.neat.heal(&p);
            }
        }
        pace(&mut cluster, op.at);
        let key = keys[op.key];
        let start = cluster.neat.now();
        let outcome = match op.kind {
            OpKind::Read => client.read(&mut cluster.neat, key),
            _ => client.write(&mut cluster.neat, key, op.val),
        };
        driver.complete(&op, start, cluster.neat.now(), status_of(&outcome));
        sample(&mut cluster, &driver, op.seq);
    }
    if let Some(p) = partition.take() {
        cluster.neat.heal(&p);
    }

    cluster.neat.op_timeout = 1000;
    cluster.settle(2000);
    finish(&mut cluster, &keys, driver)
}

/// Hot-key contention across a partial partition: a closed-loop pair of
/// virtual clients — one per side of an intersecting split brain — keeps
/// writing a zipf-hot key. Under the flawed Elasticsearch-style profile
/// both leaders acknowledge writes to the same key; consolidation after
/// the heal keeps one log and every acknowledged write on the losing side
/// is gone — data loss scaling with the traffic. The fixed profile never
/// elects the second leader, so the minority client's writes fail
/// honestly and nothing acknowledged is lost.
pub fn load_hot_key_partition(config: Config, seed: u64, record: bool) -> ScenarioOutcome {
    let mut cluster = Cluster::build(spec(config, seed, record));
    let s1 = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let others = rest_of(&cluster.servers, &[s1]);
    let s2 = others[0];

    // Partial partition: {s1, client1} | {s2, client2}; s3 bridges both.
    let side1 = [s1, cluster.clients[0]];
    let side2 = [s2, cluster.clients[1]];
    let p = cluster.neat.partition_partial(&side1, &side2);
    cluster.settle(600); // the flawed profile elects s2 with the bridge vote

    let keys = ["hot", "cold0", "cold1", "cold2"];
    cluster.neat.op_timeout = 250;
    let clients = [cluster.client(0).via(s1), cluster.client(1).via(s2)];
    let mut driver = Driver::new(
        WorkloadSpec {
            pacing: Pacing::Closed { clients: 2, think_ms: 15 },
            keyspace: Keyspace::HotKey { keys: keys.len(), hot_mass: 0.75 },
            mix: Mix::writes(),
            ops: 60,
            batch: 0,
            start_at: cluster.neat.now(),
        },
        seed,
    );
    while let Some(op) = driver.next_op() {
        pace(&mut cluster, op.at);
        let start = cluster.neat.now();
        let outcome = clients[op.client].write(&mut cluster.neat, keys[op.key], op.val);
        driver.complete(&op, start, cluster.neat.now(), status_of(&outcome));
        sample(&mut cluster, &driver, op.seq);
    }

    cluster.neat.heal(&p);
    cluster.neat.op_timeout = 1000;
    cluster.settle(2000);
    finish(&mut cluster, &keys, driver)
}

/// Batched-write atomicity under a simplex partition: the driver issues
/// multi-key batches the client expects to land atomically; right after
/// one batch is acknowledged, the leader→follower direction goes dark.
/// The flawed early-ack path has only drip-fed the first entry by then —
/// the acknowledged tail is stranded and dies with the leadership: the
/// surviving state holds *part* of an atomically-acknowledged batch
/// (data corruption), and batches acked during the dark window vanish
/// whole (data loss). The fixed `atomic_batch` path acknowledges only
/// after the entire batch commits, so the same choreography leaves
/// nothing torn.
pub fn load_batched_write_atomicity(config: Config, seed: u64, record: bool) -> ScenarioOutcome {
    let mut cluster = Cluster::build(spec(config, seed, record));
    let leader = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    let followers = rest_of(&cluster.servers, &[leader]);
    let mut client = cluster.client(0).via(leader);

    const GROUPS: usize = 4;
    const TEAR_SEQ: u64 = 3; // partition lands right after this batch's ack
    let group_keys = |g: usize| [format!("g{g}a"), format!("g{g}b"), format!("g{g}c")];

    cluster.neat.op_timeout = 400;
    let mut driver = Driver::new(
        WorkloadSpec {
            pacing: Pacing::Open(Arrival::Poisson { rate: 40.0 }),
            keyspace: Keyspace::Uniform { keys: GROUPS },
            mix: Mix::writes(),
            ops: 12,
            batch: 3,
            start_at: cluster.neat.now(),
        },
        seed,
    );

    // Last batch per group: (val, acked Ok). Timeouts clear the slot — an
    // unknown-outcome batch may legitimately materialize fully or not at
    // all, so the group can no longer be judged by its predecessor.
    let mut last_acked: BTreeMap<usize, Option<u64>> = BTreeMap::new();
    let mut partition = None;
    let mut heal_at = None;
    while let Some(op) = driver.next_op() {
        if let (Some(p), Some(at)) = (&partition, heal_at) {
            if op.at >= at {
                cluster.neat.heal(p);
                partition = None;
                // The old leader has stepped down; follow the new one.
                cluster.settle(400);
                if let Some(l) = cluster.leader() {
                    client = client.via(l);
                }
            }
        }
        pace(&mut cluster, op.at);
        let names = group_keys(op.key);
        let ops: Vec<(&str, u64)> = names.iter().map(|k| (k.as_str(), op.val)).collect();
        let start = cluster.neat.now();
        let outcome = client.batch(&mut cluster.neat, &ops);
        match outcome {
            Outcome::Ok(_) | Outcome::OkMany(_) => {
                last_acked.insert(op.key, Some(op.val));
            }
            Outcome::Timeout => {
                last_acked.insert(op.key, None);
            }
            Outcome::Fail => {}
        }
        driver.complete(&op, start, cluster.neat.now(), status_of(&outcome));
        sample(&mut cluster, &driver, op.seq);
        if op.seq == TEAR_SEQ {
            // The client already holds the Ok; under the flawed profile the
            // batch tail is still drip-replicating when the link goes dark.
            partition = Some(cluster.neat.partition_simplex(&[leader], &followers));
            heal_at = Some(cluster.neat.now() + 700);
        }
    }
    if let Some(p) = partition.take() {
        cluster.neat.heal(&p);
    }

    cluster.neat.op_timeout = 1000;
    cluster.settle(2000);

    let all_keys: Vec<String> = (0..GROUPS).flat_map(|g| group_keys(g).to_vec()).collect();
    let key_refs: Vec<&str> = all_keys.iter().map(String::as_str).collect();
    let mut outcome = finish(&mut cluster, &key_refs, driver);

    // All-or-nothing audit per group (the register checker cannot see
    // batch semantics — [`KvClient::batch`] records one opaque op).
    let mut extra = Vec::new();
    for (g, acked) in &last_acked {
        let vals: Vec<Option<u64>> = group_keys(*g)
            .iter()
            .map(|k| outcome.final_state.get(k.as_str()).copied().flatten())
            .collect();
        let uniform = vals.windows(2).all(|w| w[0] == w[1]);
        if !uniform {
            extra.push(Violation::new(
                ViolationKind::DataCorruption,
                format!(
                    "atomically-acknowledged batch torn: group {g} survives as {vals:?} \
                     ({}/3 entries durable)",
                    vals.iter().filter(|v| v.is_some()).count()
                ),
            ));
        } else if let Some(val) = acked {
            if vals[0] != Some(*val) {
                extra.push(Violation::new(
                    ViolationKind::DataLoss,
                    format!(
                        "acknowledged batch lost whole: group {g} should hold {val}, \
                         holds {:?}",
                        vals[0]
                    ),
                ));
            }
        }
    }
    if !extra.is_empty() {
        outcome.timeline = cluster.neat.observe(&extra);
    }
    outcome.violations.extend(extra);
    outcome
}

/// One shard of the sharded open-loop read ladder: a healthy fixed-profile
/// cluster seeded with four keys, then `ops` pure reads from a Poisson
/// stream. The report is a pure function of `shard` alone, so merging the
/// eight shard reports in index order yields byte-identical output no
/// matter how many fleet jobs ran them — that is the determinism claim
/// `BENCH_workload.json` records.
///
/// Reads only, on purpose: replication clones the full log per write, so
/// a million-write stream would cost quadratic work. Reads leave the log
/// at its seeded length and keep the million-op run linear.
pub fn open_loop_read_shard(shard: u64, ops: u64) -> workload::LoadReport {
    let seed = 0xB01D_FACE ^ shard.wrapping_mul(0x9E37_79B9);
    let mut cluster = Cluster::build(spec(Config::fixed(), seed, false));
    let mut leader = cluster.wait_for_leader(3000).expect("leader"); // lint:allow(unwrap-expect)
    // A transient claimant can win the wait at some seeds; settle and
    // re-read so the stream targets the stable leader.
    cluster.settle(500);
    leader = cluster.leader().unwrap_or(leader);

    let keys = ["r0", "r1", "r2", "r3"];
    for (i, k) in keys.iter().enumerate() {
        cluster
            .client(0)
            .via(leader)
            .write(&mut cluster.neat, k, shard * 10 + i as u64 + 1);
    }

    let mut driver = Driver::new(
        WorkloadSpec {
            pacing: Pacing::Open(Arrival::Poisson { rate: 200.0 }),
            keyspace: Keyspace::Uniform { keys: keys.len() },
            mix: Mix::read_write(1, 0),
            ops,
            batch: 0,
            start_at: cluster.neat.now(),
        },
        seed,
    );
    while let Some(op) = driver.next_op() {
        pace(&mut cluster, op.at);
        if let Some(l) = cluster.leader() {
            leader = l;
        }
        let start = cluster.neat.now();
        let outcome = cluster.client(0).via(leader).read(&mut cluster.neat, keys[op.key]);
        driver.complete(&op, start, cluster.neat.now(), status_of(&outcome));
    }
    driver.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_storm_corrupts_the_counter_under_load() {
        let out = load_retry_storm_gray_loss(true, 8, false);
        assert!(
            out.has(ViolationKind::DataCorruption),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn no_retries_no_storm() {
        let out = load_retry_storm_gray_loss(false, 8, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn retry_storm_is_load_dependent() {
        // The same flawed choreography driven the legacy way — a couple of
        // hand-placed ops — finds nothing at the campaign seed; only the
        // sustained stream exposes the corruption.
        let low = load_retry_storm_gray_loss_with_ops(true, 8, false, 2);
        assert!(low.violations.is_empty(), "{:?}", low.violations);
        let full = load_retry_storm_gray_loss(true, 8, false);
        assert!(
            full.has(ViolationKind::DataCorruption),
            "{:?}",
            full.violations
        );
    }

    #[test]
    fn overload_during_heal_dirty_reads_on_flawed_profile() {
        let out = load_overload_during_heal(Config::voltdb(), 8, false);
        assert!(out.has(ViolationKind::DirtyRead), "{:?}", out.violations);
    }

    #[test]
    fn overload_during_heal_clean_on_fixed_profile() {
        let out = load_overload_during_heal(Config::fixed(), 8, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn hot_key_split_brain_loses_acked_writes() {
        let out = load_hot_key_partition(Config::elasticsearch(), 8, false);
        assert!(out.has(ViolationKind::DataLoss), "{:?}", out.violations);
    }

    #[test]
    fn hot_key_clean_on_fixed_profile() {
        let out = load_hot_key_partition(Config::fixed(), 8, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn simplex_partition_tears_the_early_acked_batch() {
        let out = load_batched_write_atomicity(Config::voltdb(), 8, false);
        assert!(
            out.has(ViolationKind::DataCorruption) || out.has(ViolationKind::DataLoss),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn atomic_batches_survive_the_same_partition() {
        let out = load_batched_write_atomicity(Config::fixed(), 8, false);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn read_shard_reports_are_a_pure_function_of_the_shard() {
        let a = open_loop_read_shard(3, 200);
        let b = open_loop_read_shard(3, 200);
        assert_eq!(a, b);
        assert_eq!(a.issued, 200);
        assert_eq!(a.ok, 200, "healthy cluster must answer every read: {}", a.render());
        assert_ne!(a.render(), open_loop_read_shard(4, 200).render());
    }

    #[test]
    fn load_scenarios_emit_load_samples() {
        let out = load_retry_storm_gray_loss(false, 8, true);
        assert!(out.timeline.counters.load_samples > 0);
        assert!(
            out.timeline
                .events
                .iter()
                .any(|e| e.label() == "load"),
            "recorded timeline should carry load events"
        );
        assert!(out.trace.contains("load issued="));
    }
}
