//! Delta-minimized regression schedules for the primary-backup KV family.
//!
//! These plans were mined by the coverage-guided explorer
//! (`neat::explore::explore_full`) against the VoltDB-style flawed
//! configuration and shrunk to 1-minimal nemesis sequences with
//! `neat::explore::minimize::ddmin`. Each survives as a permanent
//! campaign scenario: the schedule is baked (victim generalized to the
//! elected leader at the replay seed, client op seeds kept verbatim), so
//! replay reproduces the original violation on the flawed arm and passes
//! clean on the repaired baseline.

use neat::{
    explore::{run_schedule, EventChoice, SchedulePlan, ScheduleStep, TestTarget},
    fault::{rest_of, PartitionSpec},
    Violation,
};
use simnet::NodeId;

use crate::{explorer::RepkvTarget, Config};

/// Op seed of the single surviving write, kept verbatim from the mined
/// trial so the replayed client draws the same key and client index.
pub const WRITE_SEED: u64 = 10_492_150_018_496_043_109;

/// The 1-minimal schedule: simplex-silence the leader (followers cannot
/// reach it, it still reaches them), then issue one write. The leader
/// keeps accepting the write while the deposed majority elects a rival —
/// the divergent histories consolidate into [`DataCorruption`] at heal.
///
/// [`DataCorruption`]: neat::ViolationKind::DataCorruption
pub fn simplex_leader_write_plan(servers: &[NodeId], leader: NodeId) -> SchedulePlan {
    SchedulePlan {
        steps: vec![
            ScheduleStep::Partition(PartitionSpec::Simplex {
                src: rest_of(servers, &[leader]),
                dst: vec![leader],
            }),
            ScheduleStep::Client(EventChoice::Write, WRITE_SEED),
        ],
    }
}

/// Replays the minimized schedule against `config` at `seed`, returning
/// the campaign triple (violations, rendered plan, timeline).
pub fn explored_simplex_leader_write(
    config: Config,
    seed: u64,
    record: bool,
) -> (Vec<Violation>, String, neat::obs::Timeline) {
    let mut target = RepkvTarget::new(config);
    target.reset(seed, record);
    let servers = target.servers();
    let leader = target.leader().unwrap_or(servers[0]);
    let plan = simplex_leader_write_plan(&servers, leader);
    let violations = run_schedule(&mut target, &plan);
    let rendered = plan.render();
    (violations, rendered, target.timeline())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat::explore::minimize::is_one_minimal;
    use neat::ViolationKind;

    #[test]
    fn replay_reproduces_data_corruption_on_the_flawed_arm() {
        for seed in [8u64, 42] {
            let (violations, plan, _) =
                explored_simplex_leader_write(Config::voltdb(), seed, false);
            assert!(
                violations
                    .iter()
                    .any(|v| v.kind == ViolationKind::DataCorruption),
                "seed {seed}: {plan} produced {violations:?}"
            );
        }
    }

    #[test]
    fn replay_is_clean_on_the_repaired_baseline() {
        for seed in [8u64, 42] {
            let (violations, plan, _) = explored_simplex_leader_write(Config::fixed(), seed, false);
            assert!(
                violations.is_empty(),
                "seed {seed}: {plan} produced {violations:?}"
            );
        }
    }

    #[test]
    fn the_baked_schedule_is_one_minimal() {
        let mut probe = RepkvTarget::new(Config::voltdb());
        probe.reset(8, false);
        let servers = probe.servers();
        let leader = probe.leader().unwrap_or(servers[0]);
        let plan = simplex_leader_write_plan(&servers, leader);
        let mut target = RepkvTarget::new(Config::voltdb());
        assert!(is_one_minimal(&plan.steps, |steps| {
            target.reset(8, false);
            run_schedule(&mut target, &SchedulePlan {
                steps: steps.to_vec()
            })
            .iter()
            .any(|v| v.kind == ViolationKind::DataCorruption)
        }));
    }
}
