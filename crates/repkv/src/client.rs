//! Client process and the synchronous client wrapper used by tests.

use std::collections::BTreeMap;

use neat::{Neat, Op, OpRecord, Outcome, RetryPolicy};
use simnet::{Ctx, NodeId};

use crate::{
    cluster::Proc,
    msg::{Msg, Req, Resp},
};

/// The client-side process: fires requests at a server and collects
/// responses by operation id.
#[derive(Default)]
pub struct ClientProc {
    next_op: u64,
    results: BTreeMap<u64, Resp>,
}

impl ClientProc {
    /// Sends `req` to `server`, returning the operation id to poll.
    pub fn start(&mut self, ctx: &mut Ctx<'_, Msg>, server: NodeId, req: Req) -> u64 {
        // Operation ids are globally unique (client id in the high bits) so
        // coordinator timers on different servers never collide.
        let op_id = (ctx.id().0 as u64) << 32 | self.next_op;
        self.next_op += 1;
        ctx.send(server, Msg::ClientReq { op_id, req });
        op_id
    }

    /// Removes and returns the response for `op_id`, if it arrived.
    pub fn take(&mut self, op_id: u64) -> Option<Resp> {
        self.results.remove(&op_id)
    }

    pub(crate) fn on_message(&mut self, msg: Msg) {
        if let Msg::ClientResp { op_id, resp } = msg {
            self.results.insert(op_id, resp);
        }
    }
}

/// A synchronous client handle bound to one client node and one target
/// server — the `Client` wrapper class of the paper's NEAT API (§6.1).
///
/// Every call drives the simulation until the operation completes or the
/// engine's `op_timeout` elapses, records the [`OpRecord`] in the engine's
/// history, and returns the [`Outcome`].
#[derive(Clone, Copy, Debug)]
pub struct KvClient {
    /// The client node issuing requests.
    pub node: NodeId,
    /// The server the client talks to.
    pub target: NodeId,
}

impl KvClient {
    /// Points this handle at a different server.
    pub fn via(self, target: NodeId) -> Self {
        Self { target, ..self }
    }

    /// Wraps this handle in a retry loop: operations that time out are
    /// re-sent under `policy`'s backoff schedule.
    pub fn retrying(self, policy: RetryPolicy) -> RetryingKvClient {
        RetryingKvClient {
            inner: self,
            policy,
        }
    }

    /// One request/response attempt; does not touch the history.
    fn attempt(&self, neat: &mut Neat<Proc>, req: &Req) -> Outcome {
        let target = self.target;
        let req = req.clone();
        let started = neat.world.call(self.node, |p, ctx| {
            p.client_mut().start(ctx, target, req.clone())
        });
        match started {
            Err(_) => Outcome::Timeout,
            Ok(op_id) => {
                let node = self.node;
                let resp = neat.run_op(
                    |_| Ok(()),
                    |w| w.app_mut(node).client_mut().take(op_id),
                );
                match resp {
                    Some(Resp::Ok) => Outcome::Ok(None),
                    Some(Resp::Value(v)) => Outcome::Ok(v),
                    Some(Resp::Fail) => Outcome::Fail,
                    None => Outcome::Timeout,
                }
            }
        }
    }

    /// Runs one *logical* operation under `policy`, recording exactly one
    /// history record no matter how many attempts were made — the checkers
    /// judge what the client believes happened, not the wire traffic, so a
    /// retried non-idempotent op that executes twice server-side surfaces
    /// as data corruption rather than as two innocent-looking records.
    fn run_with(&self, neat: &mut Neat<Proc>, req: Req, op: Op, policy: &RetryPolicy) -> Outcome {
        let start = neat.now();
        let mut outcome = Outcome::Timeout;
        for attempt in 1..=policy.max_attempts.max(1) {
            if attempt > 1 {
                neat.sleep(policy.delay_before(attempt - 1));
            }
            outcome = self.attempt(neat, &req);
            if !matches!(outcome, Outcome::Timeout) {
                break;
            }
        }
        let end = neat.now();
        neat.record(OpRecord {
            client: self.node,
            op,
            outcome: outcome.clone(),
            start,
            end,
        });
        outcome
    }

    fn run(&self, neat: &mut Neat<Proc>, req: Req, op: Op) -> Outcome {
        self.run_with(neat, req, op, &RetryPolicy::none())
    }

    /// Writes `val` to `key`.
    pub fn write(&self, neat: &mut Neat<Proc>, key: &str, val: u64) -> Outcome {
        self.run(
            neat,
            Req::Write {
                key: key.into(),
                val,
            },
            Op::Write {
                key: key.into(),
                val,
            },
        )
    }

    /// Reads `key`.
    pub fn read(&self, neat: &mut Neat<Proc>, key: &str) -> Outcome {
        self.run(
            neat,
            Req::Read { key: key.into() },
            Op::Read { key: key.into() },
        )
    }

    /// Deletes `key`.
    pub fn delete(&self, neat: &mut Neat<Proc>, key: &str) -> Outcome {
        self.run(
            neat,
            Req::Delete { key: key.into() },
            Op::Delete { key: key.into() },
        )
    }

    /// Writes every `(key, val)` pair as one batch the client expects to
    /// land atomically. The history records a single logical operation;
    /// all-or-nothing is the *scenario's* assertion against the final
    /// state, not a register-checker property.
    pub fn batch(&self, neat: &mut Neat<Proc>, ops: &[(&str, u64)]) -> Outcome {
        let req = Req::Batch {
            ops: ops.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
        };
        let keys: Vec<&str> = ops.iter().map(|(k, _)| *k).collect();
        let label = format!("batch[{}]", keys.join("+"));
        self.run(neat, req, Op::Other { label })
    }

    /// Adds `by` to the counter at `key` (non-idempotent).
    pub fn incr(&self, neat: &mut Neat<Proc>, key: &str, by: u64) -> Outcome {
        self.run(
            neat,
            Req::Incr {
                key: key.into(),
                by,
            },
            Op::Incr {
                key: key.into(),
                by,
            },
        )
    }
}

/// A [`KvClient`] that re-sends timed-out operations under a
/// [`RetryPolicy`] — the retry-with-backoff side of the paper's
/// observation that client-side handling decides a gray failure's impact.
///
/// Each logical operation still records exactly one [`OpRecord`]: the
/// first attempt's start, the final attempt's end, and the final outcome.
/// Retries of non-idempotent operations (e.g. [`RetryingKvClient::incr`])
/// may execute server-side more than once; the counter checker then sees
/// more increments than the history acknowledges.
#[derive(Clone, Copy, Debug)]
pub struct RetryingKvClient {
    /// The underlying single-shot client.
    pub inner: KvClient,
    /// The backoff schedule applied to timed-out attempts.
    pub policy: RetryPolicy,
}

impl RetryingKvClient {
    /// Points this handle at a different server.
    pub fn via(self, target: NodeId) -> Self {
        Self {
            inner: self.inner.via(target),
            ..self
        }
    }

    /// Writes `val` to `key`, retrying timeouts (idempotent: safe).
    pub fn write(&self, neat: &mut Neat<Proc>, key: &str, val: u64) -> Outcome {
        self.inner.run_with(
            neat,
            Req::Write {
                key: key.into(),
                val,
            },
            Op::Write {
                key: key.into(),
                val,
            },
            &self.policy,
        )
    }

    /// Reads `key`, retrying timeouts (idempotent: safe).
    pub fn read(&self, neat: &mut Neat<Proc>, key: &str) -> Outcome {
        self.inner.run_with(
            neat,
            Req::Read { key: key.into() },
            Op::Read { key: key.into() },
            &self.policy,
        )
    }

    /// Adds `by` to the counter at `key`, retrying timeouts — dangerous:
    /// the increment is not idempotent, so a retry whose predecessor
    /// actually executed doubles the effect.
    pub fn incr(&self, neat: &mut Neat<Proc>, key: &str, by: u64) -> Outcome {
        self.inner.run_with(
            neat,
            Req::Incr {
                key: key.into(),
                by,
            },
            Op::Incr {
                key: key.into(),
                by,
            },
            &self.policy,
        )
    }
}
