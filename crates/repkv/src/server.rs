//! The replica server: heartbeats, elections, replication, consolidation.
//!
//! The protocol is a deliberately ordinary primary-backup design — the kind
//! the paper's studied systems implement — with every documented flaw kept
//! behind a [`Config`] toggle:
//!
//! - leaders serve reads from their local copy ([`ReadPolicy::LocalPrimary`]);
//! - writes are applied locally *before* replication acknowledges
//!   (`apply_before_commit`), so a failed write can linger (Figure 2);
//! - replication timeouts produce explicit failure answers
//!   (`fail_on_repl_timeout`) even though the local apply survives;
//! - election victory criteria are pluggable (longest log, latest
//!   timestamp, lowest id) and, on consolidation, the *losing* leader
//!   truncates its log to match the winner — the data-loss mechanism of
//!   Listing 1 and ENG-10486;
//! - voters may grant votes while still connected to a live leader
//!   (issue #2488), and an arbiter that grants a vote tells the old leader
//!   to step down, producing the leadership thrashing of §4.4.

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;
use simnet::{Ctx, NodeId, Time, TimerId};

use crate::{
    config::{Config, ElectionPolicy, ReadPolicy, Replication},
    msg::{Entry, EntryOp, LogSummary, Msg, Req, Resp},
};

/// Timer tags.
const TAG_ELECTION: u64 = 1;
const TAG_HEARTBEAT: u64 = 2;
/// Replication deadline for the pending write at log index `tag - TAG_REPL`.
const TAG_REPL: u64 = 1_000;
/// Coordinator deadline for the forwarded op `tag - TAG_COORD`.
const TAG_COORD: u64 = 2_000_000;

/// A server's replication role.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    Follower,
    Candidate,
    Leader,
}

/// Where to deliver the answer for an in-flight mutation.
#[derive(Clone, Debug)]
enum ReplyTo {
    Client { client: NodeId, op_id: u64 },
    Coord { coord: NodeId, client: NodeId, op_id: u64 },
}

#[derive(Debug)]
struct Pending {
    reply: ReplyTo,
    acks: BTreeSet<NodeId>,
    needed: usize,
}

/// One replica (or arbiter) of the replicated key-value store.
pub struct Server {
    me: NodeId,
    /// All servers, including the arbiter, sorted.
    servers: Vec<NodeId>,
    arbiter: Option<NodeId>,
    cfg: Config,
    /// `true` for the vote-only arbiter (MongoDB §4.4).
    pub is_arbiter: bool,

    // Persistent state (survives crashes).
    term: u64,
    log: Vec<Entry>,
    committed: usize,
    voted_in: u64,

    // Volatile state.
    role: Role,
    leader_hint: Option<NodeId>,
    votes: BTreeSet<NodeId>,
    last_leader_contact: Time,
    lease_until: Time,
    missed_ack_rounds: u32,
    hb_acks: BTreeSet<NodeId>,
    pending: BTreeMap<usize, Pending>,
    coord_pending: BTreeMap<u64, NodeId>,
    /// Last fully-acked log length per replica (Raft's matchIndex): lets a
    /// leader commit a majority-replicated prefix even when no client ack
    /// is pending for it — e.g. tail entries inherited from the previous
    /// leadership.
    match_len: BTreeMap<NodeId, usize>,
    /// Tail of an early-acked non-atomic batch, appended one entry per
    /// replication round trip (empty when `cfg.atomic_batch`).
    batch_queue: Vec<(String, u64)>,
    kv: BTreeMap<String, u64>,
    /// Count of elections this node has won, for thrash measurements.
    pub elections_won: u64,
}

impl Server {
    /// Creates a server. `servers` must contain `me` and be the same (sorted)
    /// list on every node; `arbiter`, if any, must be one of them.
    pub fn new(me: NodeId, servers: Vec<NodeId>, arbiter: Option<NodeId>, cfg: Config) -> Self {
        let is_arbiter = arbiter == Some(me);
        Self {
            me,
            servers,
            arbiter,
            cfg,
            is_arbiter,
            term: 0,
            log: Vec::new(),
            committed: 0,
            voted_in: 0,
            role: Role::Follower,
            leader_hint: None,
            votes: BTreeSet::new(),
            last_leader_contact: 0,
            lease_until: 0,
            missed_ack_rounds: 0,
            hb_acks: BTreeSet::new(),
            pending: BTreeMap::new(),
            coord_pending: BTreeMap::new(),
            match_len: BTreeMap::new(),
            batch_queue: Vec::new(),
            kv: BTreeMap::new(),
            elections_won: 0,
        }
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The applied key-value state (for final-state inspection).
    pub fn kv(&self) -> &BTreeMap<String, u64> {
        &self.kv
    }

    /// The replicated log (for assertions).
    pub fn log(&self) -> &[Entry] {
        &self.log
    }

    /// Committed prefix length.
    pub fn committed(&self) -> usize {
        self.committed
    }

    /// Data replicas (everyone but the arbiter).
    fn data_replicas(&self) -> Vec<NodeId> {
        self.servers
            .iter()
            .copied()
            .filter(|s| Some(*s) != self.arbiter)
            .collect()
    }

    /// Votes needed to win an election (majority of all servers).
    fn vote_majority(&self) -> usize {
        self.servers.len() / 2 + 1
    }

    /// Total applies (including the leader's own) needed to ack a write.
    fn needed_acks(&self) -> usize {
        let n = self.data_replicas().len();
        match self.cfg.replication {
            Replication::Async => 1,
            Replication::SyncMajority => n / 2 + 1,
            Replication::SyncAll => n,
        }
    }

    fn lease_duration(&self) -> Time {
        self.cfg.heartbeat_interval * 3
    }

    /// This node's log summary.
    pub fn summary(&self) -> LogSummary {
        LogSummary {
            term: self.term,
            log_len: self.log.len(),
            committed: self.committed,
            last_ts: self.log.last().map(|e| e.ts).unwrap_or(0),
        }
    }

    /// Applied prefix under the configured apply discipline.
    fn apply_bound(&self) -> usize {
        if self.cfg.apply_before_commit {
            self.log.len()
        } else {
            self.committed
        }
    }

    /// Rebuilds the visible store by replaying the applied prefix.
    fn rebuild_kv(&mut self) {
        self.kv.clear();
        let bound = self.apply_bound();
        for i in 0..bound {
            let e = self.log[i].clone();
            Self::apply_to(&mut self.kv, &e);
        }
    }

    fn apply_to(kv: &mut BTreeMap<String, u64>, e: &Entry) {
        match &e.op {
            EntryOp::Put(v) => {
                kv.insert(e.key.clone(), *v);
            }
            EntryOp::Delete => {
                kv.remove(&e.key);
            }
            EntryOp::Incr(by) => {
                *kv.entry(e.key.clone()).or_insert(0) += by;
            }
        }
    }

    /// Does a candidate with summary `cand` satisfy this voter's criterion?
    fn candidate_acceptable(&self, cand: &LogSummary, cand_id: NodeId) -> bool {
        let mine = self.summary();
        if let Some(p) = self.cfg.priority_node {
            // Conflicting criteria (SERVER-14885): voters veto any candidate
            // that is not the priority node; the priority node itself is
            // still subject to the freshness criterion below.
            if cand_id != self.servers[p] {
                return false;
            }
        }
        match self.cfg.election {
            ElectionPolicy::LongestLog => cand.log_len >= mine.log_len,
            ElectionPolicy::LatestTimestamp => cand.last_ts >= mine.last_ts,
            ElectionPolicy::LowestId => true,
            ElectionPolicy::MajorityFreshest => {
                (cand.committed, cand.log_len) >= (mine.committed, mine.log_len)
            }
        }
    }

    /// When two leaders meet, does `self` beat the rival with summary
    /// `other`? The loser steps down and truncates to the winner's log.
    fn consolidation_wins(&self, other: &LogSummary, other_id: NodeId) -> bool {
        let mine = self.summary();
        match self.cfg.election {
            ElectionPolicy::LongestLog => {
                (mine.log_len, other_id.0) > (other.log_len, self.me.0)
            }
            ElectionPolicy::LatestTimestamp => {
                (mine.last_ts, other_id.0) > (other.last_ts, self.me.0)
            }
            ElectionPolicy::LowestId => self.me.0 < other_id.0,
            ElectionPolicy::MajorityFreshest => {
                (mine.term, mine.committed, other_id.0) > (other.term, other.committed, self.me.0)
            }
        }
    }

    fn arm_election_timer(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let base = self.cfg.election_timeout;
        let jitter = ctx.rng().gen_range(0..=base / 2);
        ctx.set_timer(base + jitter, TAG_ELECTION);
    }

    /// Boots (or recovers) the node.
    pub fn start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.role = Role::Follower;
        self.leader_hint = None;
        self.votes.clear();
        self.pending.clear();
        self.coord_pending.clear();
        self.match_len.clear();
        self.batch_queue.clear();
        self.hb_acks.clear();
        self.missed_ack_rounds = 0;
        self.lease_until = 0;
        self.last_leader_contact = ctx.now();
        self.rebuild_kv();
        self.arm_election_timer(ctx);
    }

    fn become_follower(&mut self, ctx: &mut Ctx<'_, Msg>, term: u64, leader: Option<NodeId>) {
        let was_leader = self.role == Role::Leader;
        self.role = Role::Follower;
        self.term = self.term.max(term);
        self.leader_hint = leader;
        self.votes.clear();
        if was_leader {
            ctx.note(format!("steps down (term {})", self.term));
            self.fail_all_pending(ctx);
            // The tail of an early-acked batch dies with the leadership —
            // the client was already told Ok (the torn-batch flaw).
            self.batch_queue.clear();
        }
    }

    /// Answers every pending write according to the timeout policy (used on
    /// step-down; the entries themselves stay in the log — the flaw).
    fn fail_all_pending(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let pending = std::mem::take(&mut self.pending);
        for (_, p) in pending {
            if self.cfg.fail_on_repl_timeout {
                self.reply(ctx, &p.reply, Resp::Fail);
            }
        }
    }

    fn start_election(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.is_arbiter {
            return;
        }
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_in = self.term;
        self.votes = std::iter::once(self.me).collect();
        self.leader_hint = None;
        ctx.note(format!("starts election (term {})", self.term));
        if self.votes.len() >= self.vote_majority() {
            self.become_leader(ctx);
            return;
        }
        let summary = self.summary();
        ctx.broadcast(&self.servers, Msg::RequestVote { summary });
    }

    fn become_leader(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.me);
        self.missed_ack_rounds = 0;
        self.match_len.clear();
        self.hb_acks = std::iter::once(self.me).collect();
        // A majority just voted within the last round trip; that grant is a
        // valid read lease until the first heartbeat round takes over.
        self.lease_until = ctx.now() + self.lease_duration();
        self.elections_won += 1;
        ctx.note(format!("becomes leader (term {})", self.term));
        self.broadcast_heartbeat(ctx);
        self.broadcast_replicate(ctx);
        ctx.set_timer(self.cfg.heartbeat_interval, TAG_HEARTBEAT);
    }

    fn broadcast_heartbeat(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let summary = self.summary();
        ctx.broadcast(&self.servers, Msg::Heartbeat { summary });
    }

    fn broadcast_replicate(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let summary = self.summary();
        let log = self.log.clone();
        let replicas = self.data_replicas();
        ctx.broadcast(
            &replicas,
            Msg::Replicate {
                summary,
                log,
            },
        );
    }

    fn reply(&self, ctx: &mut Ctx<'_, Msg>, to: &ReplyTo, resp: Resp) {
        match to {
            ReplyTo::Client { client, op_id } => ctx.send(
                *client,
                Msg::ClientResp {
                    op_id: *op_id,
                    resp,
                },
            ),
            ReplyTo::Coord {
                coord,
                client,
                op_id,
            } => ctx.send(
                *coord,
                Msg::ForwardResp {
                    op_id: *op_id,
                    client: *client,
                    resp,
                },
            ),
        }
    }

    /// Handles one client mutation or read at the (presumed) leader.
    fn handle_request(&mut self, ctx: &mut Ctx<'_, Msg>, req: Req, reply: ReplyTo) {
        match req {
            Req::Read { key } => {
                let allowed = match self.cfg.read {
                    ReadPolicy::LocalPrimary => true,
                    ReadPolicy::LeasedPrimary => ctx.now() < self.lease_until,
                };
                let resp = if allowed {
                    Resp::Value(self.kv.get(&key).copied())
                } else {
                    Resp::Fail
                };
                self.reply(ctx, &reply, resp);
            }
            Req::Write { .. } | Req::Delete { .. } | Req::Incr { .. } => {
                let (key, op) = match req {
                    Req::Write { key, val } => (key, EntryOp::Put(val)),
                    Req::Delete { key } => (key, EntryOp::Delete),
                    Req::Incr { key, by } => (key, EntryOp::Incr(by)),
                    Req::Read { .. } | Req::Batch { .. } => unreachable!(),
                };
                self.append_entry(ctx, key, op);
                let idx = self.log.len();
                self.ack_at(ctx, idx, reply);
                self.broadcast_replicate(ctx);
            }
            Req::Batch { ops } => {
                if ops.is_empty() {
                    self.reply(ctx, &reply, Resp::Ok);
                    return;
                }
                if self.cfg.atomic_batch {
                    // Fixed: the whole batch is one log unit; the client is
                    // answered once the *last* entry commits, so either every
                    // entry is durable or the client never saw an Ok.
                    for (key, val) in ops {
                        self.append_entry(ctx, key, EntryOp::Put(val));
                    }
                    let idx = self.log.len();
                    self.ack_at(ctx, idx, reply);
                } else {
                    // Flaw: acknowledge on the first entry's append and drip
                    // the tail out one entry per replication round trip — a
                    // partition mid-batch strands the unreplicated suffix.
                    let mut ops = ops.into_iter();
                    if let Some((key, val)) = ops.next() {
                        self.append_entry(ctx, key, EntryOp::Put(val));
                    }
                    self.batch_queue.extend(ops);
                    self.reply(ctx, &reply, Resp::Ok);
                }
                self.broadcast_replicate(ctx);
            }
        }
    }

    /// Appends one entry under the current term, applying it immediately
    /// when the profile applies before commit.
    fn append_entry(&mut self, ctx: &mut Ctx<'_, Msg>, key: String, op: EntryOp) {
        let entry = Entry {
            term: self.term,
            ts: ctx.now(),
            key,
            op,
        };
        self.log.push(entry.clone());
        if self.cfg.apply_before_commit {
            Self::apply_to(&mut self.kv, &entry);
        }
    }

    /// Acknowledges the mutation at log index `idx`: immediately under
    /// asynchronous replication, else once enough replicas ack.
    fn ack_at(&mut self, ctx: &mut Ctx<'_, Msg>, idx: usize, reply: ReplyTo) {
        let needed = self.needed_acks();
        if needed <= 1 {
            // Asynchronous replication: acknowledge right away.
            self.committed = self.committed.max(idx);
            if !self.cfg.apply_before_commit {
                self.rebuild_kv();
            }
            self.reply(ctx, &reply, Resp::Ok);
        } else {
            self.pending.insert(
                idx,
                Pending {
                    reply,
                    acks: std::iter::once(self.me).collect(),
                    needed,
                },
            );
            ctx.set_timer(self.cfg.replication_timeout, TAG_REPL + idx as u64);
        }
    }

    /// Adopts another node's full log (consolidation / sync): the local log
    /// is *replaced*, which is exactly how divergent acknowledged writes
    /// get truncated away in the studied systems.
    fn adopt_log(&mut self, summary: LogSummary, log: Vec<Entry>) {
        self.log = log;
        self.committed = summary.committed.min(self.log.len());
        self.term = self.term.max(summary.term);
        self.rebuild_kv();
    }

    /// Message handler.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::ClientReq { op_id, req } => self.on_client_req(ctx, from, op_id, req),
            Msg::ClientResp { .. } => { /* servers never receive these */ }
            Msg::Forward {
                op_id,
                client,
                req,
            } => {
                if self.role == Role::Leader {
                    self.handle_request(
                        ctx,
                        req,
                        ReplyTo::Coord {
                            coord: from,
                            client,
                            op_id,
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        Msg::ForwardResp {
                            op_id,
                            client,
                            resp: Resp::Fail,
                        },
                    );
                }
            }
            Msg::ForwardResp {
                op_id,
                client,
                resp,
            } => {
                if self.coord_pending.remove(&op_id).is_some() {
                    ctx.send(client, Msg::ClientResp { op_id, resp });
                }
            }
            Msg::Heartbeat { summary } => self.on_heartbeat(ctx, from, summary),
            Msg::HeartbeatAck { term } => {
                if self.role == Role::Leader && term == self.term {
                    self.hb_acks.insert(from);
                }
            }
            Msg::RequestVote { summary } => self.on_request_vote(ctx, from, summary),
            Msg::Vote { term, granted } => {
                if self.role == Role::Candidate && term == self.term && granted {
                    self.votes.insert(from);
                    if self.votes.len() >= self.vote_majority() {
                        self.become_leader(ctx);
                    }
                }
            }
            Msg::StepDown { term } => {
                if self.role == Role::Leader && term > self.term {
                    self.become_follower(ctx, term, None);
                }
            }
            Msg::Replicate { summary, log } => self.on_replicate(ctx, from, summary, log),
            Msg::ReplicateAck { term, acked_len } => self.on_replicate_ack(ctx, from, term, acked_len),
            Msg::SyncReq => {
                if self.role == Role::Leader {
                    let summary = self.summary();
                    let log = self.log.clone();
                    ctx.send(from, Msg::SyncResp { summary, log });
                }
            }
            Msg::SyncResp { summary, log } => {
                self.adopt_log(summary, log);
                self.role = Role::Follower;
                self.leader_hint = Some(from);
                self.last_leader_contact = ctx.now();
                ctx.note(format!(
                    "synced to {from}'s log ({} entries)",
                    self.log.len()
                ));
            }
        }
    }

    fn on_client_req(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, op_id: u64, req: Req) {
        if self.role == Role::Leader {
            self.handle_request(
                ctx,
                req,
                ReplyTo::Client {
                    client: from,
                    op_id,
                },
            );
            return;
        }
        if self.cfg.coordinator_routing {
            if let Some(leader) = self.leader_hint.filter(|l| *l != self.me) {
                self.coord_pending.insert(op_id, from);
                ctx.send(
                    leader,
                    Msg::Forward {
                        op_id,
                        client: from,
                        req,
                    },
                );
                ctx.set_timer(self.cfg.coordinator_timeout, TAG_COORD + op_id);
                return;
            }
        }
        ctx.send(
            from,
            Msg::ClientResp {
                op_id,
                resp: Resp::Fail,
            },
        );
    }

    fn on_heartbeat(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, summary: LogSummary) {
        if self.role == Role::Leader {
            if from == self.me {
                return;
            }
            // Two leaders met: the paper's consolidation moment.
            if self.consolidation_wins(&summary, from) {
                // Assert my leadership back at the rival.
                let mine = self.summary();
                ctx.send(from, Msg::Heartbeat { summary: mine });
            } else {
                ctx.note(format!("loses consolidation to {from}"));
                self.become_follower(ctx, summary.term, Some(from));
                self.last_leader_contact = ctx.now();
                ctx.send(from, Msg::SyncReq);
            }
            return;
        }
        let accept = summary.term >= self.term || self.cfg.followers_accept_any_leader;
        if !accept {
            return;
        }
        self.term = self.term.max(summary.term);
        self.role = Role::Follower;
        self.leader_hint = Some(from);
        self.last_leader_contact = ctx.now();
        ctx.send(from, Msg::HeartbeatAck { term: summary.term });
        // Learn commit advancement announced by the heartbeat.
        if summary.log_len == self.log.len() && summary.committed > self.committed {
            self.committed = summary.committed.min(self.log.len());
            if !self.cfg.apply_before_commit {
                self.rebuild_kv();
            }
        }
        if !self.is_arbiter && summary.log_len != self.log.len() {
            // Divergence after heal or a missed replication: pull the
            // leader's copy (truncating our own if it diverged).
            ctx.send(from, Msg::SyncReq);
        }
    }

    fn on_request_vote(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, summary: LogSummary) {
        // Leader stickiness: a voter that still hears a live leader refuses
        // the vote *without* adopting the candidate's term — otherwise a
        // partitioned node's inflating term would disrupt the healthy side
        // (the problem Raft's pre-vote extension addresses).
        let connected_veto = !self.cfg.vote_while_connected_to_leader
            && self.role != Role::Leader
            && self.leader_hint.is_some()
            && self.leader_hint != Some(from)
            && ctx.now().saturating_sub(self.last_leader_contact) < self.cfg.election_timeout;
        if connected_veto {
            ctx.send(
                from,
                Msg::Vote {
                    term: summary.term,
                    granted: false,
                },
            );
            return;
        }
        if summary.term > self.term {
            if self.role == Role::Leader {
                // A higher-term candidate exists; in the fixed profile the
                // leader steps aside (Raft behaviour). Flawed profiles keep
                // serving (they only learn via consolidation).
                if self.cfg.election == ElectionPolicy::MajorityFreshest {
                    self.become_follower(ctx, summary.term, None);
                } else {
                    self.term = summary.term;
                }
            } else {
                self.term = summary.term;
            }
        }
        let already_voted = self.voted_in >= summary.term;
        let granted = !already_voted && self.candidate_acceptable(&summary, from);
        if granted {
            self.voted_in = summary.term;
            ctx.note(format!("votes for {from} (term {})", summary.term));
            // The paper's arbiter informs the superseded leader (§4.4).
            if self.is_arbiter {
                if let Some(old) = self.leader_hint.filter(|l| *l != from) {
                    ctx.send(old, Msg::StepDown { term: summary.term });
                }
            }
        }
        ctx.send(
            from,
            Msg::Vote {
                term: summary.term,
                granted,
            },
        );
    }

    fn on_replicate(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        summary: LogSummary,
        log: Vec<Entry>,
    ) {
        if self.is_arbiter {
            return;
        }
        if self.role == Role::Leader {
            if self.consolidation_wins(&summary, from) {
                let mine = self.summary();
                ctx.send(from, Msg::Heartbeat { summary: mine });
                return;
            }
            self.become_follower(ctx, summary.term, Some(from));
        }
        let accept = summary.term >= self.term || self.cfg.followers_accept_any_leader;
        if !accept {
            return;
        }
        self.role = Role::Follower;
        self.leader_hint = Some(from);
        self.last_leader_contact = ctx.now();
        self.adopt_log(summary, log);
        ctx.send(
            from,
            Msg::ReplicateAck {
                term: summary.term,
                acked_len: self.log.len(),
            },
        );
    }

    fn on_replicate_ack(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        term: u64,
        acked_len: usize,
    ) {
        if self.role != Role::Leader || term != self.term {
            return;
        }
        let ready: Vec<usize> = self
            .pending
            .iter_mut()
            .filter_map(|(idx, p)| {
                if *idx <= acked_len {
                    p.acks.insert(from);
                }
                (p.acks.len() >= p.needed).then_some(*idx)
            })
            .collect();
        for idx in ready {
            if let Some(p) = self.pending.remove(&idx) {
                self.committed = self.committed.max(idx);
                if !self.cfg.apply_before_commit {
                    self.rebuild_kv();
                }
                self.reply(ctx, &p.reply, Resp::Ok);
            }
        }
        // Raft-style commit advancement: a prefix replicated on a majority
        // is committed even when no client ack is pending for it — this is
        // how a new leader commits tail entries inherited from the previous
        // leadership instead of stranding them forever uncommitted.
        self.match_len.insert(from, acked_len.min(self.log.len()));
        let mut lens: Vec<usize> = self
            .data_replicas()
            .iter()
            .map(|r| {
                if *r == self.me {
                    self.log.len()
                } else {
                    self.match_len.get(r).copied().unwrap_or(0)
                }
            })
            .collect();
        lens.sort_unstable();
        let quorum = lens[lens.len().saturating_sub(self.needed_acks().min(lens.len()))];
        if quorum > self.committed {
            self.committed = quorum;
            if !self.cfg.apply_before_commit {
                self.rebuild_kv();
            }
        }
        // Drip the next entry of an early-acked batch once the follower has
        // caught up to the log as broadcast — one entry per round trip.
        if !self.batch_queue.is_empty() && acked_len >= self.log.len() {
            let (key, val) = self.batch_queue.remove(0);
            self.append_entry(ctx, key, EntryOp::Put(val));
            self.broadcast_replicate(ctx);
        }
    }

    /// Timer handler.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _timer: TimerId, tag: u64) {
        match tag {
            TAG_ELECTION => {
                if self.role != Role::Leader
                    && ctx.now().saturating_sub(self.last_leader_contact)
                        >= self.cfg.election_timeout
                {
                    self.start_election(ctx);
                }
                self.arm_election_timer(ctx);
            }
            TAG_HEARTBEAT => self.on_heartbeat_tick(ctx),
            t if t >= TAG_COORD => {
                let op_id = t - TAG_COORD;
                if let Some(client) = self.coord_pending.remove(&op_id) {
                    // Request routing failure (#9967): report failure even
                    // though the primary may have applied the operation.
                    ctx.send(
                        client,
                        Msg::ClientResp {
                            op_id,
                            resp: Resp::Fail,
                        },
                    );
                }
            }
            t if t >= TAG_REPL => {
                let idx = (t - TAG_REPL) as usize;
                if let Some(p) = self.pending.remove(&idx) {
                    if self.cfg.fail_on_repl_timeout {
                        // Figure 2 step 2: the write "fails", but the local
                        // apply survives in the visible store.
                        self.reply(ctx, &p.reply, Resp::Fail);
                    }
                    // Fixed profile: answer nothing (the client times out;
                    // the outcome is genuinely unknown).
                }
            }
            _ => {}
        }
    }

    fn on_heartbeat_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.role != Role::Leader {
            return;
        }
        let majority = self.vote_majority();
        if self.hb_acks.len() >= majority {
            self.lease_until = ctx.now() + self.lease_duration();
            self.missed_ack_rounds = 0;
        } else {
            self.missed_ack_rounds += 1;
        }
        if self.cfg.step_down_on_lost_majority && self.missed_ack_rounds >= self.cfg.step_down_rounds
        {
            ctx.note("lost majority; stepping down".to_string());
            self.become_follower(ctx, self.term, None);
            return;
        }
        self.hb_acks = std::iter::once(self.me).collect();
        self.broadcast_heartbeat(ctx);
        ctx.set_timer(self.cfg.heartbeat_interval, TAG_HEARTBEAT);
    }

    /// Crash: volatile state is lost; term, vote, log, and commit index are
    /// the node's stable storage.
    pub fn on_crash(&mut self) {
        self.role = Role::Follower;
        self.leader_hint = None;
        self.votes.clear();
        self.pending.clear();
        self.coord_pending.clear();
        self.match_len.clear();
        self.batch_queue.clear();
        self.hb_acks.clear();
        self.kv.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn server_with(cfg: Config) -> Server {
        let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
        Server::new(NodeId(1), servers, None, cfg)
    }

    fn summary(term: u64, log_len: usize, committed: usize, last_ts: Time) -> LogSummary {
        LogSummary {
            term,
            log_len,
            committed,
            last_ts,
        }
    }

    fn push_entries(s: &mut Server, n: usize, base_ts: Time) {
        for i in 0..n {
            s.log.push(Entry {
                term: 1,
                ts: base_ts + i as Time,
                key: format!("k{i}"),
                op: EntryOp::Put(i as u64),
            });
        }
    }

    #[test]
    fn longest_log_criterion_compares_lengths() {
        let mut s = server_with(Config::voltdb());
        push_entries(&mut s, 3, 10);
        assert!(s.candidate_acceptable(&summary(2, 3, 0, 0), NodeId(0)));
        assert!(s.candidate_acceptable(&summary(2, 5, 0, 0), NodeId(0)));
        assert!(!s.candidate_acceptable(&summary(2, 2, 0, 0), NodeId(0)));
    }

    #[test]
    fn latest_timestamp_criterion_compares_timestamps() {
        let mut s = server_with(Config::mongodb());
        push_entries(&mut s, 2, 100); // last ts = 101
        assert!(s.candidate_acceptable(&summary(2, 1, 0, 101), NodeId(0)));
        assert!(s.candidate_acceptable(&summary(2, 1, 0, 500), NodeId(0)));
        assert!(!s.candidate_acceptable(&summary(2, 9, 9, 50), NodeId(0)));
    }

    #[test]
    fn lowest_id_criterion_always_grants() {
        let mut s = server_with(Config::elasticsearch());
        push_entries(&mut s, 5, 10);
        assert!(s.candidate_acceptable(&summary(2, 0, 0, 0), NodeId(2)));
    }

    #[test]
    fn majority_freshest_requires_committed_then_length() {
        let mut s = server_with(Config::fixed());
        push_entries(&mut s, 3, 10);
        s.committed = 2;
        assert!(s.candidate_acceptable(&summary(2, 3, 2, 0), NodeId(0)));
        assert!(s.candidate_acceptable(&summary(2, 4, 3, 0), NodeId(0)));
        assert!(!s.candidate_acceptable(&summary(2, 9, 1, 999), NodeId(0)));
    }

    #[test]
    fn priority_node_vetoes_other_candidates() {
        let mut s = server_with(Config::mongodb_with_priority(0));
        push_entries(&mut s, 1, 10);
        // Candidate node 2 is not the priority node: vetoed.
        assert!(!s.candidate_acceptable(&summary(2, 9, 9, 999), NodeId(2)));
        // The priority node itself passes the freshness criterion.
        assert!(s.candidate_acceptable(&summary(2, 1, 0, 10), NodeId(0)));
        // …but not when stale.
        assert!(!s.candidate_acceptable(&summary(2, 0, 0, 1), NodeId(0)));
    }

    #[test]
    fn consolidation_longest_log_wins() {
        let mut s = server_with(Config::voltdb());
        push_entries(&mut s, 4, 10);
        assert!(s.consolidation_wins(&summary(9, 2, 2, 999), NodeId(2)));
        assert!(!s.consolidation_wins(&summary(1, 6, 0, 0), NodeId(2)));
    }

    #[test]
    fn consolidation_lowest_id_wins() {
        let s = server_with(Config::elasticsearch());
        // `me` is node 1: beats node 2, loses to node 0.
        assert!(s.consolidation_wins(&summary(9, 9, 9, 999), NodeId(2)));
        assert!(!s.consolidation_wins(&summary(0, 0, 0, 0), NodeId(0)));
    }

    #[test]
    fn consolidation_fixed_prefers_higher_term_then_commit() {
        let mut s = server_with(Config::fixed());
        s.term = 3;
        push_entries(&mut s, 2, 10);
        s.committed = 2;
        assert!(s.consolidation_wins(&summary(2, 9, 9, 999), NodeId(2)));
        assert!(!s.consolidation_wins(&summary(4, 0, 0, 0), NodeId(2)));
        // Same term: more committed wins.
        assert!(s.consolidation_wins(&summary(3, 2, 1, 0), NodeId(2)));
    }

    #[test]
    fn needed_acks_per_replication_mode() {
        let mut cfg = Config::fixed();
        cfg.replication = Replication::Async;
        assert_eq!(server_with(cfg.clone()).needed_acks(), 1);
        cfg.replication = Replication::SyncMajority;
        assert_eq!(server_with(cfg.clone()).needed_acks(), 2);
        cfg.replication = Replication::SyncAll;
        assert_eq!(server_with(cfg).needed_acks(), 3);
    }

    #[test]
    fn arbiter_excluded_from_data_replicas() {
        let servers: Vec<NodeId> = (0..3).map(NodeId).collect();
        let s = Server::new(
            NodeId(0),
            servers.clone(),
            Some(NodeId(2)),
            Config::mongodb(),
        );
        assert_eq!(s.data_replicas(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(s.vote_majority(), 2, "the arbiter still votes");
    }

    #[test]
    fn apply_bound_tracks_commit_discipline() {
        let mut flawed = server_with(Config::voltdb());
        push_entries(&mut flawed, 3, 10);
        flawed.committed = 1;
        assert_eq!(flawed.apply_bound(), 3, "apply-before-commit sees everything");

        let mut fixed = server_with(Config::fixed());
        push_entries(&mut fixed, 3, 10);
        fixed.committed = 1;
        assert_eq!(fixed.apply_bound(), 1, "commit-before-apply sees the committed prefix");
    }

    #[test]
    fn rebuild_kv_replays_puts_deletes_incrs() {
        let mut s = server_with(Config::voltdb());
        s.log = vec![
            Entry { term: 1, ts: 1, key: "a".into(), op: EntryOp::Put(5) },
            Entry { term: 1, ts: 2, key: "a".into(), op: EntryOp::Incr(3) },
            Entry { term: 1, ts: 3, key: "b".into(), op: EntryOp::Put(7) },
            Entry { term: 1, ts: 4, key: "b".into(), op: EntryOp::Delete },
        ];
        s.rebuild_kv();
        assert_eq!(s.kv().get("a"), Some(&8));
        assert_eq!(s.kv().get("b"), None);
    }
}
