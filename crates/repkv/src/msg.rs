//! Wire messages, log entries, and client request/response types.

use simnet::{NodeId, Time};

/// A log entry's effect on the key-value store.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EntryOp {
    /// Set the key to a value.
    Put(u64),
    /// Remove the key.
    Delete,
    /// Add to the key's numeric value (non-idempotent, used to expose
    /// double execution).
    Incr(u64),
}

/// One replicated log entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Entry {
    /// Election term under which the entry was created.
    pub term: u64,
    /// Primary-side timestamp, the `LatestTimestamp` election metric.
    pub ts: Time,
    pub key: String,
    pub op: EntryOp,
}

/// A client request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Req {
    Write { key: String, val: u64 },
    Read { key: String },
    Delete { key: String },
    Incr { key: String, by: u64 },
    /// A multi-key write the client expects to land atomically — either
    /// every `(key, val)` pair or none (the `atomic_batch` config toggle
    /// decides whether the server honours that).
    Batch { ops: Vec<(String, u64)> },
}

/// A server response to a client request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Resp {
    /// The mutation was acknowledged.
    Ok,
    /// The mutation (or routing) explicitly failed.
    Fail,
    /// A read's result (`None` = key absent).
    Value(Option<u64>),
}

/// Summary of a node's log, carried on heartbeats and vote requests so
/// voters and rival leaders can apply the election criterion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LogSummary {
    pub term: u64,
    pub log_len: usize,
    pub committed: usize,
    pub last_ts: Time,
}

/// The protocol message set.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Client → server.
    ClientReq { op_id: u64, req: Req },
    /// Server → client.
    ClientResp { op_id: u64, resp: Resp },
    /// Coordinator → primary (Elasticsearch request routing).
    Forward {
        op_id: u64,
        client: NodeId,
        req: Req,
    },
    /// Primary → coordinator.
    ForwardResp {
        op_id: u64,
        client: NodeId,
        resp: Resp,
    },
    /// Leader → all servers, every heartbeat interval.
    Heartbeat { summary: LogSummary },
    /// Server → leader.
    HeartbeatAck { term: u64 },
    /// Candidate → all servers.
    RequestVote { summary: LogSummary },
    /// Voter → candidate.
    Vote { term: u64, granted: bool },
    /// A voter (notably the arbiter) tells a superseded leader to step down.
    StepDown { term: u64 },
    /// Leader → follower: full-log replication (logs are tiny in tests;
    /// shipping the full log models the consolidation step directly).
    Replicate {
        summary: LogSummary,
        log: Vec<Entry>,
    },
    /// Follower → leader: acknowledged log length.
    ReplicateAck { term: u64, acked_len: usize },
    /// A deposed or divergent node asks the leader for a full copy.
    SyncReq,
    /// Full-state answer to [`Msg::SyncReq`].
    SyncResp {
        summary: LogSummary,
        log: Vec<Entry>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_apply_semantics_are_distinct() {
        let put = Entry {
            term: 1,
            ts: 0,
            key: "k".into(),
            op: EntryOp::Put(5),
        };
        let incr = Entry {
            op: EntryOp::Incr(5),
            ..put.clone()
        };
        assert_ne!(put, incr);
    }

    #[test]
    fn summary_is_copyable_for_heartbeats() {
        let s = LogSummary {
            term: 2,
            log_len: 3,
            committed: 1,
            last_ts: 99,
        };
        let t = s;
        assert_eq!(s, t);
    }
}
