//! A [`TestTarget`] adapter so the NEAT explorer can auto-generate
//! workloads and faults against the replicated KV store (§8.1).

use std::collections::BTreeMap;

use neat::{
    checkers::{check_register, RegisterSemantics},
    explore::{EventChoice, TestTarget},
    fault::PartitionSpec,
    gray::DegradeSpec,
    Violation,
};
use rand::{rngs::StdRng, Rng};
use simnet::{NodeId, Time};

use crate::{
    cluster::{Cluster, ClusterSpec},
    config::Config,
};

/// Drives a three-server, two-client deployment of the replicated KV store
/// under explorer-generated faults and events.
pub struct RepkvTarget {
    config: Config,
    cluster: Option<Cluster>,
    next_val: u64,
}

impl RepkvTarget {
    /// Creates an adapter running `config`.
    pub fn new(config: Config) -> Self {
        Self {
            config,
            cluster: None,
            next_val: 0,
        }
    }

    fn cluster(&mut self) -> &mut Cluster {
        self.cluster.as_mut().expect("reset() builds the cluster") // lint:allow(unwrap-expect)
    }

    fn keys() -> [&'static str; 3] {
        ["k0", "k1", "k2"]
    }
}

impl TestTarget for RepkvTarget {
    fn reset(&mut self, seed: u64, record: bool) {
        let mut spec = ClusterSpec::three_by_two(self.config.clone(), seed);
        spec.record_trace = record;
        let mut cluster = Cluster::build(spec);
        cluster.wait_for_leader(3000);
        self.cluster = Some(cluster);
        self.next_val = 0;
    }

    fn servers(&self) -> Vec<NodeId> {
        self.cluster.as_ref().expect("built").servers.clone() // lint:allow(unwrap-expect)
    }

    fn leader(&mut self) -> Option<NodeId> {
        self.cluster().leader()
    }

    fn supported_events(&self) -> Vec<EventChoice> {
        vec![EventChoice::Write, EventChoice::Read, EventChoice::Delete]
    }

    fn inject(&mut self, spec: &PartitionSpec) {
        self.cluster().neat.partition(spec.clone());
    }

    fn degrade(&mut self, spec: &DegradeSpec) {
        self.cluster().neat.degrade(spec.clone());
    }

    fn crash(&mut self, nodes: &[NodeId]) {
        self.cluster().neat.crash(nodes);
    }

    fn restart(&mut self, nodes: &[NodeId]) {
        self.cluster().neat.restart(nodes);
    }

    fn advance(&mut self, ms: Time) {
        self.cluster().neat.sleep(ms);
    }

    fn heal_all(&mut self) {
        let neat = &mut self.cluster().neat;
        neat.heal_all();
        neat.heal_all_degrades();
    }

    fn apply_event(&mut self, ev: EventChoice, rng: &mut StdRng) {
        self.next_val += 1;
        let val = self.next_val;
        let key = Self::keys()[rng.gen_range(0..3)];
        let cluster = self.cluster.as_mut().expect("built"); // lint:allow(unwrap-expect)
        // Clients target the leader when one is visible, else any server —
        // the way real test clients discover primaries.
        let target = cluster
            .leader()
            .unwrap_or(cluster.servers[rng.gen_range(0..cluster.servers.len())]);
        let which = rng.gen_range(0..cluster.clients.len());
        let client = cluster.client(which).via(target);
        match ev {
            EventChoice::Write => {
                client.write(&mut cluster.neat, key, val);
            }
            EventChoice::Read => {
                client.read(&mut cluster.neat, key);
            }
            EventChoice::Delete => {
                client.delete(&mut cluster.neat, key);
            }
            _ => {}
        }
    }

    fn finish_and_check(&mut self) -> Vec<Violation> {
        let cluster = self.cluster.as_mut().expect("built"); // lint:allow(unwrap-expect)
        cluster.neat.heal_all();
        cluster.neat.heal_all_degrades();
        // Schedules may crash without restarting; bring every node back so
        // the checkers judge the healed cluster, not a half-dead one.
        let servers = cluster.servers.clone();
        cluster.neat.restart(&servers);
        cluster.settle(2500);
        let final_state: BTreeMap<String, Option<u64>> = cluster.final_state(&Self::keys());
        check_register(
            cluster.neat.history(),
            RegisterSemantics::Strong,
            &final_state,
        )
    }

    fn timeline(&mut self) -> neat::obs::Timeline {
        self.cluster().neat.timeline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat::explore::{explore, Strategy};

    #[test]
    fn guided_exploration_finds_bugs_in_the_flawed_profile() {
        let mut target = RepkvTarget::new(Config::voltdb());
        let report = explore(&mut target, &Strategy::findings_guided(), 12, 2024);
        assert!(
            report.trials_with_violation > 0,
            "guided exploration should hit the VoltDB flaws: {report:?}"
        );
    }

    #[test]
    fn target_resets_cleanly_between_trials() {
        let mut target = RepkvTarget::new(Config::fixed());
        target.reset(1, false);
        assert_eq!(target.servers().len(), 3);
        assert!(target.leader().is_some());
        target.reset(2, false);
        assert_eq!(target.servers().len(), 3);
    }

    #[test]
    fn recorded_reset_yields_a_live_timeline() {
        let mut target = RepkvTarget::new(Config::fixed());
        target.reset(3, true);
        let servers = target.servers();
        target.inject(&PartitionSpec::isolate(servers[0], servers[1..].to_vec()));
        target.finish_and_check();
        let timeline = target.timeline();
        assert_eq!(
            timeline.fault_windows().len(),
            1,
            "recorded timeline must carry the partition window"
        );
    }
}
