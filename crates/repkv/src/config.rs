//! Configuration: the pluggable policies and flaw toggles.
//!
//! Every design flaw the paper documents for the primary-backup family is an
//! explicit, individually toggleable policy here, so the same protocol core
//! can run as a *flawed* profile (reproducing a studied failure) or as a
//! *fixed* baseline (the ablation the benches compare against).

use simnet::Time;

/// Leader-election victory criterion (Table 4's "electing bad leaders" all
/// stem from the first three).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElectionPolicy {
    /// The node with the longest log wins — VoltDB's criterion; uncommitted
    /// entries count, so a stale minority can erase committed writes
    /// (ENG-10486).
    LongestLog,
    /// The node with the latest operation timestamp wins — MongoDB's
    /// pre-pv1 criterion (SERVER-17975 family).
    LatestTimestamp,
    /// The node with the lowest id wins — Elasticsearch's criterion
    /// (issue #2488, Listing 1).
    LowestId,
    /// The fixed baseline: highest `(term, committed, log length)` wins and
    /// nodes vote at most once per term.
    MajorityFreshest,
}

/// How the leader serves reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadPolicy {
    /// Reply from the local copy without validating leadership — the flaw
    /// behind the paper's dirty/stale read failures (Figure 2).
    LocalPrimary,
    /// Reply only while holding a majority-acknowledged lease; otherwise
    /// fail the read. The fixed baseline.
    LeasedPrimary,
}

/// When a write is acknowledged to the client.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Replication {
    /// Acknowledge after the local apply, replicate in the background —
    /// Redis-style; acknowledged writes die with the old primary.
    Async,
    /// Acknowledge after a majority of data replicas applied the write.
    SyncMajority,
    /// Acknowledge after every data replica applied the write.
    SyncAll,
}

/// Tunable protocol parameters and flaw toggles.
#[derive(Clone, Debug)]
pub struct Config {
    pub election: ElectionPolicy,
    pub read: ReadPolicy,
    pub replication: Replication,
    /// Apply writes to the visible store before replication acknowledges
    /// (`true` = the flawed apply-then-replicate order of Figure 2). The
    /// fixed baseline buffers entries until committed.
    pub apply_before_commit: bool,
    /// On replication timeout, return an explicit *failure* to the client
    /// even though the local apply may survive (`true` = flawed; the fixed
    /// baseline leaves the outcome unknown, which clients observe as a
    /// timeout).
    pub fail_on_repl_timeout: bool,
    /// Allow a node to grant votes while it still receives heartbeats from
    /// a live leader — the Elasticsearch intersecting-split-brain flaw
    /// (issue #2488).
    pub vote_while_connected_to_leader: bool,
    /// Followers accept replication traffic from any node claiming
    /// leadership, regardless of term (part of the Elasticsearch profile).
    pub followers_accept_any_leader: bool,
    /// Non-primary replicas act as coordinators, forwarding client requests
    /// to the primary (Elasticsearch request routing, issue #9967).
    pub coordinator_routing: bool,
    /// Index of a server with absolute election priority; other candidates
    /// are vetoed — combined with a freshness veto this reproduces
    /// MongoDB's conflicting-criteria livelock (SERVER-14885).
    pub priority_node: Option<usize>,
    /// Whether a leader steps down after losing contact with a majority.
    pub step_down_on_lost_majority: bool,
    /// Append multi-key batches to the log as one unit and acknowledge only
    /// once the whole batch commits (`true` = fixed). The flawed default
    /// acknowledges on the first entry's append and drips the tail out one
    /// entry per replication round trip, so a partition mid-batch tears it.
    pub atomic_batch: bool,
    /// Heartbeat broadcast interval, ms.
    pub heartbeat_interval: Time,
    /// Base follower election timeout, ms (jittered up to +50%).
    pub election_timeout: Time,
    /// How long a leader waits for replication acks before giving up, ms.
    pub replication_timeout: Time,
    /// How many heartbeat rounds without a majority of acks before the
    /// leader steps down.
    pub step_down_rounds: u32,
    /// Coordinator wait before reporting a forwarded request failed, ms.
    pub coordinator_timeout: Time,
}

impl Config {
    /// Common defaults shared by every profile.
    fn base(election: ElectionPolicy) -> Self {
        Self {
            election,
            read: ReadPolicy::LocalPrimary,
            replication: Replication::SyncMajority,
            apply_before_commit: true,
            fail_on_repl_timeout: true,
            vote_while_connected_to_leader: false,
            followers_accept_any_leader: false,
            coordinator_routing: false,
            priority_node: None,
            step_down_on_lost_majority: true,
            atomic_batch: false,
            heartbeat_interval: 50,
            election_timeout: 300,
            replication_timeout: 200,
            step_down_rounds: 3,
            coordinator_timeout: 250,
        }
    }

    /// VoltDB-like profile: longest-log election, local-primary reads,
    /// apply-then-replicate (Figure 2, ENG-10389/10486).
    pub fn voltdb() -> Self {
        Self::base(ElectionPolicy::LongestLog)
    }

    /// MongoDB-like profile: latest-timestamp election (SERVER-17975).
    pub fn mongodb() -> Self {
        Self::base(ElectionPolicy::LatestTimestamp)
    }

    /// MongoDB profile with a priority replica whose veto conflicts with
    /// the freshness criterion (SERVER-14885).
    pub fn mongodb_with_priority(priority_node: usize) -> Self {
        Self {
            priority_node: Some(priority_node),
            ..Self::mongodb()
        }
    }

    /// Elasticsearch-like profile: lowest-id election, votes granted while
    /// still connected to a leader, term-less replication acceptance, and
    /// coordinator request routing (issues #2488 and #9967, Listing 1).
    pub fn elasticsearch() -> Self {
        Self {
            vote_while_connected_to_leader: true,
            followers_accept_any_leader: true,
            coordinator_routing: true,
            ..Self::base(ElectionPolicy::LowestId)
        }
    }

    /// Redis-like profile: asynchronous replication acknowledges writes
    /// that only exist on the primary (Jepsen: Redis). Failover itself is
    /// epoch-based (like Sentinel), so the new majority-side master wins
    /// consolidation and the old master's acknowledged writes roll back.
    pub fn redis() -> Self {
        Self {
            replication: Replication::Async,
            ..Self::base(ElectionPolicy::MajorityFreshest)
        }
    }

    /// The fixed baseline: majority-freshest election with one vote per
    /// term, commit-before-apply, leased reads, no explicit failure answers
    /// for unknown outcomes.
    pub fn fixed() -> Self {
        Self {
            read: ReadPolicy::LeasedPrimary,
            apply_before_commit: false,
            fail_on_repl_timeout: false,
            atomic_batch: true,
            ..Self::base(ElectionPolicy::MajorityFreshest)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_in_the_documented_flaws() {
        assert_eq!(Config::voltdb().election, ElectionPolicy::LongestLog);
        assert_eq!(Config::mongodb().election, ElectionPolicy::LatestTimestamp);
        assert_eq!(Config::elasticsearch().election, ElectionPolicy::LowestId);
        assert!(Config::elasticsearch().vote_while_connected_to_leader);
        assert!(Config::elasticsearch().coordinator_routing);
        assert_eq!(Config::redis().replication, Replication::Async);
    }

    #[test]
    fn fixed_profile_disables_every_flaw() {
        let f = Config::fixed();
        assert_eq!(f.election, ElectionPolicy::MajorityFreshest);
        assert_eq!(f.read, ReadPolicy::LeasedPrimary);
        assert!(!f.apply_before_commit);
        assert!(!f.fail_on_repl_timeout);
        assert!(!f.vote_while_connected_to_leader);
        assert!(!f.followers_accept_any_leader);
        assert!(f.priority_node.is_none());
        assert!(f.atomic_batch);
        assert!(!Config::voltdb().atomic_batch, "flawed profiles tear batches");
    }

    #[test]
    fn priority_profile_sets_the_veto_node() {
        assert_eq!(Config::mongodb_with_priority(0).priority_node, Some(0));
    }
}
