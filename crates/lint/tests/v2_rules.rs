//! The new rule families against the committed fixtures, each scanned
//! as if it lived inside a strict simulation crate. Every test also
//! runs the frozen v1 scanner over the same bytes to demonstrate the
//! acceptance criterion: v2 flags what v1 provably misses.

use lint::{analyze_source, scan_source, Finding, Rule};

const STRICT: &str = "crates/repkv/src/fixture.rs";

fn rules(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn aliased_import_is_invisible_to_v1_but_not_v2() {
    let src = include_str!("fixtures/aliased_import.rs");
    assert!(
        lint::v1::scan_source(STRICT, src).is_empty(),
        "v1 should see nothing once the import line is allowed"
    );
    let v2 = scan_source(STRICT, src);
    assert_eq!(rules(&v2), vec![Rule::HashIteration, Rule::HashIteration]);
    // The findings sit on the alias use-sites, not the import.
    assert_eq!(
        v2.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![7, 8],
        "{v2:?}"
    );
    assert!(v2[0].message.contains("resolves to"), "{}", v2[0].message);
}

#[test]
fn aliased_wall_clock_is_invisible_to_v1_but_not_v2() {
    let src = include_str!("fixtures/qualified_path.rs");
    let v1 = lint::v1::scan_source(STRICT, src);
    assert!(
        !rules(&v1).contains(&Rule::WallClock),
        "v1 should miss the aliased Clock: {v1:?}"
    );
    let v2 = scan_source(STRICT, src);
    assert_eq!(
        rules(&v2),
        vec![Rule::WallClock, Rule::WallClock, Rule::HashIteration]
    );
}

#[test]
fn env_read_fires_on_module_import_and_call() {
    let src = include_str!("fixtures/env_read.rs");
    assert!(lint::v1::scan_source(STRICT, src).is_empty());
    let v2 = scan_source(STRICT, src);
    assert_eq!(rules(&v2), vec![Rule::EnvRead, Rule::EnvRead]);
    // But not in a non-simulation crate, and not in a bin target.
    assert!(scan_source("crates/study/src/fixture.rs", src).is_empty());
    assert!(scan_source("crates/repkv/src/main.rs", src).is_empty());
}

#[test]
fn io_in_sim_fires_on_aliased_and_qualified_fs() {
    let src = include_str!("fixtures/io_in_sim.rs");
    assert!(lint::v1::scan_source(STRICT, src).is_empty());
    let v2 = scan_source(STRICT, src);
    assert_eq!(rules(&v2), vec![Rule::IoInSim; 4], "{v2:?}");
    assert!(scan_source("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn float_nondet_fires_on_the_field_only() {
    let src = include_str!("fixtures/float_nondet.rs");
    assert!(lint::v1::scan_source(STRICT, src).is_empty());
    let v2 = scan_source(STRICT, src);
    assert_eq!(rules(&v2), vec![Rule::FloatNondet]);
    assert_eq!(v2[0].line, 7, "{v2:?}");
}

#[test]
fn debug_hash_leak_is_invisible_to_v1_but_not_v2() {
    let src = include_str!("fixtures/debug_hash_leak.rs");
    assert!(
        lint::v1::scan_source(STRICT, src).is_empty(),
        "v1 has no notion of derives or type bodies"
    );
    let v2 = scan_source(STRICT, src);
    assert_eq!(rules(&v2), vec![Rule::DebugHashLeak]);
    assert!(
        v2[0].message.contains("fingerprint"),
        "{}",
        v2[0].message
    );
}

#[test]
fn fixture_allows_all_suppress_something() {
    // Every lint:allow in the fixtures is load-bearing; none may rot
    // into an unused site.
    for src in [
        include_str!("fixtures/aliased_import.rs"),
        include_str!("fixtures/qualified_path.rs"),
        include_str!("fixtures/debug_hash_leak.rs"),
    ] {
        let report = analyze_source(STRICT, src);
        assert!(report.unused_allows.is_empty(), "{:?}", report.unused_allows);
    }
}

#[test]
fn multi_rule_allows_cover_each_listed_rule() {
    let src = "use std::collections::HashMap; // lint:allow(hash-iteration)\n\
               #[derive(Debug)]\n\
               struct S { m: HashMap<u8, u8> } // lint:allow(hash-iteration, debug-hash-leak)\n";
    let report = analyze_source(STRICT, src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.unused_allows.is_empty(), "{:?}", report.unused_allows);
}

#[test]
fn allow_on_the_final_line_without_trailing_newline_counts() {
    let src = "fn f() { x.unwrap() } // lint:allow(unwrap-expect)";
    let report = analyze_source(STRICT, src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.unused_allows.is_empty());
}
