//! The registry-consistency pass: clean against the real checkout,
//! failing against a doctored copy of the golden artifacts.

use std::path::{Path, PathBuf};

use lint::check_registry;

const ARTIFACTS: &[&str] = &[
    "campaign_output.txt",
    "forensics_output.txt",
    "BENCH_forensics.json",
    "BENCH_gray.json",
    "BENCH_perf.json",
    "BENCH_fleet.json",
    "BENCH_workload.json",
    "BENCH_explore.json",
];

fn real_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Copies the real artifacts into a scratch root the test can tamper
/// with, plus an empty `tests/` dir for arm-literal fixtures.
fn scratch_root(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch root");
    }
    std::fs::create_dir_all(dir.join("tests")).expect("create scratch root");
    for artifact in ARTIFACTS {
        std::fs::copy(real_root().join(artifact), dir.join(artifact)).expect(artifact);
    }
    dir
}

fn messages(report: &lint::RegistryReport) -> String {
    report
        .findings
        .iter()
        .map(|f| format!("{f}\n"))
        .collect::<String>()
}

#[test]
fn real_registry_is_consistent() {
    let report = check_registry(&real_root());
    assert_eq!(report.scenarios, 47);
    assert_eq!(report.arms, 93);
    assert!(report.findings.is_empty(), "{}", messages(&report));
}

#[test]
fn untampered_copy_passes_clean() {
    // The pass only reads the six artifacts plus tests/*.rs, so a
    // faithful copy must come out clean too.
    let root = scratch_root("registry_clean");
    let report = check_registry(&root);
    assert!(report.findings.is_empty(), "{}", messages(&report));
}

#[test]
fn injected_forensics_block_for_unregistered_scenario_fails() {
    let root = scratch_root("registry_ghost_block");
    let path = root.join("forensics_output.txt");
    let mut text = std::fs::read_to_string(&path).expect("read copy");
    text.push_str("\n== ghost_scenario — GhostSys (#999) ==\n   verdict: 0 violation(s)\n");
    std::fs::write(&path, text).expect("write tampered copy");

    let report = check_registry(&root);
    let msgs = messages(&report);
    assert!(
        msgs.contains("forensics block `ghost_scenario` names an unregistered scenario"),
        "{msgs}"
    );
}

#[test]
fn renamed_scenario_fails_in_both_directions() {
    // Renaming one block is what a stale artifact looks like after a
    // scenario rename in src/campaign.rs: the old name is unregistered
    // AND the new name has no block.
    let root = scratch_root("registry_renamed");
    let path = root.join("forensics_output.txt");
    let text = std::fs::read_to_string(&path).expect("read copy");
    let tampered = text.replace(
        "== dirty_and_stale_read — ",
        "== dirty_and_stale_read_v2 — ",
    );
    assert_ne!(text, tampered, "expected block header not found");
    std::fs::write(&path, tampered).expect("write tampered copy");

    let msgs = messages(&check_registry(&root));
    assert!(
        msgs.contains("registered scenario `dirty_and_stale_read` has no forensics block"),
        "{msgs}"
    );
    assert!(
        msgs.contains("forensics block `dirty_and_stale_read_v2` names an unregistered scenario"),
        "{msgs}"
    );
}

#[test]
fn stale_arm_counter_fails() {
    let root = scratch_root("registry_stale_arms");
    let path = root.join("BENCH_fleet.json");
    let text = std::fs::read_to_string(&path).expect("read copy");
    let tampered = text.replace("\"arms\": 93", "\"arms\": 92");
    assert_ne!(text, tampered, "expected arms counter not found");
    std::fs::write(&path, tampered).expect("write tampered copy");

    let msgs = messages(&check_registry(&root));
    assert!(
        msgs.contains("BENCH_fleet.json: records 92 arms; the registry has 93"),
        "{msgs}"
    );
}

#[test]
fn dropped_workload_scenario_fails() {
    // Deleting one per_scenario row models a stale artifact after a new
    // load scenario was registered.
    let root = scratch_root("registry_workload_dropped");
    let path = root.join("BENCH_workload.json");
    let text = std::fs::read_to_string(&path).expect("read copy");
    let tampered = text.replace("load_hot_key_partition", "load_hot_key_partition_v2");
    assert_ne!(text, tampered, "expected workload scenario not found");
    std::fs::write(&path, tampered).expect("write tampered copy");

    let msgs = messages(&check_registry(&root));
    assert!(
        msgs.contains(
            "registered load scenario `load_hot_key_partition` missing from per_scenario"
        ),
        "{msgs}"
    );
    assert!(
        msgs.contains(
            "per_scenario entry `load_hot_key_partition_v2` is not a registered load scenario"
        ),
        "{msgs}"
    );
}

#[test]
fn zeroed_workload_ops_counter_fails() {
    let root = scratch_root("registry_workload_zeroed");
    let path = root.join("BENCH_workload.json");
    let text = std::fs::read_to_string(&path).expect("read copy");
    // Zero the first per-scenario ops counter (the ladder's much larger
    // total is untouched by this replacement).
    let needle = "\"ops\": ";
    let at = text.find(needle).expect("an ops counter");
    let end = at + needle.len() + text[at + needle.len()..]
        .find(',')
        .expect("ops value terminator");
    let tampered = format!("{}{needle}0{}", &text[..at], &text[end..]);
    std::fs::write(&path, tampered).expect("write tampered copy");

    let msgs = messages(&check_registry(&root));
    assert!(msgs.contains("drove zero operations"), "{msgs}");
}

#[test]
fn broken_ladder_determinism_verdict_fails() {
    let root = scratch_root("registry_workload_ladder");
    let path = root.join("BENCH_workload.json");
    let text = std::fs::read_to_string(&path).expect("read copy");
    let tampered = text.replace("\"byte_identical\": true", "\"byte_identical\": false");
    assert_ne!(text, tampered, "expected ladder verdict not found");
    std::fs::write(&path, tampered).expect("write tampered copy");

    let msgs = messages(&check_registry(&root));
    assert!(
        msgs.contains("the sharded open-loop ladder no longer merges byte-identically"),
        "{msgs}"
    );
}

#[test]
fn renamed_explored_scenario_fails_in_both_directions() {
    let root = scratch_root("registry_explore_renamed");
    let path = root.join("BENCH_explore.json");
    let text = std::fs::read_to_string(&path).expect("read copy");
    let tampered = text.replace(
        "explored_simplex_heal_write",
        "explored_simplex_heal_write_v2",
    );
    assert_ne!(text, tampered, "expected explored scenario not found");
    std::fs::write(&path, tampered).expect("write tampered copy");

    let msgs = messages(&check_registry(&root));
    assert!(
        msgs.contains(
            "registered explored scenario `explored_simplex_heal_write` missing from minimized"
        ),
        "{msgs}"
    );
    assert!(
        msgs.contains(
            "minimized entry `explored_simplex_heal_write_v2` is not a registered explored scenario"
        ),
        "{msgs}"
    );
}

#[test]
fn broken_one_minimality_verdict_fails() {
    let root = scratch_root("registry_explore_minimality");
    let path = root.join("BENCH_explore.json");
    let text = std::fs::read_to_string(&path).expect("read copy");
    let tampered = text.replace("\"one_minimal\": true", "\"one_minimal\": false");
    assert_ne!(text, tampered, "expected one_minimal verdicts not found");
    std::fs::write(&path, tampered).expect("write tampered copy");

    let msgs = messages(&check_registry(&root));
    assert!(msgs.contains("is not 1-minimal"), "{msgs}");
}

#[test]
fn fallen_coverage_verdict_fails() {
    let root = scratch_root("registry_explore_coverage");
    let path = root.join("BENCH_explore.json");
    let text = std::fs::read_to_string(&path).expect("read copy");
    let tampered = text.replace(
        "\"coverage_strictly_better_targets\": 2",
        "\"coverage_strictly_better_targets\": 1",
    );
    assert_ne!(text, tampered, "expected coverage verdict not found");
    std::fs::write(&path, tampered).expect("write tampered copy");

    let msgs = messages(&check_registry(&root));
    assert!(
        msgs.contains("coverage-guided search beats naive on only 1 targets"),
        "{msgs}"
    );
}

#[test]
fn broken_sharded_exploration_verdict_fails() {
    let root = scratch_root("registry_explore_sharded");
    let path = root.join("BENCH_explore.json");
    let text = std::fs::read_to_string(&path).expect("read copy");
    let tampered = text.replace("\"byte_identical\": true", "\"byte_identical\": false");
    assert_ne!(text, tampered, "expected sharded verdict not found");
    std::fs::write(&path, tampered).expect("write tampered copy");

    let msgs = messages(&check_registry(&root));
    assert!(
        msgs.contains("the sharded exploration no longer merges byte-identically"),
        "{msgs}"
    );
}

#[test]
fn ghost_arm_literal_in_tests_fails() {
    let root = scratch_root("registry_ghost_arm");
    std::fs::copy(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/registry/bogus_arm.rs"),
        root.join("tests/bogus_arm.rs"),
    )
    .expect("copy fixture");

    let msgs = messages(&check_registry(&root));
    assert!(
        msgs.contains(
            "arm literal `ghost_scenario/flawed` names unregistered scenario `ghost_scenario`"
        ),
        "{msgs}"
    );
    // Real arm literals pass: the same file with a registered scenario
    // name produces no finding.
    let root = scratch_root("registry_real_arm");
    std::fs::write(
        root.join("tests/real_arm.rs"),
        "#[test]\nfn drives_a_real_arm() {\n    let _arm = \"dirty_and_stale_read/flawed\";\n}\n",
    )
    .expect("write test file");
    let report = check_registry(&root);
    assert!(report.findings.is_empty(), "{}", messages(&report));
}

#[test]
fn missing_artifact_is_reported_not_panicked() {
    let root = scratch_root("registry_missing");
    std::fs::remove_file(root.join("BENCH_gray.json")).expect("remove artifact");
    let msgs = messages(&check_registry(&root));
    assert!(msgs.contains("BENCH_gray.json: cannot read artifact"), "{msgs}");
}
