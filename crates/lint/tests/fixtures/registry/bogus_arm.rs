//! Fixture: a root-level test referencing an arm whose scenario is not
//! in the campaign registry. The registry pass lexes arm-shaped string
//! literals (`…/flawed`, `…/fixed`) out of `tests/*.rs` and rejects
//! this one.

#[test]
fn drives_a_ghost_arm() {
    let arm = "ghost_scenario/flawed";
    assert!(!arm.is_empty());
}
