//! Fixture: wall-clock reads behind an alias and behind a fully
//! qualified path. The aliased `Clock::now()` never mentions `Instant`,
//! so the textual v1 pass misses it once the import line is allowed.
use std::time::Instant as Clock; // lint:allow(wall-clock)

pub fn stamp() -> Clock {
    Clock::now()
}

pub fn qualified() -> usize {
    std::collections::HashMap::<u8, u8>::new().len()
}
