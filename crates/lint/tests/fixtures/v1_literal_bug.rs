//! Fixture: the two v1 literal-handling bugs, kept as regression input.
//! In `take`, v1's escape handling steps past the `'\\'` literal's
//! closing tick and swallows the rest of the line — including the
//! `.unwrap()`. In `shadow`, `r#unsafe` is a raw identifier, not the
//! `unsafe` keyword, but v1 matched the stripped name.

pub fn shadow() -> u32 { let r#unsafe = 1; r#unsafe }

pub fn take(x: Option<u32>) -> u32 { let _sep = '\\'; x.unwrap() }
