//! Fixture: a hash map smuggled behind an `as` alias. The v1 scanner
//! matched banned names textually, so once the import line carries an
//! allow nothing else in this file ever says `HashMap` — the alias
//! use-sites below are invisible to it.
use std::collections::HashMap as Map; // lint:allow(hash-iteration)

pub fn build() -> Map<u64, u64> {
    Map::new()
}
