//! Fixture: environment reads in simulator code. The process
//! environment is an input the seed does not control; v1 had no rule
//! for it at all.
use std::env;

pub fn seed_override() -> Option<String> {
    env::var("NEAT_SEED").ok()
}
