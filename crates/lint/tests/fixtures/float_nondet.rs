//! Fixture: a float field in protocol state. Accumulation order changes
//! results across refactors; v1 had no rule for it at all.

#[derive(Clone, Copy)]
pub struct Link {
    pub capacity: u64,
    pub loss: f64,
}
