//! Fixture: real filesystem I/O in simulator code, once aliased and
//! once fully qualified. Real I/O breaks deterministic replay; v1 had
//! no rule for it at all.
use std::fs::File as Store;

pub fn open_store(path: &str) -> std::io::Result<Store> {
    Store::open(path)
}

pub fn read_all(path: &str) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}
