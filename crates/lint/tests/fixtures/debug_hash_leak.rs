//! Fixture: a Debug-derived type holding a hash container. Execution
//! fingerprints hash the `{:#?}` rendering, and Debug iterates hash
//! containers in nondeterministic order — a direct fingerprint-poisoning
//! vector v1 could not see (it had no notion of type bodies or derives).
use std::collections::HashMap; // lint:allow(hash-iteration)

#[derive(Clone, Debug)]
pub struct Snapshot {
    pub seq: u64,
    pub entries: HashMap<u64, u64>, // lint:allow(hash-iteration)
}
