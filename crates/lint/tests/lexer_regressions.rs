//! The literal-stripping bugs that motivated the lexer rewrite, pinned
//! against the frozen v1 scanner and the committed fixtures. Each test
//! shows v1 getting a fixture *wrong* and the v2 pass getting it right;
//! if a v1 assertion starts failing, the frozen baseline was touched.

use lint::{scan_source, Rule};

/// Fixtures are scanned as if they lived in a strict simulation crate.
const STRICT: &str = "crates/simnet/src/fixture.rs";

fn rules(findings: &[lint::Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn v1_swallows_the_line_after_a_backslash_char_literal() {
    let src = include_str!("fixtures/v1_literal_bug.rs");
    let v1 = lint::v1::scan_source(STRICT, src);
    // v1 never sees the `.unwrap()` after `'\\'` …
    assert!(
        !rules(&v1).contains(&Rule::UnwrapExpect),
        "v1 bug disappeared: {v1:?}"
    );
    // … but false-positives on the raw identifier `r#unsafe`.
    assert!(
        rules(&v1).contains(&Rule::UnsafeCode),
        "v1 bug disappeared: {v1:?}"
    );

    let v2 = scan_source(STRICT, src);
    assert_eq!(rules(&v2), vec![Rule::UnwrapExpect], "{v2:?}");
}

#[test]
fn lexer_tracks_lines_through_every_fixture() {
    // Every fixture must lex cleanly with monotonically non-decreasing
    // line numbers that stay within the file.
    for src in [
        include_str!("fixtures/aliased_import.rs"),
        include_str!("fixtures/qualified_path.rs"),
        include_str!("fixtures/env_read.rs"),
        include_str!("fixtures/io_in_sim.rs"),
        include_str!("fixtures/float_nondet.rs"),
        include_str!("fixtures/debug_hash_leak.rs"),
        include_str!("fixtures/v1_literal_bug.rs"),
    ] {
        let toks = lint::lex::lex(src);
        assert!(!toks.is_empty());
        let total_lines = src.lines().count();
        let mut prev = 1;
        for t in &toks {
            assert!(t.line >= prev, "line numbers went backwards");
            assert!(t.line <= total_lines, "line {} > {total_lines}", t.line);
            prev = t.line;
        }
    }
}

#[test]
fn nested_block_comments_and_raw_strings_hide_findings() {
    // Both of these defeated naive stripping at some point; the lexer
    // must treat their contents as inert.
    let src = "/* outer /* x.unwrap() */ still comment */\n\
               fn f() -> &'static str { r#\"std::env::var(\"X\")\"# }\n";
    assert!(scan_source(STRICT, src).is_empty());
}
