//! Determinism guard for the workspace.
//!
//! The whole reproduction rests on one property: *same seed ⇒ same
//! execution*. Every scenario, every checker verdict, every regenerated
//! table must be a pure function of the seed, or the campaign results and
//! the trace-divergence auditor are meaningless. This crate enforces that
//! property twice over:
//!
//! - **Statically** ([`scan`]): a token-level pass over every `.rs` file
//!   rejecting the classic nondeterminism sources — hash-order iteration
//!   in the protocol/simulation crates, wall clocks, OS entropy, OS
//!   threads, `unsafe`, and panicking `.unwrap()`/`.expect()` in
//!   non-test simulator code. `// lint:allow(<rule>)` is the escape
//!   hatch for audited exceptions.
//! - **Dynamically** (`cargo run -p lint -- --audit`): every scenario in
//!   [`neat_repro::campaign::registry`] is run twice with the same seed
//!   and the rendered execution fingerprints are compared byte for byte
//!   via [`neat::audit`]. Any divergence is a determinism bug the static
//!   pass missed.
//!
//! The same rules are mirrored into the toolchain via `clippy.toml`
//! (`disallowed-types` / `disallowed-methods`) and `[workspace.lints]`,
//! so `cargo clippy` reports them too; this pass exists so the gate does
//! not depend on clippy being present and so the rules run as an
//! ordinary tier-1 integration test (`tests/lint_gate.rs`).

pub mod scan;

pub use scan::{findings_to_json, scan_source, scan_workspace, Finding, Rule};
