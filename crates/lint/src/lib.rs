//! Determinism guard for the workspace.
//!
//! The whole reproduction rests on one property: *same seed ⇒ same
//! execution*. Every scenario, every checker verdict, every regenerated
//! table must be a pure function of the seed, or the campaign results and
//! the trace-divergence auditor are meaningless. This crate enforces that
//! property twice over:
//!
//! - **Statically** ([`scan`]): every `.rs` file is run through a real
//!   lexer ([`lex`]), its imports resolved per file ([`resolve`]) so
//!   `use std::collections::HashMap as Map;` no longer smuggles a hash
//!   map past the rules, and the token stream checked against eleven
//!   determinism rules — hash-order iteration in the protocol/simulation
//!   crates, wall clocks, OS entropy, OS threads, `unsafe`, panicking
//!   `.unwrap()`/`.expect()` in non-test simulator code, `println!` in
//!   library code, environment reads, filesystem/network I/O in
//!   simulator crates, float fields in protocol state, and
//!   `derive(Debug)` structs that leak hash-ordered maps into
//!   fingerprints. `// lint:allow(<rule>[, <rule>…])` is the escape
//!   hatch for audited exceptions; `--unused-allows` reports directives
//!   that no longer suppress anything. The frozen previous scanner lives
//!   in [`v1`] with pinning tests for the bugs that motivated the
//!   rewrite.
//! - **Registry consistency** ([`registry`]): the scenario/arm IDs in
//!   `src/campaign.rs` are cross-checked against the committed golden
//!   artifacts and the arm literals in the workspace tests, so a renamed
//!   or unregistered scenario fails `lint` instead of silently decaying.
//! - **Dynamically** (`cargo run -p lint -- --audit`): every scenario in
//!   [`neat_repro::campaign::registry`] is run twice with the same seed
//!   and the rendered execution fingerprints are compared byte for byte
//!   via [`neat::audit`]. Any divergence is a determinism bug the static
//!   pass missed.
//!
//! The same rules are mirrored into the toolchain via `clippy.toml`
//! (`disallowed-types` / `disallowed-methods`) and `[workspace.lints]`,
//! so `cargo clippy` reports them too; this pass exists so the gate does
//! not depend on clippy being present and so the rules run as an
//! ordinary tier-1 integration test (`tests/lint_gate.rs`).

pub mod lex;
pub mod registry;
pub mod resolve;
pub mod scan;
pub mod v1;

pub use registry::{check_registry, RegistryFinding, RegistryReport};
pub use scan::{
    analyze_source, analyze_workspace, findings_to_json, scan_source, scan_workspace, FileReport,
    Finding, Rule, ScanStats, UnusedAllow, WorkspaceReport,
};
