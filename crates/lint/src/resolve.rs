//! Per-file import/alias resolution.
//!
//! The v1 scanner matched banned names textually, so `use
//! std::collections::HashMap as Map;` smuggled a hash map past the
//! hash-iteration rule, and `std::env::var` never matched anything at
//! all. This module walks the token stream for `use` declarations —
//! plain paths, `as` renames, nested `{…}` groups, `self`, and globs —
//! and builds a map from each locally visible name to its canonical
//! path. [`crate::scan`] then resolves every path expression it meets
//! through that map before applying the path-based rules.
//!
//! Resolution is per-file and syntactic: it does not chase `crate::`
//! re-exports or `mod` hierarchies. That is exactly the right scope for
//! the determinism rules, which all target absolute `std`/`rand` items.

use std::collections::BTreeMap;

use crate::lex::{Token, TokenKind};

/// The import table of one source file.
#[derive(Default, Debug)]
pub struct Imports {
    /// Local name → canonical path segments (`Map` → `["std",
    /// "collections", "HashMap"]`).
    map: BTreeMap<String, Vec<String>>,
    /// Modules pulled in via `use path::*;`.
    globs: Vec<Vec<String>>,
    /// Number of `use` declarations seen (for scan statistics).
    pub use_decls: usize,
}

/// Items a glob import of a watched `std` module would bring into scope.
/// Only the names the rules care about need to be here.
fn glob_items(module: &[String]) -> &'static [&'static str] {
    match module {
        [a, b] if a == "std" && b == "collections" => &["HashMap", "HashSet"],
        [a, b] if a == "std" && b == "time" => &["Instant", "SystemTime"],
        [a, b] if a == "std" && b == "thread" => &["spawn", "scope", "Builder"],
        [a, b] if a == "std" && b == "env" => &[
            "var", "vars", "var_os", "vars_os", "args", "args_os", "set_var", "remove_var",
            "current_dir", "current_exe", "temp_dir",
        ],
        [a, b] if a == "std" && b == "fs" => &[
            "read", "write", "read_to_string", "read_dir", "create_dir", "create_dir_all",
            "remove_file", "remove_dir", "remove_dir_all", "copy", "rename", "File",
            "OpenOptions",
        ],
        [a, b] if a == "std" && b == "net" => &["TcpListener", "TcpStream", "UdpSocket"],
        [a] if a == "rand" => &["random", "thread_rng"],
        _ => &[],
    }
}

impl Imports {
    /// Collects the import table from a lexed file.
    pub fn collect(tokens: &[Token<'_>]) -> Imports {
        let sig: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut imports = Imports::default();
        let mut i = 0;
        while i < sig.len() {
            if sig[i].kind == TokenKind::Ident && sig[i].text == "use" {
                imports.use_decls += 1;
                i = imports.parse_tree(&sig, i + 1, &[]);
            } else {
                i += 1;
            }
        }
        imports
    }

    /// Parses one use-tree starting at `sig[i]` with `prefix` already
    /// accumulated; returns the index just past the tree (after `;`,
    /// `,`, or the group's closing `}`).
    fn parse_tree(&mut self, sig: &[&Token<'_>], mut i: usize, prefix: &[String]) -> usize {
        let mut path: Vec<String> = prefix.to_vec();
        loop {
            match sig.get(i) {
                Some(t) if t.kind == TokenKind::Ident && t.text == "as" => {
                    // `path as name` (or `as _`, which binds nothing).
                    if let Some(alias) = sig.get(i + 1) {
                        if alias.kind == TokenKind::Ident && alias.text != "_" {
                            self.map.insert(alias.text.to_string(), path.clone());
                        }
                        i += 2;
                    } else {
                        i += 1;
                    }
                    return self.skip_to_end(sig, i);
                }
                Some(t) if t.kind == TokenKind::Ident || t.kind == TokenKind::RawIdent => {
                    match t.text {
                        "self" if !path.is_empty() => {
                            // `{self, …}`: binds the module itself.
                            if let Some(last) = path.last().cloned() {
                                self.map.insert(last, path.clone());
                            }
                        }
                        _ => path.push(t.text.trim_start_matches("r#").to_string()),
                    }
                    i += 1;
                }
                Some(t) if t.is_punct(':') => {
                    // `::` — the lexer emits two glued colons.
                    i += 1;
                    if sig.get(i).is_some_and(|t| t.is_punct(':')) {
                        i += 1;
                    }
                }
                Some(t) if t.is_punct('*') => {
                    // A glob ends its tree: `*` binds no name itself.
                    self.globs.push(path.clone());
                    return self.skip_to_end(sig, i + 1);
                }
                Some(t) if t.is_punct('{') => {
                    i += 1;
                    loop {
                        match sig.get(i) {
                            Some(t) if t.is_punct('}') => {
                                i += 1;
                                break;
                            }
                            Some(t) if t.is_punct(',') => i += 1,
                            Some(_) => i = self.parse_tree(sig, i, &path),
                            None => return i,
                        }
                    }
                    return self.skip_to_end(sig, i);
                }
                Some(t) if t.is_punct(',') || t.is_punct('}') || t.is_punct(';') => {
                    // End of a plain path: bind its last segment.
                    if path.len() > prefix.len() {
                        if let Some(last) = path.last().cloned() {
                            self.map.insert(last, path.clone());
                        }
                    }
                    if t.is_punct(';') {
                        i += 1;
                    }
                    return i;
                }
                Some(_) => i += 1, // `pub`, stray tokens: skip
                None => return i,
            }
        }
    }

    /// After a completed subtree: consume a trailing `;` if present so the
    /// caller resumes at the next statement.
    fn skip_to_end(&self, sig: &[&Token<'_>], i: usize) -> usize {
        if sig.get(i).is_some_and(|t| t.is_punct(';')) {
            i + 1
        } else {
            i
        }
    }

    /// Resolves a path expression to canonical segments. Unresolvable
    /// paths come back unchanged.
    pub fn resolve(&self, path: &[&str]) -> Vec<String> {
        let Some(&first) = path.first() else {
            return Vec::new();
        };
        if let Some(canon) = self.map.get(first) {
            let mut out = canon.clone();
            out.extend(path[1..].iter().map(|s| s.to_string()));
            return out;
        }
        if matches!(first, "std" | "core" | "alloc" | "rand") {
            return path.iter().map(|s| s.to_string()).collect();
        }
        for glob in &self.globs {
            if glob_items(glob).contains(&first) {
                let mut out = glob.clone();
                out.extend(path.iter().map(|s| s.to_string()));
                return out;
            }
        }
        path.iter().map(|s| s.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn resolve_in(src: &str, path: &[&str]) -> Vec<String> {
        let toks = lex(src);
        Imports::collect(&toks).resolve(path)
    }

    #[test]
    fn plain_import_binds_last_segment() {
        assert_eq!(
            resolve_in("use std::collections::HashMap;", &["HashMap"]),
            vec!["std", "collections", "HashMap"]
        );
    }

    #[test]
    fn as_alias_binds_the_alias() {
        let src = "use std::collections::HashMap as Map;";
        assert_eq!(
            resolve_in(src, &["Map"]),
            vec!["std", "collections", "HashMap"]
        );
        // `Map::new()` keeps trailing segments.
        assert_eq!(
            resolve_in(src, &["Map", "new"]),
            vec!["std", "collections", "HashMap", "new"]
        );
    }

    #[test]
    fn nested_groups_and_self() {
        let src = "use std::collections::{self, HashMap, hash_map::Entry};";
        assert_eq!(
            resolve_in(src, &["collections", "HashMap"]),
            vec!["std", "collections", "HashMap"]
        );
        assert_eq!(
            resolve_in(src, &["Entry"]),
            vec!["std", "collections", "hash_map", "Entry"]
        );
    }

    #[test]
    fn groups_with_aliases_inside() {
        let src = "use std::{env, fs::File as F, collections::{HashSet as Set}};";
        assert_eq!(resolve_in(src, &["env", "var"]), vec!["std", "env", "var"]);
        assert_eq!(resolve_in(src, &["F"]), vec!["std", "fs", "File"]);
        assert_eq!(
            resolve_in(src, &["Set"]),
            vec!["std", "collections", "HashSet"]
        );
    }

    #[test]
    fn globs_resolve_watched_items_only() {
        let src = "use std::collections::*;";
        assert_eq!(
            resolve_in(src, &["HashMap"]),
            vec!["std", "collections", "HashMap"]
        );
        // Unwatched names stay unresolved.
        assert_eq!(resolve_in(src, &["BTreeMap"]), vec!["BTreeMap"]);
    }

    #[test]
    fn underscore_alias_binds_nothing() {
        assert_eq!(resolve_in("use std::fmt::Write as _;", &["Write"]), vec!["Write"]);
    }

    #[test]
    fn absolute_paths_pass_through() {
        assert_eq!(
            resolve_in("", &["std", "time", "Instant"]),
            vec!["std", "time", "Instant"]
        );
        assert_eq!(resolve_in("", &["my", "local"]), vec!["my", "local"]);
    }

    #[test]
    fn use_decl_count_is_tracked() {
        let toks = lex("use a::b;\nuse c::{d, e};\nfn f() {}\n");
        assert_eq!(Imports::collect(&toks).use_decls, 2);
    }
}
