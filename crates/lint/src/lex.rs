//! A hand-rolled, zero-dependency Rust lexer.
//!
//! The v1 scanner ([`crate::v1`]) stripped literals with a line-oriented
//! state machine and matched identifiers in what was left. That loses
//! structure the rules need (paths, attributes, adjacency) and had real
//! bugs around `'\\'` char literals and raw identifiers. This module
//! lexes the source once into a stream of spanned tokens — raw strings
//! with any `#` count, byte strings/chars, nested block comments, doc
//! comments, char-vs-lifetime disambiguation, raw identifiers — and the
//! analyses in [`crate::scan`] walk that stream instead of text lines.
//!
//! The lexer is lossless enough for linting, not for compilation: it
//! does not validate escapes or numeric suffixes, and an unterminated
//! literal simply runs to end of file instead of erroring.

/// What a token is. `Punct` is a single punctuation character; multi-char
/// operators (`::`, `->`, `..`) appear as adjacent `Punct` tokens whose
/// byte positions touch — see [`Token::glued`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// A plain identifier or keyword (`fn`, `HashMap`, `unsafe`).
    Ident,
    /// A raw identifier (`r#unsafe`) — never a keyword, never matched
    /// against banned names (the v1 scanner got this wrong).
    RawIdent,
    /// A lifetime (`'a`, `'static`, `'_`), including the tick.
    Lifetime,
    /// A char or byte-char literal (`'x'`, `'\\'`, `b'\n'`).
    Char,
    /// A cooked string or byte-string literal (`"…"`, `b"…"`).
    Str,
    /// A raw string or raw byte-string literal (`r"…"`, `br#"…"#`).
    RawStr,
    /// A numeric literal, including suffix (`1_000u64`, `0xff`, `1.5e-3`).
    Number,
    /// A single punctuation character.
    Punct,
    /// `// …` (not a doc comment). Text excludes the trailing newline.
    LineComment,
    /// `/* … */`, nesting tracked. Text includes the delimiters.
    BlockComment,
    /// `/// …`, `//! …`, `/** … */`, or `/*! … */`.
    DocComment,
}

/// One lexed token: kind, exact source slice, and where it starts.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    pub kind: TokenKind,
    /// The exact source text of the token (quotes/prefixes included).
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// Byte offset of the token's first character.
    pub pos: usize,
}

impl<'a> Token<'a> {
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
        )
    }

    /// True when `self` is a `Punct` for char `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }

    /// True when `next` starts at the byte right after `self` ends —
    /// i.e. the two tokens form one operator like `::` with no space.
    pub fn glued(&self, next: &Token<'_>) -> bool {
        self.pos + self.text.len() == next.pos
    }

    /// For `Str`/`RawStr` tokens: the content between the quotes, with
    /// prefixes (`b`, `r`, hashes) stripped but escapes left as written.
    pub fn str_contents(&self) -> Option<&'a str> {
        match self.kind {
            TokenKind::Str => {
                let t = self.text.strip_prefix('b').unwrap_or(self.text);
                t.strip_prefix('"').map(|t| t.strip_suffix('"').unwrap_or(t))
            }
            TokenKind::RawStr => {
                let t = self.text.strip_prefix('b').unwrap_or(self.text);
                let t = t.strip_prefix('r')?;
                let hashes = t.len() - t.trim_start_matches('#').len();
                let t = &t[hashes..];
                let t = t.strip_prefix('"')?;
                let t = t.strip_suffix(&"#".repeat(hashes)).unwrap_or(t);
                Some(t.strip_suffix('"').unwrap_or(t))
            }
            _ => None,
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    i: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).map(|&(_, c)| c)
    }

    fn pos(&self) -> usize {
        self.chars.get(self.i).map_or(self.src.len(), |&(p, _)| p)
    }

    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.i) {
            if c == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes `[a-zA-Z0-9_]*` from the current position.
    fn eat_ident_tail(&mut self) {
        while self.peek(0).is_some_and(is_ident_char) {
            self.bump();
        }
    }
}

/// Lexes a whole source file. Never fails: malformed input degrades to
/// `Punct` tokens or literals running to end of file.
pub fn lex(source: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor {
        src: source,
        chars: source.char_indices().collect(),
        i: 0,
        line: 1,
    };
    let mut out = Vec::new();

    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let start = cur.pos();
        let line = cur.line;
        let kind = lex_one(&mut cur, c);
        let end = cur.pos();
        out.push(Token {
            kind,
            text: &source[start..end],
            line,
            pos: start,
        });
    }
    out
}

fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    match c {
        '/' if cur.peek(1) == Some('/') => {
            // `///` and `//!` are doc comments; `////…` is plain again.
            let doc = matches!(cur.peek(2), Some('!'))
                || (cur.peek(2) == Some('/') && cur.peek(3) != Some('/'));
            while cur.peek(0).is_some_and(|c| c != '\n') {
                cur.bump();
            }
            if doc {
                TokenKind::DocComment
            } else {
                TokenKind::LineComment
            }
        }
        '/' if cur.peek(1) == Some('*') => {
            let doc = matches!(cur.peek(2), Some('!'))
                || (cur.peek(2) == Some('*') && !matches!(cur.peek(3), Some('*' | '/')));
            cur.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump_n(2);
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump_n(2);
                    }
                    (Some(_), _) => cur.bump(),
                    (None, _) => break,
                }
            }
            if doc {
                TokenKind::DocComment
            } else {
                TokenKind::BlockComment
            }
        }
        'r' if cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) => {
            cur.bump_n(2);
            cur.eat_ident_tail();
            TokenKind::RawIdent
        }
        'r' if raw_str_ahead(cur, 1) => {
            cur.bump();
            lex_raw_str(cur);
            TokenKind::RawStr
        }
        'b' if cur.peek(1) == Some('"') => {
            cur.bump();
            lex_cooked_str(cur);
            TokenKind::Str
        }
        'b' if cur.peek(1) == Some('\'') => {
            cur.bump();
            lex_char(cur);
            TokenKind::Char
        }
        'b' if cur.peek(1) == Some('r') && raw_str_ahead(cur, 2) => {
            cur.bump_n(2);
            lex_raw_str(cur);
            TokenKind::RawStr
        }
        c if is_ident_start(c) => {
            cur.bump();
            cur.eat_ident_tail();
            TokenKind::Ident
        }
        c if c.is_ascii_digit() => {
            lex_number(cur);
            TokenKind::Number
        }
        '"' => {
            lex_cooked_str(cur);
            TokenKind::Str
        }
        '\'' => {
            // Char literal vs lifetime. `'\…'` and `'x'` are literals;
            // `'ident` not closed by a quote is a lifetime tick.
            if cur.peek(1) == Some('\\') {
                lex_char(cur);
                TokenKind::Char
            } else if cur.peek(1).is_some_and(|c| c != '\'') && cur.peek(2) == Some('\'') {
                cur.bump_n(3);
                TokenKind::Char
            } else if cur.peek(1).is_some_and(is_ident_start) {
                cur.bump();
                cur.eat_ident_tail();
                TokenKind::Lifetime
            } else {
                cur.bump();
                TokenKind::Punct
            }
        }
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// At `cur.peek(k)`: does `#* "` follow (a raw-string opener)?
fn raw_str_ahead(cur: &Cursor<'_>, mut k: usize) -> bool {
    while cur.peek(k) == Some('#') {
        k += 1;
    }
    cur.peek(k) == Some('"')
}

/// Consumes `#* " … " #*` starting at the hashes/quote.
fn lex_raw_str(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        cur.bump();
        if c == '"' && (1..=hashes).all(|k| cur.peek(k - 1) == Some('#')) {
            cur.bump_n(hashes);
            return;
        }
    }
}

/// Consumes `" … "` with escape handling, starting at the quote.
fn lex_cooked_str(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            cur.bump();
            cur.bump(); // the escaped char (or continuation newline)
        } else if c == '"' {
            cur.bump();
            return;
        } else {
            cur.bump();
        }
    }
}

/// Consumes `' … '` starting at the quote. Handles `'\\'`, `'\''`,
/// `'\u{1F980}'` — the escape cases the v1 state machine mis-stepped on.
fn lex_char(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    if cur.peek(0) == Some('\\') {
        cur.bump();
        let esc = cur.peek(0);
        cur.bump(); // the escape character itself — even if it is `'`
        if esc == Some('u') && cur.peek(0) == Some('{') {
            while cur.peek(0).is_some_and(|c| c != '}') {
                cur.bump();
            }
            cur.bump(); // closing brace
        }
    } else {
        cur.bump(); // the literal char
    }
    if cur.peek(0) == Some('\'') {
        cur.bump(); // closing quote
    }
}

/// Consumes a numeric literal: int/float, radix prefixes, `_` separators,
/// exponents, type suffixes. Stops before `..` so ranges stay ranges.
fn lex_number(cur: &mut Cursor<'_>) {
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        cur.bump_n(2);
        while cur.peek(0).is_some_and(|c| c.is_ascii_hexdigit() || c == '_') {
            cur.bump();
        }
        cur.eat_ident_tail(); // suffix like u64
        return;
    }
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        cur.bump();
    }
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            cur.bump();
        }
    }
    if matches!(cur.peek(0), Some('e' | 'E'))
        && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek(1), Some('+' | '-'))
                && cur.peek(2).is_some_and(|c| c.is_ascii_digit())))
    {
        cur.bump(); // e
        if matches!(cur.peek(0), Some('+' | '-')) {
            cur.bump();
        }
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            cur.bump();
        }
    }
    cur.eat_ident_tail(); // suffix like f64, usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        assert_eq!(
            kinds("fn f(x: u8) {}"),
            vec![
                (TokenKind::Ident, "fn"),
                (TokenKind::Ident, "f"),
                (TokenKind::Punct, "("),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, ":"),
                (TokenKind::Ident, "u8"),
                (TokenKind::Punct, ")"),
                (TokenKind::Punct, "{"),
                (TokenKind::Punct, "}"),
            ]
        );
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r####"let s = r#"has "quotes" and // no comment"#; x"####;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::RawStr && t.contains("quotes")));
        assert_eq!(*toks.last().unwrap(), (TokenKind::Ident, "x"));
        // Double-hash raw string containing a single-hash terminator.
        let src = "r##\"inner \"# still open\"## y";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[1], (TokenKind::Ident, "y"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"b"bytes" b'\n' br"raw" z"#);
        assert_eq!(toks[0], (TokenKind::Str, "b\"bytes\""));
        assert_eq!(toks[1], (TokenKind::Char, r"b'\n'"));
        assert_eq!(toks[2], (TokenKind::RawStr, "br\"raw\""));
        assert_eq!(toks[3], (TokenKind::Ident, "z"));
    }

    #[test]
    fn str_contents_strips_delimiters() {
        let t = lex(r###"br##"abc"##"###);
        assert_eq!(t[0].str_contents(), Some("abc"));
        let t = lex("b\"xy\"");
        assert_eq!(t[0].str_contents(), Some("xy"));
        let t = lex("\"xy\"");
        assert_eq!(t[0].str_contents(), Some("xy"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks[0], (TokenKind::Ident, "a"));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[2], (TokenKind::Ident, "b"));
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let toks = kinds("/// doc\n//! inner\n// plain\n//// four\n/** blk */\n/*! inner */\n/* p */");
        let ks: Vec<TokenKind> = toks.iter().map(|&(k, _)| k).collect();
        assert_eq!(
            ks,
            vec![
                TokenKind::DocComment,
                TokenKind::DocComment,
                TokenKind::LineComment,
                TokenKind::LineComment,
                TokenKind::DocComment,
                TokenKind::DocComment,
                TokenKind::BlockComment,
            ]
        );
    }

    #[test]
    fn backslash_char_literal_does_not_swallow_code() {
        // The v1 state machine over-consumed here, eating everything up to
        // the next tick. The lexer must see `unwrap` as a live identifier.
        let toks = kinds(r"let c = '\\'; x.unwrap();");
        assert!(toks.iter().any(|&(k, t)| k == TokenKind::Char && t == r"'\\'"));
        assert!(toks.iter().any(|&(_, t)| t == "unwrap"));
        let toks = kinds(r"let c = b'\\'; x.unwrap();");
        assert!(toks.iter().any(|&(_, t)| t == "unwrap"));
    }

    #[test]
    fn escaped_tick_and_unicode_escapes() {
        let toks = kinds(r"'\'' '\u{1F980}' q");
        assert_eq!(toks[0], (TokenKind::Char, r"'\''"));
        assert_eq!(toks[1], (TokenKind::Char, r"'\u{1F980}'"));
        assert_eq!(toks[2], (TokenKind::Ident, "q"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str, s: &'static u8) {}");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|&&(k, _)| k == TokenKind::Lifetime)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert!(!toks.iter().any(|&(k, _)| k == TokenKind::Char));
    }

    #[test]
    fn raw_identifiers_are_not_keywords() {
        let toks = kinds("let r#unsafe = 1; r#fn");
        assert!(toks
            .iter()
            .any(|&(k, t)| k == TokenKind::RawIdent && t == "r#unsafe"));
        assert!(!idents("let r#unsafe = 1;").contains(&"unsafe"));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("1_000u64 0xffu8 1.5e-3f64 0..10");
        assert_eq!(toks[0], (TokenKind::Number, "1_000u64"));
        assert_eq!(toks[1], (TokenKind::Number, "0xffu8"));
        assert_eq!(toks[2], (TokenKind::Number, "1.5e-3f64"));
        // `0..10` must not eat the dots.
        assert_eq!(toks[3], (TokenKind::Number, "0"));
        assert_eq!(toks[4], (TokenKind::Punct, "."));
        assert_eq!(toks[5], (TokenKind::Punct, "."));
        assert_eq!(toks[6], (TokenKind::Number, "10"));
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let s = \"a\nb\nc\";\nlet r = r#\"x\ny\"#;\nz";
        let toks = lex(src);
        let z = toks.iter().find(|t| t.text == "z").unwrap();
        assert_eq!(z.line, 6);
        // Escaped newline (line continuation) still counts a line.
        let src = "let s = \"a \\\n b\";\nz";
        let z2 = lex(src).into_iter().find(|t| t.text == "z").unwrap();
        assert_eq!(z2.line, 3);
    }

    #[test]
    fn glued_detects_path_separators() {
        let toks = lex("a::b : : c");
        let puncts: Vec<&Token<'_>> =
            toks.iter().filter(|t| t.kind == TokenKind::Punct).collect();
        assert!(puncts[0].glued(puncts[1]));
        assert!(!puncts[2].glued(puncts[3]));
    }

    #[test]
    fn final_line_token_without_trailing_newline() {
        let toks = lex("fn f() {}\nx.unwrap() // lint:allow(unwrap-expect)");
        let cmt = toks.last().unwrap();
        assert_eq!(cmt.kind, TokenKind::LineComment);
        assert_eq!(cmt.line, 2);
    }
}
