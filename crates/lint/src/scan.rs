//! The static pass: a token-level scanner for nondeterminism sources.
//!
//! The scanner is deliberately not a full parser. It strips comments and
//! string/char literals with a small state machine (so banned names inside
//! docs or test fixtures never fire), tracks `#[cfg(test)]` regions by
//! brace matching, and then matches identifiers per line. That is enough
//! to enforce the determinism rules of DESIGN.md with zero dependencies,
//! and false positives have a first-class escape hatch: a
//! `// lint:allow(<rule>, …)` comment suppresses the named rules on its
//! own line and on the line below it.

use std::fmt;
use std::path::Path;

/// The determinism rules the pass enforces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// `HashMap`/`HashSet` in the protocol/simulation crates: iteration
    /// order is seed-independent, so any iteration leaks nondeterminism
    /// into traces. Use `BTreeMap`/`BTreeSet` or sort first.
    HashIteration,
    /// `Instant`/`SystemTime`: wall-clock time differs between runs.
    /// Simulated code must use `simnet` virtual time.
    WallClock,
    /// `thread_rng`, `OsRng`, `from_entropy`, `getrandom`, `rand::random`:
    /// OS entropy makes runs unrepeatable. Seed a `StdRng` explicitly.
    OsEntropy,
    /// `thread::spawn`, `thread::scope`, `thread::Builder`, and `.spawn()`
    /// calls: OS scheduling is nondeterministic; the simulator is
    /// single-threaded by design. `lint:allow(thread-spawn)` is honored
    /// only inside `crates/fleet` (the audited orchestration layer, which
    /// parallelizes *whole* deterministic runs) and test-like directories.
    ThreadSpawn,
    /// `unsafe` anywhere in the workspace.
    UnsafeCode,
    /// `.unwrap()`/`.expect()` in non-test code of the simulation crates.
    /// Either propagate a `Result` or annotate a genuine invariant.
    UnwrapExpect,
    /// `println!`/`print!`/`eprintln!`/`eprint!` in library code: library
    /// crates must emit through the `obs` layer or returned strings so
    /// output stays part of the deterministic, testable byte stream. Bin
    /// targets (`src/bin/`, `main.rs`) print freely;
    /// `lint:allow(println-in-lib)` is honored only outside the
    /// simulation crates (e.g. the vendored criterion shim).
    PrintlnInLib,
}

impl Rule {
    pub const ALL: [Rule; 7] = [
        Rule::HashIteration,
        Rule::WallClock,
        Rule::OsEntropy,
        Rule::ThreadSpawn,
        Rule::UnsafeCode,
        Rule::UnwrapExpect,
        Rule::PrintlnInLib,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIteration => "hash-iteration",
            Rule::WallClock => "wall-clock",
            Rule::OsEntropy => "os-entropy",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::UnsafeCode => "unsafe-code",
            Rule::UnwrapExpect => "unwrap-expect",
            Rule::PrintlnInLib => "println-in-lib",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// The crates whose `src/` trees carry the strict rules (`hash-iteration`
/// and `unwrap-expect`): everything that executes inside the simulation.
const STRICT_CRATES: [&str; 9] = [
    "simnet",
    "neat",
    "consensus",
    "repkv",
    "coord",
    "mqueue",
    "gridstore",
    "sched",
    "dfs",
];

#[derive(Clone, Copy, Debug)]
struct FileClass {
    /// Inside a simulation crate (or the root campaign `src/`).
    strict: bool,
    /// Under a `tests/`, `benches/`, or `examples/` directory.
    test_like: bool,
    /// Inside `crates/fleet` — the audited orchestration layer, the one
    /// crate whose `lint:allow(thread-spawn)` directives are honored.
    orchestration: bool,
    /// A binary target (`src/bin/…`, any `main.rs`, `build.rs`): stdout
    /// is its interface, so the print rule does not apply.
    bin_like: bool,
}

fn classify(rel_path: &str) -> FileClass {
    let strict = rel_path.starts_with("src/")
        || STRICT_CRATES
            .iter()
            .any(|c| rel_path.strip_prefix("crates/").and_then(|r| r.strip_prefix(c)).is_some_and(|r| r.starts_with('/')));
    let test_like = rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
    let orchestration = rel_path.starts_with("crates/fleet/");
    let bin_like = rel_path.split('/').any(|seg| seg == "bin")
        || rel_path.ends_with("main.rs")
        || rel_path.ends_with("build.rs");
    FileClass {
        strict,
        test_like,
        orchestration,
        bin_like,
    }
}

/// One source line after comment/literal stripping.
struct CleanLine {
    text: String,
    /// Any part of the line sits inside a `#[cfg(test)]` brace region.
    in_test: bool,
}

struct Cleaned {
    lines: Vec<CleanLine>,
    /// `(line, rule)` pairs from `lint:allow(...)` comment directives.
    allows: Vec<(usize, Rule)>,
}

fn collect_allows(comment: &str, line: usize, allows: &mut Vec<(usize, Rule)>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else { return };
        for name in rest[..end].split(',') {
            if let Some(rule) = Rule::from_name(name.trim()) {
                allows.push((line, rule));
            }
        }
        rest = &rest[end..];
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Strips comments and string/char literals, recording `lint:allow`
/// directives and which lines sit inside `#[cfg(test)]` regions.
fn clean(source: &str) -> Cleaned {
    enum St {
        Code,
        LineComment,
        BlockComment,
        Str,
        RawStr,
    }

    let chars: Vec<char> = source.chars().collect();
    let mut st = St::Code;
    let mut block_depth = 0usize;
    let mut raw_hashes = 0usize;

    let mut lines = Vec::new();
    let mut allows = Vec::new();
    let mut cur = String::new();
    let mut comment_buf = String::new();
    let mut line_no = 1usize;

    // `#[cfg(test)]` handling: the attribute arms `pending_test`; the next
    // opened brace block (the `mod tests { … }` or annotated fn body) is a
    // test region. Statements (`;`) between attribute and brace disarm it.
    let mut pending_test = false;
    let mut brace_stack: Vec<bool> = Vec::new();
    let mut test_depth = 0usize;
    let mut line_in_test = false;

    let mut prev_code: Option<char> = None;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            match st {
                St::LineComment => {
                    collect_allows(&comment_buf, line_no, &mut allows);
                    comment_buf.clear();
                    st = St::Code;
                }
                St::BlockComment => {
                    collect_allows(&comment_buf, line_no, &mut allows);
                    comment_buf.clear();
                }
                _ => {}
            }
            lines.push(CleanLine {
                text: std::mem::take(&mut cur),
                in_test: line_in_test || test_depth > 0,
            });
            line_in_test = test_depth > 0;
            line_no += 1;
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment;
                    block_depth = 1;
                    i += 2;
                    continue;
                }
                // Raw (byte) string start: r"…", r#"…"#, br"…", … — only
                // when `r`/`b` is not the tail of a longer identifier.
                if (c == 'r' || c == 'b') && !prev_code.is_some_and(is_ident_char) {
                    let mut k = i;
                    if chars.get(k) == Some(&'b') {
                        k += 1;
                    }
                    if chars.get(k) == Some(&'r') {
                        k += 1;
                        let mut hashes = 0usize;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') {
                            st = St::RawStr;
                            raw_hashes = hashes;
                            prev_code = None;
                            i = k + 1;
                            continue;
                        }
                    }
                }
                if c == '"' {
                    st = St::Str;
                    prev_code = None;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime: escapes and `'x'` are
                    // literals; anything else is a lifetime tick.
                    if chars.get(i + 1) == Some(&'\\') {
                        let mut j = i + 2;
                        while j < chars.len() {
                            if chars[j] == '\\' {
                                j += 2;
                            } else if chars[j] == '\'' {
                                j += 1;
                                break;
                            } else {
                                j += 1;
                            }
                        }
                        i = j;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        i += 3;
                    } else {
                        i += 1;
                    }
                    prev_code = None;
                    continue;
                }
                cur.push(c);
                prev_code = Some(c);
                match c {
                    ']' if cur.ends_with("#[cfg(test)]") => pending_test = true,
                    ';' => pending_test = false,
                    '{' => {
                        brace_stack.push(pending_test);
                        if pending_test {
                            test_depth += 1;
                            line_in_test = true;
                        }
                        pending_test = false;
                    }
                    '}' => {
                        if brace_stack.pop() == Some(true) {
                            test_depth -= 1;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            St::LineComment => {
                comment_buf.push(c);
                i += 1;
            }
            St::BlockComment => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    block_depth += 1;
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    block_depth -= 1;
                    i += 2;
                    if block_depth == 0 {
                        collect_allows(&comment_buf, line_no, &mut allows);
                        comment_buf.clear();
                        st = St::Code;
                    }
                } else {
                    comment_buf.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // Skip the escaped char — except a line continuation's
                    // newline, which the top-of-loop handler must still see
                    // to keep line numbers true.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        i += 2;
                    }
                } else if c == '"' {
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr => {
                if c == '"' {
                    let closed = (1..=raw_hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if closed {
                        st = St::Code;
                        i += raw_hashes + 1;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if matches!(st, St::LineComment | St::BlockComment) {
        collect_allows(&comment_buf, line_no, &mut allows);
    }
    if !cur.is_empty() {
        lines.push(CleanLine {
            text: cur,
            in_test: line_in_test || test_depth > 0,
        });
    }
    Cleaned { lines, allows }
}

/// Identifiers banned everywhere under the workspace.
fn global_ident_rule(ident: &str) -> Option<(Rule, &'static str)> {
    match ident {
        "Instant" | "SystemTime" => Some((
            Rule::WallClock,
            "wall-clock time differs between runs; use simnet virtual time",
        )),
        "thread_rng" | "OsRng" | "from_entropy" | "getrandom" => Some((
            Rule::OsEntropy,
            "OS entropy makes runs unrepeatable; seed a StdRng explicitly",
        )),
        "unsafe" => Some((Rule::UnsafeCode, "unsafe code is forbidden workspace-wide")),
        _ => None,
    }
}

/// Scans one already-loaded source file. `rel_path` decides which rules
/// apply (see [`classify`]) and is echoed into the findings.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let class = classify(rel_path);
    let cleaned = clean(source);
    let mut findings: Vec<Finding> = Vec::new();

    let allowed = |line: usize, rule: Rule| {
        // Thread-spawn escapes are scoped: only the fleet orchestration
        // crate (and test-like dirs) may annotate audited exceptions. A
        // `lint:allow(thread-spawn)` in a simulation crate is ignored, so
        // the single-threaded guarantee cannot be waived where it matters.
        if rule == Rule::ThreadSpawn && !class.orchestration && !class.test_like {
            return false;
        }
        // Print escapes are scoped the same way: a simulation crate cannot
        // waive the rule — only non-simulation library code (shims, the
        // study data layer) may annotate audited exceptions.
        if rule == Rule::PrintlnInLib && class.strict && !class.test_like {
            return false;
        }
        cleaned
            .allows
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
    };
    let mut push = |line: usize, rule: Rule, message: String| {
        if allowed(line, rule) {
            return;
        }
        if findings.iter().any(|f| f.line == line && f.rule == rule) {
            return;
        }
        findings.push(Finding {
            path: rel_path.to_string(),
            line,
            rule,
            message,
        });
    };

    for (idx, cl) in cleaned.lines.iter().enumerate() {
        let line = idx + 1;
        let text = cl.text.as_str();

        if text.contains("thread::spawn")
            || text.contains("thread::scope")
            || text.contains("thread::Builder")
        {
            push(
                line,
                Rule::ThreadSpawn,
                "OS threads introduce scheduling nondeterminism; the simulator is single-threaded"
                    .to_string(),
            );
        }
        if text.contains("rand::random") {
            push(
                line,
                Rule::OsEntropy,
                "`rand::random` draws from OS entropy; seed a StdRng explicitly".to_string(),
            );
        }

        let mut chars = text.char_indices().peekable();
        let mut prev_non_ws: Option<char> = None;
        while let Some((start, c)) = chars.next() {
            if !is_ident_char(c) || c.is_ascii_digit() {
                if !c.is_whitespace() {
                    prev_non_ws = Some(c);
                }
                continue;
            }
            let mut end = start + c.len_utf8();
            while let Some(&(j, cj)) = chars.peek() {
                if is_ident_char(cj) {
                    end = j + cj.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            let ident = &text[start..end];
            if let Some((rule, msg)) = global_ident_rule(ident) {
                push(line, rule, format!("`{ident}`: {msg}"));
            }
            if class.strict && (ident == "HashMap" || ident == "HashSet") {
                push(
                    line,
                    Rule::HashIteration,
                    format!(
                        "`{ident}` iteration order is nondeterministic in simulation code; \
                         use BTreeMap/BTreeSet or sort before iterating"
                    ),
                );
            }
            if ident == "spawn" && prev_non_ws == Some('.') {
                push(
                    line,
                    Rule::ThreadSpawn,
                    "`.spawn()`: scoped/builder spawns are still OS threads; the simulator \
                     is single-threaded"
                        .to_string(),
                );
            }
            if !class.bin_like
                && !class.test_like
                && !cl.in_test
                && matches!(ident, "println" | "print" | "eprintln" | "eprint")
                && text[end..].trim_start().starts_with('!')
            {
                push(
                    line,
                    Rule::PrintlnInLib,
                    format!(
                        "`{ident}!` in library code; emit through the obs layer or return \
                         strings — stdout belongs to bin targets"
                    ),
                );
            }
            if class.strict
                && !class.test_like
                && !cl.in_test
                && (ident == "unwrap" || ident == "expect")
                && prev_non_ws == Some('.')
            {
                push(
                    line,
                    Rule::UnwrapExpect,
                    format!(
                        "`.{ident}()` in non-test simulation code; propagate a Result or \
                         annotate a genuine invariant with lint:allow(unwrap-expect)"
                    ),
                );
            }
            prev_non_ws = Some(c);
        }
    }
    findings
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under `root` (skipping `target/` and dot
/// directories), in sorted path order for deterministic output.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(scan_source(&rel, &source));
    }
    Ok(findings)
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders findings as a JSON array for machine consumption (`--json`).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"path\":");
        push_json_str(&mut out, &f.path);
        out.push_str(&format!(",\"line\":{},\"rule\":", f.line));
        push_json_str(&mut out, f.rule.name());
        out.push_str(",\"message\":");
        push_json_str(&mut out, &f.message);
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRICT_FILE: &str = "crates/simnet/src/fabric.rs";
    const LOOSE_FILE: &str = "crates/study/src/types.rs";

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn wall_clock_and_entropy_fire_everywhere() {
        let src = "fn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }\n";
        let fs = scan_source(LOOSE_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::WallClock, Rule::OsEntropy]);
        assert_eq!(fs[0].line, 1);
    }

    #[test]
    fn hash_types_fire_only_in_strict_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::HashIteration]);
        assert!(scan_source(LOOSE_FILE, src).is_empty());
    }

    #[test]
    fn unwrap_fires_only_in_strict_non_test_code() {
        let src = "fn f() { x.unwrap(); }\nfn g() { y.expect(\"msg\"); }\n";
        assert_eq!(
            rules(&scan_source(STRICT_FILE, src)),
            vec![Rule::UnwrapExpect, Rule::UnwrapExpect]
        );
        assert!(scan_source(LOOSE_FILE, src).is_empty());
        assert!(scan_source("crates/simnet/tests/props.rs", src).is_empty());
    }

    #[test]
    fn repeated_hits_on_one_line_dedup_to_one_finding() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::UnwrapExpect]);
    }

    #[test]
    fn expect_err_is_not_expect() {
        let src = "fn f() { y.expect_err(\"must fail\"); }\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt_from_unwrap() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\nfn h() { y.unwrap(); }\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 6);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers_true() {
        let src = "fn f() { let s = \"a \\\n        b\"; }\nfn g() { x.unwrap(); }\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = concat!(
            "// HashMap Instant thread_rng\n",
            "/* unsafe SystemTime */\n",
            "fn f() { let s = \"HashMap unsafe\"; let r = r#\"Instant \"quoted\"\"#; }\n",
        );
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_are_skipped() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\"'; let d = '\\''; c }\nfn g() { q.unwrap(); }\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::UnwrapExpect]);
        assert_eq!(fs[0].line, 2);
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let src = concat!(
            "fn f() { x.unwrap(); } // lint:allow(unwrap-expect)\n",
            "// lint:allow(wall-clock)\n",
            "fn g() { std::time::Instant::now(); }\n",
            "fn h() { y.unwrap(); }\n",
        );
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 4);
    }

    #[test]
    fn allow_of_wrong_rule_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // lint:allow(wall-clock)\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::UnwrapExpect]);
    }

    #[test]
    fn allow_accepts_multiple_rules() {
        let src = "// lint:allow(wall-clock, os-entropy)\nfn f() { Instant::now(); thread_rng(); }\n";
        assert!(scan_source(LOOSE_FILE, src).is_empty());
    }

    #[test]
    fn unsafe_and_thread_spawn_fire() {
        let src = "fn f() { unsafe { std::thread::spawn(|| {}); } }\n";
        let fs = scan_source(LOOSE_FILE, src);
        assert!(fs.iter().any(|f| f.rule == Rule::UnsafeCode), "{fs:?}");
        assert!(fs.iter().any(|f| f.rule == Rule::ThreadSpawn), "{fs:?}");
    }

    #[test]
    fn scoped_and_builder_spawns_fire() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        let fs = scan_source(LOOSE_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::ThreadSpawn], "{fs:?}");
        let src = "fn g() { std::thread::Builder::new(); }\n";
        assert_eq!(rules(&scan_source(LOOSE_FILE, src)), vec![Rule::ThreadSpawn]);
        let src = "fn h() { builder.spawn(work)?; }\n";
        assert_eq!(rules(&scan_source(LOOSE_FILE, src)), vec![Rule::ThreadSpawn]);
    }

    #[test]
    fn thread_spawn_allows_are_scoped_to_the_fleet_crate() {
        let src = "// lint:allow(thread-spawn)\nfn f() { std::thread::spawn(|| {}); }\n";
        // The orchestration crate may annotate audited exceptions…
        assert!(scan_source("crates/fleet/src/pool.rs", src).is_empty());
        // …and test-like dirs keep the escape hatch…
        assert!(scan_source("crates/simnet/tests/t.rs", src).is_empty());
        // …but the same directive inside a simulation crate is ignored.
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::ThreadSpawn]);
        assert_eq!(rules(&scan_source(LOOSE_FILE, src)), vec![Rule::ThreadSpawn]);
        assert_eq!(rules(&scan_source("src/campaign.rs", src)), vec![Rule::ThreadSpawn]);
    }

    #[test]
    fn print_macros_fire_in_library_code_only() {
        let src = "fn f() { println!(\"x\"); }\nfn g() { eprint!(\"y\"); }\n";
        assert_eq!(
            rules(&scan_source(STRICT_FILE, src)),
            vec![Rule::PrintlnInLib, Rule::PrintlnInLib]
        );
        assert_eq!(rules(&scan_source(LOOSE_FILE, src)), vec![Rule::PrintlnInLib, Rule::PrintlnInLib]);
        // Bin targets own stdout.
        assert!(scan_source("crates/bench/src/bin/campaign.rs", src).is_empty());
        assert!(scan_source("crates/lint/src/main.rs", src).is_empty());
        // Tests and examples print freely.
        assert!(scan_source("crates/simnet/tests/t.rs", src).is_empty());
        assert!(scan_source("examples/demo.rs", src).is_empty());
    }

    #[test]
    fn print_calls_without_bang_do_not_fire() {
        let src = "fn f(p: &Printer) { p.print(); report.println(1); }\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_may_print() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { println!(\"dbg\"); }\n}\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn println_allows_are_ignored_in_simulation_crates() {
        let src = "// lint:allow(println-in-lib)\nfn f() { println!(\"x\"); }\n";
        // Non-simulation library code may annotate audited exceptions…
        assert!(scan_source("crates/shims/criterion/src/lib.rs", src).is_empty());
        // …but a simulation crate cannot waive the rule.
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::PrintlnInLib]);
        assert_eq!(rules(&scan_source("src/campaign.rs", src)), vec![Rule::PrintlnInLib]);
    }

    #[test]
    fn root_src_is_strict() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(rules(&scan_source("src/campaign.rs", src)), vec![Rule::UnwrapExpect]);
    }

    #[test]
    fn findings_render_as_path_line_rule() {
        let fs = scan_source(STRICT_FILE, "fn f() { x.unwrap(); }\n");
        let line = fs[0].to_string();
        assert!(
            line.starts_with("crates/simnet/src/fabric.rs:1: unwrap-expect:"),
            "{line}"
        );
    }

    #[test]
    fn json_output_is_well_formed() {
        let fs = scan_source(STRICT_FILE, "fn f() { x.unwrap(); }\n");
        let json = findings_to_json(&fs);
        assert!(json.contains("\"rule\":\"unwrap-expect\""), "{json}");
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(findings_to_json(&[]), "[]");
    }
}
