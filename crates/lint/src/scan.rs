//! The static pass: lexer-accurate determinism analysis.
//!
//! v2 of the scanner. Where v1 ([`crate::v1`]) stripped literals line by
//! line and matched identifiers in the residue, this pass lexes each
//! file into spanned tokens ([`crate::lex`]), collects the per-file
//! import table ([`crate::resolve`]), and walks the token stream with a
//! small amount of structure: attribute tracking for `#[cfg(test)]` and
//! `#[derive(Debug)]`, a brace stack that knows which regions are
//! `struct`/`enum` bodies, and path resolution so `use … as` aliases and
//! fully-qualified paths hit the same rules the bare names do.
//!
//! False positives keep their first-class escape hatch: a
//! `// lint:allow(<rule>, …)` comment suppresses the named rules on its
//! own line and on the line below it. v2 additionally tracks which
//! directives actually suppressed something, so stale annotations are
//! reported by `lint --unused-allows` instead of rotting in place.

use std::fmt;
use std::path::Path;

use crate::lex::{self, Token, TokenKind};
use crate::resolve::Imports;

/// The determinism rules the pass enforces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// `HashMap`/`HashSet` in the protocol/simulation crates: iteration
    /// order is seed-independent, so any iteration leaks nondeterminism
    /// into traces. Use `BTreeMap`/`BTreeSet` or sort first. Catches
    /// `use … as` aliases and `std::collections::…` qualified paths.
    HashIteration,
    /// `Instant`/`SystemTime`: wall-clock time differs between runs.
    /// Simulated code must use `simnet` virtual time.
    WallClock,
    /// `thread_rng`, `OsRng`, `from_entropy`, `getrandom`, `rand::random`:
    /// OS entropy makes runs unrepeatable. Seed a `StdRng` explicitly.
    OsEntropy,
    /// `thread::spawn`, `thread::scope`, `thread::Builder`, and `.spawn()`
    /// calls: OS scheduling is nondeterministic; the simulator is
    /// single-threaded by design. `lint:allow(thread-spawn)` is honored
    /// only inside `crates/fleet` (the audited orchestration layer, which
    /// parallelizes *whole* deterministic runs) and test-like directories.
    ThreadSpawn,
    /// `unsafe` anywhere in the workspace.
    UnsafeCode,
    /// `.unwrap()`/`.expect()` in non-test code of the simulation crates.
    /// Either propagate a `Result` or annotate a genuine invariant.
    UnwrapExpect,
    /// `println!`/`print!`/`eprintln!`/`eprint!` in library code: library
    /// crates must emit through the `obs` layer or returned strings so
    /// output stays part of the deterministic, testable byte stream. Bin
    /// targets (`src/bin/`, `main.rs`) print freely;
    /// `lint:allow(println-in-lib)` is honored only outside the
    /// simulation crates (e.g. the vendored criterion shim).
    PrintlnInLib,
    /// `std::env` in simulation crates: the process environment is an
    /// input the seed does not control. Bin targets parse their own CLI.
    EnvRead,
    /// `std::fs`/`std::net` in simulation crates: real I/O breaks
    /// deterministic replay; the network is modelled through `simnet`.
    IoInSim,
    /// `f32`/`f64` fields in `struct`/`enum` bodies of simulation crates:
    /// float accumulation order changes results across refactors. Protocol
    /// state wants integer ticks or fixed-point; audited probability knobs
    /// carry a `lint:allow(float-nondet)`.
    FloatNondet,
    /// A `#[derive(Debug)]` type in a simulation crate holding a
    /// `HashMap`/`HashSet` field: execution fingerprints hash the `{:#?}`
    /// rendering, and Debug iterates hash containers in nondeterministic
    /// order — a direct fingerprint-poisoning vector.
    DebugHashLeak,
}

impl Rule {
    pub const ALL: [Rule; 11] = [
        Rule::HashIteration,
        Rule::WallClock,
        Rule::OsEntropy,
        Rule::ThreadSpawn,
        Rule::UnsafeCode,
        Rule::UnwrapExpect,
        Rule::PrintlnInLib,
        Rule::EnvRead,
        Rule::IoInSim,
        Rule::FloatNondet,
        Rule::DebugHashLeak,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIteration => "hash-iteration",
            Rule::WallClock => "wall-clock",
            Rule::OsEntropy => "os-entropy",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::UnsafeCode => "unsafe-code",
            Rule::UnwrapExpect => "unwrap-expect",
            Rule::PrintlnInLib => "println-in-lib",
            Rule::EnvRead => "env-read",
            Rule::IoInSim => "io-in-sim",
            Rule::FloatNondet => "float-nondet",
            Rule::DebugHashLeak => "debug-hash-leak",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// A `lint:allow` directive that never suppressed a finding — either
/// stale after a fix, out of scope, or naming an unknown rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnusedAllow {
    pub path: String,
    pub line: usize,
    /// The rule name as written (it may not be a known rule at all).
    pub name: String,
}

impl fmt::Display for UnusedAllow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let note = if Rule::from_name(&self.name).is_some() {
            "suppresses nothing"
        } else {
            "unknown rule"
        };
        write!(f, "{}:{}: unused lint:allow({}) — {note}", self.path, self.line, self.name)
    }
}

/// The crates whose `src/` trees carry the strict rules (`hash-iteration`,
/// `unwrap-expect`, and the v2 families): everything that executes inside
/// the simulation, plus `obs`, whose recordings feed the fingerprints.
const STRICT_CRATES: [&str; 11] = [
    "simnet",
    "neat",
    "consensus",
    "repkv",
    "coord",
    "mqueue",
    "gridstore",
    "sched",
    "dfs",
    "obs",
    "workload",
];

#[derive(Clone, Copy, Debug)]
pub(crate) struct FileClass {
    /// Inside a simulation crate (or the root campaign `src/`).
    pub(crate) strict: bool,
    /// Under a `tests/`, `benches/`, or `examples/` directory.
    pub(crate) test_like: bool,
    /// Inside `crates/fleet` — the audited orchestration layer, the one
    /// crate whose `lint:allow(thread-spawn)` directives are honored.
    pub(crate) orchestration: bool,
    /// A binary target (`src/bin/…`, any `main.rs`, `build.rs`): stdout
    /// is its interface, so the print rule does not apply.
    pub(crate) bin_like: bool,
}

pub(crate) fn classify(rel_path: &str) -> FileClass {
    let strict = rel_path.starts_with("src/")
        || STRICT_CRATES.iter().any(|c| {
            rel_path
                .strip_prefix("crates/")
                .and_then(|r| r.strip_prefix(c))
                .is_some_and(|r| r.starts_with('/'))
        });
    let test_like = rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
    let orchestration = rel_path.starts_with("crates/fleet/");
    let bin_like = rel_path.split('/').any(|seg| seg == "bin")
        || rel_path.ends_with("main.rs")
        || rel_path.ends_with("build.rs");
    FileClass {
        strict,
        test_like,
        orchestration,
        bin_like,
    }
}

/// One `lint:allow` directive site.
#[derive(Debug)]
struct AllowSite {
    line: usize,
    /// Rule name as written.
    name: String,
    rule: Option<Rule>,
    used: bool,
}

/// Collects `lint:allow(<rule>, …)` directives from comment tokens.
/// Directives inside multi-line block comments attach to the line they
/// are written on, matching the v1 scanner.
fn collect_allows(tokens: &[Token<'_>]) -> Vec<AllowSite> {
    let mut sites = Vec::new();
    // Plain comments only: doc comments *describe* the directive syntax
    // (this crate's own rustdoc quotes it verbatim) and must neither
    // grant suppressions nor show up as stale sites.
    let plain = |t: &&Token<'_>| {
        matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
    };
    for t in tokens.iter().filter(plain) {
        for (off, text) in t.text.lines().enumerate() {
            let mut rest = text;
            while let Some(pos) = rest.find("lint:allow(") {
                rest = &rest[pos + "lint:allow(".len()..];
                let Some(end) = rest.find(')') else { break };
                for name in rest[..end].split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        continue;
                    }
                    sites.push(AllowSite {
                        line: t.line + off,
                        name: name.to_string(),
                        rule: Rule::from_name(name),
                        used: false,
                    });
                }
                rest = &rest[end..];
            }
        }
    }
    sites
}

/// A brace region on the walker's stack.
#[derive(Clone, Copy, Default)]
struct Frame {
    /// Opened under a `#[cfg(test)]` attribute.
    test: bool,
    /// A `struct` or `enum` body: its direct contents are fields.
    type_body: bool,
    /// An `enum` body specifically — variant braces nested directly in
    /// it are also field positions.
    is_enum: bool,
    /// The type carries `#[derive(Debug)]`.
    derived_debug: bool,
}

/// Walks the significant tokens of one file and produces raw findings
/// (before allow filtering, deduplicated per line and rule).
struct Walker<'a> {
    path: &'a str,
    class: FileClass,
    imports: &'a Imports,
    findings: Vec<Finding>,
}

impl<'a> Walker<'a> {
    fn push(&mut self, line: usize, rule: Rule, message: String) {
        if self.findings.iter().any(|f| f.line == line && f.rule == rule) {
            return;
        }
        self.findings.push(Finding {
            path: self.path.to_string(),
            line,
            rule,
            message,
        });
    }

    fn run(&mut self, sig: &[Token<'a>]) {
        let mut frames: Vec<Frame> = Vec::new();
        let mut pending_test = false;
        let mut pending_debug = false;
        // Last `struct`/`enum` keyword since the previous item boundary.
        let mut introducer: Option<&str> = None;
        // Generic-parameter depth while an introducer is live, so the
        // parens of `Fn(f64)` bounds are not taken for tuple fields.
        let mut angle_depth = 0usize;
        // Tuple-struct/variant field parens: (derived_debug, paren depth).
        let mut tuple_fields: Option<(bool, usize)> = None;

        let mut i = 0usize;
        while i < sig.len() {
            let t = &sig[i];
            match t.kind {
                TokenKind::Punct => {
                    let c = t.text.chars().next().unwrap_or(' ');
                    match c {
                        '#' => {
                            if let Some(next) = attribute(sig, i) {
                                let (armed_test, armed_debug) = attr_flags(&sig[i..next]);
                                pending_test |= armed_test;
                                pending_debug |= armed_debug;
                                i = next;
                                continue;
                            }
                        }
                        '{' => {
                            let parent = frames.last().copied().unwrap_or_default();
                            let from_introducer =
                                matches!(introducer, Some("struct") | Some("enum") | Some("union"));
                            let variant_body = parent.type_body && parent.is_enum;
                            frames.push(Frame {
                                test: pending_test,
                                type_body: from_introducer || variant_body,
                                is_enum: introducer == Some("enum"),
                                derived_debug: if from_introducer {
                                    pending_debug
                                } else {
                                    variant_body && parent.derived_debug
                                },
                            });
                            pending_test = false;
                            pending_debug = false;
                            introducer = None;
                            angle_depth = 0;
                        }
                        '}' => {
                            frames.pop();
                        }
                        ';' => {
                            pending_test = false;
                            pending_debug = false;
                            introducer = None;
                            angle_depth = 0;
                            tuple_fields = None;
                        }
                        '<' if introducer.is_some() => angle_depth += 1,
                        '>' if introducer.is_some() && angle_depth > 0 => {
                            // `->` is an arrow, not a generics close.
                            let arrow = i > 0
                                && sig[i - 1].is_punct('-')
                                && sig[i - 1].glued(t);
                            if !arrow {
                                angle_depth -= 1;
                            }
                        }
                        '(' => {
                            if let Some((_, depth)) = tuple_fields.as_mut() {
                                *depth += 1;
                            } else {
                                let parent = frames.last().copied().unwrap_or_default();
                                let header = matches!(
                                    introducer,
                                    Some("struct") | Some("union")
                                ) && angle_depth == 0;
                                let variant = parent.type_body;
                                if header || variant {
                                    let debug = if header {
                                        pending_debug
                                    } else {
                                        parent.derived_debug
                                    };
                                    tuple_fields = Some((debug, 1));
                                }
                            }
                        }
                        ')' => {
                            if let Some((_, depth)) = tuple_fields.as_mut() {
                                *depth -= 1;
                                if *depth == 0 {
                                    tuple_fields = None;
                                }
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                TokenKind::Ident => {
                    match t.text {
                        "struct" | "enum" | "union" => {
                            introducer = Some(if t.text == "enum" { "enum" } else { t.text });
                            angle_depth = 0;
                            i += 1;
                            continue;
                        }
                        "fn" | "impl" | "trait" | "mod" => {
                            introducer = None;
                            i += 1;
                            continue;
                        }
                        _ => {}
                    }
                    let after_dot = i > 0 && sig[i - 1].is_punct('.');
                    let in_test = frames.iter().any(|f| f.test);
                    let top = frames.last().copied().unwrap_or_default();
                    let field_pos = top.type_body || tuple_fields.is_some();
                    let field_debug = (top.type_body && top.derived_debug)
                        || tuple_fields.is_some_and(|(d, _)| d);
                    let ctx = Ctx {
                        in_test,
                        field_pos,
                        field_debug,
                    };
                    if after_dot {
                        self.ident_rules(t, sig.get(i + 1), true, &ctx);
                        i += 1;
                        continue;
                    }
                    // A path expression: `a::b::c…`. Ident rules apply to
                    // every segment; path rules to the resolved whole.
                    let start = i;
                    let mut segments: Vec<&str> = vec![t.text];
                    self.ident_rules(t, sig.get(i + 1), false, &ctx);
                    while let (Some(c1), Some(c2), Some(seg)) =
                        (sig.get(i + 1), sig.get(i + 2), sig.get(i + 3))
                    {
                        if c1.is_punct(':')
                            && c2.is_punct(':')
                            && c1.glued(c2)
                            && seg.kind == TokenKind::Ident
                        {
                            segments.push(seg.text);
                            self.ident_rules(seg, sig.get(i + 4), false, &ctx);
                            i += 3;
                        } else {
                            break;
                        }
                    }
                    self.path_rules(sig[start].line, &segments, &ctx);
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// Rules keyed on a single identifier.
    fn ident_rules(&mut self, t: &Token<'a>, next: Option<&Token<'a>>, after_dot: bool, ctx: &Ctx) {
        let line = t.line;
        let class = self.class;
        match t.text {
            "Instant" | "SystemTime" => self.push(
                line,
                Rule::WallClock,
                format!("`{}`: wall-clock time differs between runs; use simnet virtual time", t.text),
            ),
            "thread_rng" | "OsRng" | "from_entropy" | "getrandom" => self.push(
                line,
                Rule::OsEntropy,
                format!("`{}`: OS entropy makes runs unrepeatable; seed a StdRng explicitly", t.text),
            ),
            "unsafe" => self.push(
                line,
                Rule::UnsafeCode,
                "unsafe code is forbidden workspace-wide".to_string(),
            ),
            "HashMap" | "HashSet" if class.strict => {
                self.push(
                    line,
                    Rule::HashIteration,
                    format!(
                        "`{}` iteration order is nondeterministic in simulation code; \
                         use BTreeMap/BTreeSet or sort before iterating",
                        t.text
                    ),
                );
                self.hash_field_leak(line, t.text, ctx);
            }
            "f32" | "f64" if class.strict && !class.test_like && !ctx.in_test && ctx.field_pos => {
                self.push(
                    line,
                    Rule::FloatNondet,
                    format!(
                        "`{}` field in protocol state: float accumulation order changes \
                         results across refactors; use integer ticks/fixed-point or annotate \
                         an audited knob with lint:allow(float-nondet)",
                        t.text
                    ),
                );
            }
            "println" | "print" | "eprintln" | "eprint"
                if !class.bin_like
                    && !class.test_like
                    && !ctx.in_test
                    && next.is_some_and(|n| n.is_punct('!')) =>
            {
                self.push(
                    line,
                    Rule::PrintlnInLib,
                    format!(
                        "`{}!` in library code; emit through the obs layer or return \
                         strings — stdout belongs to bin targets",
                        t.text
                    ),
                );
            }
            "unwrap" | "expect"
                if after_dot && class.strict && !class.test_like && !ctx.in_test =>
            {
                self.push(
                    line,
                    Rule::UnwrapExpect,
                    format!(
                        "`.{}()` in non-test simulation code; propagate a Result or \
                         annotate a genuine invariant with lint:allow(unwrap-expect)",
                        t.text
                    ),
                );
            }
            "spawn" if after_dot => self.push(
                line,
                Rule::ThreadSpawn,
                "`.spawn()`: scoped/builder spawns are still OS threads; the simulator \
                 is single-threaded"
                    .to_string(),
            ),
            _ => {}
        }
    }

    /// Rules keyed on a resolved path.
    fn path_rules(&mut self, line: usize, segments: &[&str], ctx: &Ctx) {
        // Textual `thread::spawn`-family and `rand::random` pairs fire
        // even unresolved, exactly like v1.
        for pair in segments.windows(2) {
            if pair[0] == "thread" && matches!(pair[1], "spawn" | "scope" | "Builder") {
                self.push(
                    line,
                    Rule::ThreadSpawn,
                    "OS threads introduce scheduling nondeterminism; the simulator is \
                     single-threaded"
                        .to_string(),
                );
            }
            if pair[0] == "rand" && pair[1] == "random" {
                self.push(
                    line,
                    Rule::OsEntropy,
                    "`rand::random` draws from OS entropy; seed a StdRng explicitly".to_string(),
                );
            }
        }

        let canon = self.imports.resolve(segments);
        let seg = |s: &str| canon.iter().any(|c| c == s);
        let class = self.class;
        match canon.first().map(String::as_str) {
            Some("std") => match canon.get(1).map(String::as_str) {
                Some("env")
                    if class.strict && !class.test_like && !class.bin_like && !ctx.in_test =>
                {
                    self.push(
                        line,
                        Rule::EnvRead,
                        "`std::env` reads the process environment — an input the seed does \
                         not control; simulation inputs must come from the scenario"
                            .to_string(),
                    );
                }
                Some(m @ ("fs" | "net"))
                    if class.strict && !class.test_like && !class.bin_like && !ctx.in_test =>
                {
                    self.push(
                        line,
                        Rule::IoInSim,
                        format!(
                            "`std::{m}`: real I/O in simulation code breaks deterministic \
                             replay; model it through simnet"
                        ),
                    );
                }
                Some("collections") if class.strict && (seg("HashMap") || seg("HashSet")) => {
                    let name = if seg("HashMap") { "HashMap" } else { "HashSet" };
                    self.push(
                        line,
                        Rule::HashIteration,
                        format!(
                            "resolves to `std::collections::{name}`: iteration order is \
                             nondeterministic in simulation code; use BTreeMap/BTreeSet \
                             or sort before iterating"
                        ),
                    );
                    self.hash_field_leak(line, name, ctx);
                }
                Some("time") if seg("Instant") || seg("SystemTime") => {
                    self.push(
                        line,
                        Rule::WallClock,
                        "resolves to `std::time::Instant`/`SystemTime`: wall-clock time \
                         differs between runs; use simnet virtual time"
                            .to_string(),
                    );
                }
                Some("thread") if seg("spawn") || seg("scope") || seg("Builder") => {
                    self.push(
                        line,
                        Rule::ThreadSpawn,
                        "OS threads introduce scheduling nondeterminism; the simulator is \
                         single-threaded"
                            .to_string(),
                    );
                }
                _ => {}
            },
            Some("rand")
                if seg("random") || seg("thread_rng") || seg("OsRng") || seg("from_entropy") =>
            {
                self.push(
                    line,
                    Rule::OsEntropy,
                    "resolves to a `rand` OS-entropy source; seed a StdRng explicitly"
                        .to_string(),
                );
            }
            _ => {}
        }
    }

    /// `debug-hash-leak`: a hash container named in a field position of a
    /// `#[derive(Debug)]` type.
    fn hash_field_leak(&mut self, line: usize, name: &str, ctx: &Ctx) {
        if self.class.strict && !self.class.test_like && !ctx.in_test && ctx.field_debug {
            self.push(
                line,
                Rule::DebugHashLeak,
                format!(
                    "`#[derive(Debug)]` type holds a `{name}` field: Debug renders hash \
                     containers in nondeterministic order, poisoning the execution \
                     fingerprint"
                ),
            );
        }
    }
}

/// Per-token context computed by the walker.
struct Ctx {
    in_test: bool,
    /// Directly inside a `struct`/`enum` body or tuple-field parens.
    field_pos: bool,
    /// …and that type derives `Debug`.
    field_debug: bool,
}

/// If `sig[i]` opens an attribute (`#[…]` or `#![…]`), returns the index
/// just past its closing `]`.
fn attribute(sig: &[Token<'_>], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if sig.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !sig.get(j).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    for (k, t) in sig.iter().enumerate().skip(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    Some(sig.len())
}

/// Does this attribute token span arm `#[cfg(test)]` and/or carry
/// `derive(… Debug …)`?
fn attr_flags(attr: &[Token<'_>]) -> (bool, bool) {
    let mut test = false;
    let mut debug = false;
    for (k, t) in attr.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "cfg"
            && attr.get(k + 1).is_some_and(|t| t.is_punct('('))
            && attr.get(k + 2).is_some_and(|t| t.kind == TokenKind::Ident && t.text == "test")
            && attr.get(k + 3).is_some_and(|t| t.is_punct(')'))
        {
            test = true;
        }
        if t.text == "derive" && attr.get(k + 1).is_some_and(|t| t.is_punct('(')) {
            let mut depth = 0usize;
            for u in &attr[k + 1..] {
                if u.is_punct('(') {
                    depth += 1;
                } else if u.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if u.kind == TokenKind::Ident && u.text == "Debug" {
                    debug = true;
                }
            }
        }
    }
    (test, debug)
}

/// Everything the analysis knows about one file.
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub unused_allows: Vec<UnusedAllow>,
    pub lines: usize,
    pub tokens: usize,
    pub use_decls: usize,
    pub allow_sites: usize,
    pub allows_used: usize,
    /// Allow-directive sites per rule name (known rules only).
    pub allow_rules: Vec<Rule>,
}

/// Analyzes one already-loaded source file: findings, allow-directive
/// accounting, and scan counters. `rel_path` decides which rules apply
/// (see [`classify`]) and is echoed into the findings.
pub fn analyze_source(rel_path: &str, source: &str) -> FileReport {
    let class = classify(rel_path);
    let tokens = lex::lex(source);
    let imports = Imports::collect(&tokens);
    let mut allows = collect_allows(&tokens);

    let sig: Vec<Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).copied().collect();
    let mut walker = Walker {
        path: rel_path,
        class,
        imports: &imports,
        findings: Vec::new(),
    };
    walker.run(&sig);

    // Allow filtering: a directive suppresses its rule on its own line and
    // the line below — unless the rule's escape hatch is scoped away from
    // this file. Every matching directive is marked used.
    let scope_ok = |rule: Rule| -> bool {
        if rule == Rule::ThreadSpawn && !class.orchestration && !class.test_like {
            return false;
        }
        if rule == Rule::PrintlnInLib && class.strict && !class.test_like {
            return false;
        }
        true
    };
    let mut findings = Vec::new();
    for f in walker.findings {
        let mut suppressed = false;
        if scope_ok(f.rule) {
            for site in allows.iter_mut() {
                if site.rule == Some(f.rule) && (site.line == f.line || site.line + 1 == f.line) {
                    site.used = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }

    let unused_allows = allows
        .iter()
        .filter(|s| !s.used)
        .map(|s| UnusedAllow {
            path: rel_path.to_string(),
            line: s.line,
            name: s.name.clone(),
        })
        .collect();
    FileReport {
        findings,
        unused_allows,
        lines: source.lines().count(),
        tokens: tokens.len(),
        use_decls: imports.use_decls,
        allow_sites: allows.len(),
        allows_used: allows.iter().filter(|s| s.used).count(),
        allow_rules: allows.iter().filter_map(|s| s.rule).collect(),
    }
}

/// Scans one already-loaded source file, returning only the findings.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    analyze_source(rel_path, source).findings
}

/// Deterministic counters for the whole-workspace scan, the payload of
/// `BENCH_lint.json`.
#[derive(Debug)]
pub struct ScanStats {
    pub files: usize,
    pub lines: usize,
    pub tokens: usize,
    pub use_decls: usize,
    pub allow_sites: usize,
    pub allows_used: usize,
    /// `(rule, findings, allow sites)` for every rule, in `Rule::ALL` order.
    pub per_rule: Vec<(Rule, usize, usize)>,
}

/// The whole-workspace analysis.
pub struct WorkspaceReport {
    pub findings: Vec<Finding>,
    pub unused_allows: Vec<UnusedAllow>,
    pub stats: ScanStats,
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` directories hold deliberate violations for the
            // lint crate's own tests; they are inputs, not workspace code.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Analyzes every `.rs` file under `root` (skipping `target/`, `fixtures/`
/// and dot directories), in sorted path order for deterministic output.
pub fn analyze_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    let mut unused_allows = Vec::new();
    let mut stats = ScanStats {
        files: 0,
        lines: 0,
        tokens: 0,
        use_decls: 0,
        allow_sites: 0,
        allows_used: 0,
        per_rule: Rule::ALL.iter().map(|&r| (r, 0, 0)).collect(),
    };
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let report = analyze_source(&rel, &source);
        stats.files += 1;
        stats.lines += report.lines;
        stats.tokens += report.tokens;
        stats.use_decls += report.use_decls;
        stats.allow_sites += report.allow_sites;
        stats.allows_used += report.allows_used;
        for f in &report.findings {
            if let Some(row) = stats.per_rule.iter_mut().find(|(r, _, _)| *r == f.rule) {
                row.1 += 1;
            }
        }
        for r in &report.allow_rules {
            if let Some(row) = stats.per_rule.iter_mut().find(|(pr, _, _)| pr == r) {
                row.2 += 1;
            }
        }
        findings.extend(report.findings);
        unused_allows.extend(report.unused_allows);
    }
    Ok(WorkspaceReport {
        findings,
        unused_allows,
        stats,
    })
}

/// Scans every `.rs` file under `root`, returning only the findings.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(analyze_workspace(root)?.findings)
}

/// Renders findings as a JSON array for machine consumption (`--json`).
/// The output parses back through `study::json::parse` — see the
/// round-trip test in `tests/lint_gate.rs`.
pub fn findings_to_json(findings: &[Finding]) -> String {
    use study::json::push_json_str;
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"path\":");
        push_json_str(&mut out, &f.path);
        out.push_str(&format!(",\"line\":{},\"rule\":", f.line));
        push_json_str(&mut out, f.rule.name());
        out.push_str(",\"message\":");
        push_json_str(&mut out, &f.message);
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRICT_FILE: &str = "crates/simnet/src/fabric.rs";
    const LOOSE_FILE: &str = "crates/study/src/types.rs";

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn wall_clock_and_entropy_fire_everywhere() {
        let src = "fn f() { let t = std::time::Instant::now(); let r = rand::thread_rng(); }\n";
        let fs = scan_source(LOOSE_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::WallClock, Rule::OsEntropy]);
        assert_eq!(fs[0].line, 1);
    }

    #[test]
    fn hash_types_fire_only_in_strict_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::HashIteration]);
        assert!(scan_source(LOOSE_FILE, src).is_empty());
    }

    #[test]
    fn unwrap_fires_only_in_strict_non_test_code() {
        let src = "fn f() { x.unwrap(); }\nfn g() { y.expect(\"msg\"); }\n";
        assert_eq!(
            rules(&scan_source(STRICT_FILE, src)),
            vec![Rule::UnwrapExpect, Rule::UnwrapExpect]
        );
        assert!(scan_source(LOOSE_FILE, src).is_empty());
        assert!(scan_source("crates/simnet/tests/props.rs", src).is_empty());
    }

    #[test]
    fn repeated_hits_on_one_line_dedup_to_one_finding() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::UnwrapExpect]);
    }

    #[test]
    fn expect_err_is_not_expect() {
        let src = "fn f() { y.expect_err(\"must fail\"); }\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt_from_unwrap() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\nfn h() { y.unwrap(); }\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 6);
    }

    #[test]
    fn cfg_not_test_does_not_open_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real {\n    fn g() { x.unwrap(); }\n}\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::UnwrapExpect]);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers_true() {
        let src = "fn f() { let s = \"a \\\n        b\"; }\nfn g() { x.unwrap(); }\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = concat!(
            "// HashMap Instant thread_rng\n",
            "/* unsafe SystemTime */\n",
            "fn f() { let s = \"HashMap unsafe\"; let r = r#\"Instant \"quoted\"\"#; }\n",
        );
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_are_skipped() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\"'; let d = '\\''; c }\nfn g() { q.unwrap(); }\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::UnwrapExpect]);
        assert_eq!(fs[0].line, 2);
    }

    #[test]
    fn backslash_char_literal_does_not_hide_code() {
        // v1's state machine over-consumed `'\\'` and swallowed the rest
        // of the line — this is one of the lexer's reasons to exist.
        let src = "fn f() { let c = '\\\\'; x.unwrap(); }\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::UnwrapExpect]);
    }

    #[test]
    fn raw_identifiers_do_not_fire_keyword_rules() {
        // v1 fired unsafe-code on `r#unsafe`, which is just an identifier.
        let src = "fn f() { let r#unsafe = 1; }\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let src = concat!(
            "fn f() { x.unwrap(); } // lint:allow(unwrap-expect)\n",
            "// lint:allow(wall-clock)\n",
            "fn g() { std::time::Instant::now(); }\n",
            "fn h() { y.unwrap(); }\n",
        );
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 4);
    }

    #[test]
    fn allow_of_wrong_rule_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // lint:allow(wall-clock)\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::UnwrapExpect]);
    }

    #[test]
    fn allow_accepts_multiple_rules() {
        let src = "// lint:allow(wall-clock, os-entropy)\nfn f() { Instant::now(); thread_rng(); }\n";
        assert!(scan_source(LOOSE_FILE, src).is_empty());
    }

    #[test]
    fn allow_on_final_line_without_newline_works() {
        let src = "fn f() { x.unwrap() } // lint:allow(unwrap-expect)";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn unused_allows_are_reported_with_rule_names() {
        let src = concat!(
            "// lint:allow(wall-clock)\n",
            "fn f() {}\n",
            "// lint:allow(unwrap-expect) -- used below\n",
            "fn g() { x.unwrap(); }\n",
            "// lint:allow(not-a-rule)\n",
        );
        let report = analyze_source(STRICT_FILE, src);
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
        let names: Vec<(usize, &str)> = report
            .unused_allows
            .iter()
            .map(|u| (u.line, u.name.as_str()))
            .collect();
        assert_eq!(names, vec![(1, "wall-clock"), (5, "not-a-rule")]);
        assert_eq!(report.allow_sites, 3);
        assert_eq!(report.allows_used, 1);
    }

    #[test]
    fn scope_ignored_allows_count_as_unused() {
        // thread-spawn allows are dead weight inside a simulation crate.
        let src = "// lint:allow(thread-spawn)\nfn f() { std::thread::spawn(|| {}); }\n";
        let report = analyze_source(STRICT_FILE, src);
        assert_eq!(rules(&report.findings), vec![Rule::ThreadSpawn]);
        assert_eq!(report.unused_allows.len(), 1);
    }

    #[test]
    fn unsafe_and_thread_spawn_fire() {
        let src = "fn f() { unsafe { std::thread::spawn(|| {}); } }\n";
        let fs = scan_source(LOOSE_FILE, src);
        assert!(fs.iter().any(|f| f.rule == Rule::UnsafeCode), "{fs:?}");
        assert!(fs.iter().any(|f| f.rule == Rule::ThreadSpawn), "{fs:?}");
    }

    #[test]
    fn scoped_and_builder_spawns_fire() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        let fs = scan_source(LOOSE_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::ThreadSpawn], "{fs:?}");
        let src = "fn g() { std::thread::Builder::new(); }\n";
        assert_eq!(rules(&scan_source(LOOSE_FILE, src)), vec![Rule::ThreadSpawn]);
        let src = "fn h() { builder.spawn(work)?; }\n";
        assert_eq!(rules(&scan_source(LOOSE_FILE, src)), vec![Rule::ThreadSpawn]);
    }

    #[test]
    fn thread_spawn_allows_are_scoped_to_the_fleet_crate() {
        let src = "// lint:allow(thread-spawn)\nfn f() { std::thread::spawn(|| {}); }\n";
        // The orchestration crate may annotate audited exceptions…
        assert!(scan_source("crates/fleet/src/pool.rs", src).is_empty());
        // …and test-like dirs keep the escape hatch…
        assert!(scan_source("crates/simnet/tests/t.rs", src).is_empty());
        // …but the same directive inside a simulation crate is ignored.
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::ThreadSpawn]);
        assert_eq!(rules(&scan_source(LOOSE_FILE, src)), vec![Rule::ThreadSpawn]);
        assert_eq!(rules(&scan_source("src/campaign.rs", src)), vec![Rule::ThreadSpawn]);
    }

    #[test]
    fn print_macros_fire_in_library_code_only() {
        let src = "fn f() { println!(\"x\"); }\nfn g() { eprint!(\"y\"); }\n";
        assert_eq!(
            rules(&scan_source(STRICT_FILE, src)),
            vec![Rule::PrintlnInLib, Rule::PrintlnInLib]
        );
        assert_eq!(rules(&scan_source(LOOSE_FILE, src)), vec![Rule::PrintlnInLib, Rule::PrintlnInLib]);
        // Bin targets own stdout.
        assert!(scan_source("crates/bench/src/bin/campaign.rs", src).is_empty());
        assert!(scan_source("crates/lint/src/main.rs", src).is_empty());
        // Tests and examples print freely.
        assert!(scan_source("crates/simnet/tests/t.rs", src).is_empty());
        assert!(scan_source("examples/demo.rs", src).is_empty());
    }

    #[test]
    fn print_calls_without_bang_do_not_fire() {
        let src = "fn f(p: &Printer) { p.print(); report.println(1); }\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_may_print() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { println!(\"dbg\"); }\n}\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn println_allows_are_ignored_in_simulation_crates() {
        let src = "// lint:allow(println-in-lib)\nfn f() { println!(\"x\"); }\n";
        // Non-simulation library code may annotate audited exceptions…
        assert!(scan_source("crates/shims/criterion/src/lib.rs", src).is_empty());
        // …but a simulation crate cannot waive the rule.
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::PrintlnInLib]);
        assert_eq!(rules(&scan_source("src/campaign.rs", src)), vec![Rule::PrintlnInLib]);
    }

    #[test]
    fn root_src_is_strict() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(rules(&scan_source("src/campaign.rs", src)), vec![Rule::UnwrapExpect]);
    }

    #[test]
    fn obs_is_strict() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules(&scan_source("crates/obs/src/recorder.rs", src)),
            vec![Rule::UnwrapExpect]
        );
    }

    #[test]
    fn aliased_hash_imports_are_resolved() {
        // The import line itself is caught by the ident rule; the alias
        // use-sites only fall to the resolver.
        // The allow covers the import line and the line below it only —
        // alias use-sites further down still fire.
        let src = "use std::collections::HashMap as Map; // lint:allow(hash-iteration)\n\
                   \n\
                   fn f() { let m: Map<u8, u8> = Map::new(); }\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::HashIteration]);
        assert_eq!(fs[0].line, 3);
        assert!(fs[0].message.contains("resolves to"), "{}", fs[0].message);
    }

    #[test]
    fn qualified_paths_fire_without_imports() {
        let src = "fn f() { let m = std::collections::HashMap::<u8, u8>::new(); }\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::HashIteration]);
        // Aliased wall-clock types resolve too.
        let src = "use std::time::Instant as Clock; // lint:allow(wall-clock)\n\
                   \n\
                   fn f() { let t = Clock::now(); }\n";
        let fs = scan_source(LOOSE_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::WallClock]);
        assert_eq!(fs[0].line, 3);
    }

    #[test]
    fn env_read_fires_in_strict_crates_only() {
        let src = "fn f() { let v = std::env::var(\"SEED\"); }\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::EnvRead]);
        assert!(scan_source(LOOSE_FILE, src).is_empty());
        // Bin targets own their CLI/environment.
        assert!(scan_source("crates/simnet/src/main.rs", src).is_empty());
        // Aliased module imports resolve.
        let src = "use std::env as environment;\nfn f() { environment::var(\"X\"); }\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::EnvRead, Rule::EnvRead]);
    }

    #[test]
    fn env_macro_is_not_env_read() {
        let src = "fn f() -> &'static str { env!(\"CARGO_MANIFEST_DIR\") }\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn io_in_sim_fires_for_fs_and_net() {
        let src = "fn f() { let _ = std::fs::read(\"x\"); }\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::IoInSim]);
        let src = "use std::net::TcpStream;\nfn f(s: TcpStream) {}\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::IoInSim, Rule::IoInSim]);
        // Non-simulation crates may do I/O.
        let src = "fn f() { let _ = std::fs::read(\"x\"); }\n";
        assert!(scan_source("crates/bench/src/reports.rs", src).is_empty());
        assert!(scan_source("crates/simnet/tests/t.rs", src).is_empty());
    }

    #[test]
    fn float_fields_fire_in_type_bodies_only() {
        let src = "struct Cfg { p: f64 }\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::FloatNondet]);
        // Locals, params, and returns are fine — accumulation in state is
        // the hazard, not arithmetic.
        let src = "fn f(x: f64) -> f64 { let y: f32 = 0.5; x }\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
        // Tuple structs and enum variants are fields too.
        let src = "struct P(f64);\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::FloatNondet]);
        let src = "enum E { V { p: f64 }, W(f32) }\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::FloatNondet]);
        // Not strict ⇒ not checked.
        let src = "struct Cfg { p: f64 }\n";
        assert!(scan_source(LOOSE_FILE, src).is_empty());
        // Test fixtures may hold floats.
        let src = "#[cfg(test)]\nmod t { struct S { p: f64 } }\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn float_generic_bounds_are_not_fields() {
        let src = "struct S<F: Fn(f64) -> f64> { f: F }\n";
        assert!(scan_source(STRICT_FILE, src).is_empty());
    }

    #[test]
    fn debug_hash_leak_fires_on_derived_types_with_hash_fields() {
        let src = "// lint:allow(hash-iteration)\n\
                   use std::collections::HashMap;\n\
                   #[derive(Clone, Debug)]\n\
                   struct State { m: HashMap<u8, u8> } // lint:allow(hash-iteration)\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::DebugHashLeak]);
        assert_eq!(fs[0].line, 4);
        // Without derive(Debug) only hash-iteration fires.
        let src = "struct State { m: HashMap<u8, u8> }\n";
        assert_eq!(rules(&scan_source(STRICT_FILE, src)), vec![Rule::HashIteration]);
        // Aliased field types leak just the same.
        let src = "// lint:allow(hash-iteration)\n\
                   use std::collections::HashSet as Seen;\n\
                   #[derive(Debug)]\n\
                   pub struct Tracker(Seen<u64>); // lint:allow(hash-iteration)\n";
        let fs = scan_source(STRICT_FILE, src);
        assert_eq!(rules(&fs), vec![Rule::DebugHashLeak]);
    }

    #[test]
    fn findings_render_as_path_line_rule() {
        let fs = scan_source(STRICT_FILE, "fn f() { x.unwrap(); }\n");
        let line = fs[0].to_string();
        assert!(
            line.starts_with("crates/simnet/src/fabric.rs:1: unwrap-expect:"),
            "{line}"
        );
    }

    #[test]
    fn json_output_is_well_formed() {
        let fs = scan_source(STRICT_FILE, "fn f() { x.unwrap(); }\n");
        let json = findings_to_json(&fs);
        assert!(json.contains("\"rule\":\"unwrap-expect\""), "{json}");
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(findings_to_json(&[]), "[]");
    }
}
