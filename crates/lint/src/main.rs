//! CLI for the determinism guard.
//!
//! ```text
//! cargo run -p lint                 # static pass over the workspace
//! cargo run -p lint -- --json      # same, machine-readable findings
//! cargo run -p lint -- --audit     # dynamic double-run trace audit
//! cargo run -p lint -- --audit --seed 7
//! cargo run -p lint -- --audit --jobs 4   # fleet-sharded, same bytes
//! cargo run -p lint -- --root /path/to/tree
//! ```
//!
//! Exit codes: `0` clean, `1` violations or trace divergence found,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    json: bool,
    audit: bool,
    root: Option<PathBuf>,
    seed: u64,
    jobs: usize,
}

fn usage() -> &'static str {
    "usage: lint [--json] [--root <dir>] [--audit] [--seed <n>] [--jobs <k>]\n\
     \n\
     Default mode scans every .rs file under the workspace for the\n\
     determinism rules (hash-iteration, wall-clock, os-entropy,\n\
     thread-spawn, unsafe-code, unwrap-expect, println-in-lib).\n\
     --audit instead runs\n\
     every registered scenario twice with the same seed and compares\n\
     the execution fingerprints; --jobs K shards the audit across K\n\
     fleet workers with byte-identical output."
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        json: false,
        audit: false,
        root: None,
        seed: 42,
        jobs: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--audit" => opts.audit = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--seed" => {
                let n = args.next().ok_or("--seed requires a number")?;
                opts.seed = n.parse().map_err(|_| format!("invalid seed `{n}`"))?;
            }
            "--jobs" => {
                let n = args.next().ok_or("--jobs requires a worker count")?;
                let jobs: usize = n.parse().map_err(|_| format!("invalid job count `{n}`"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = jobs;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    explicit.unwrap_or_else(|| {
        // crates/lint -> crates -> workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    })
}

fn run_scan(opts: &Opts) -> ExitCode {
    let root = workspace_root(opts.root.clone());
    let findings = match lint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if opts.json {
        println!("{}", lint::findings_to_json(&findings));
    } else if findings.is_empty() {
        println!("lint: workspace clean under all determinism rules");
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!("lint: {} violation(s)", findings.len());
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_audit(opts: &Opts) -> ExitCode {
    let outcomes = fleet::campaign::audit(opts.seed, opts.jobs);
    let mut failures = 0usize;
    for outcome in &outcomes {
        if outcome.is_ok() {
            println!("{}", outcome.render());
        } else {
            eprintln!("{}", outcome.render());
            failures += 1;
        }
    }
    println!(
        "audit: {} scenario arm(s) double-run with seed {}, {failures} divergence(s)",
        outcomes.len(),
        opts.seed
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if opts.audit {
        run_audit(&opts)
    } else {
        run_scan(&opts)
    }
}
