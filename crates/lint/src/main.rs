//! CLI for the determinism guard.
//!
//! ```text
//! cargo run -p lint                 # static pass + registry consistency
//! cargo run -p lint -- --json      # same, machine-readable findings
//! cargo run -p lint -- --unused-allows  # report stale lint:allow sites
//! cargo run -p lint -- --registry  # registry-consistency pass only
//! cargo run -p lint -- --audit     # dynamic double-run trace audit
//! cargo run -p lint -- --audit --seed 7
//! cargo run -p lint -- --audit --jobs 4   # fleet-sharded, same bytes
//! cargo run -p lint -- --root /path/to/tree
//! ```
//!
//! Exit codes: `0` clean, `1` violations or trace divergence found,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    json: bool,
    audit: bool,
    unused_allows: bool,
    registry: bool,
    root: Option<PathBuf>,
    seed: u64,
    jobs: usize,
}

fn usage() -> &'static str {
    "usage: lint [--json] [--root <dir>] [--unused-allows] [--registry]\n\
     \x20           [--audit] [--seed <n>] [--jobs <k>]\n\
     \n\
     Default mode scans every .rs file under the workspace for the\n\
     determinism rules (hash-iteration, wall-clock, os-entropy,\n\
     thread-spawn, unsafe-code, unwrap-expect, println-in-lib,\n\
     env-read, io-in-sim, float-nondet, debug-hash-leak), then\n\
     cross-checks the scenario/arm registry against the committed\n\
     golden artifacts when they are present under the root.\n\
     --unused-allows instead reports lint:allow directives that no\n\
     longer suppress any finding; --registry runs only the\n\
     registry-consistency pass. --audit runs every registered\n\
     scenario twice with the same seed and compares the execution\n\
     fingerprints; --jobs K shards the audit across K fleet workers\n\
     with byte-identical output."
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        json: false,
        audit: false,
        unused_allows: false,
        registry: false,
        root: None,
        seed: 42,
        jobs: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--audit" => opts.audit = true,
            "--unused-allows" => opts.unused_allows = true,
            "--registry" => opts.registry = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--seed" => {
                let n = args.next().ok_or("--seed requires a number")?;
                opts.seed = n.parse().map_err(|_| format!("invalid seed `{n}`"))?;
            }
            "--jobs" => {
                let n = args.next().ok_or("--jobs requires a worker count")?;
                let jobs: usize = n.parse().map_err(|_| format!("invalid job count `{n}`"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = jobs;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    explicit.unwrap_or_else(|| {
        // crates/lint -> crates -> workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    })
}

fn run_scan(opts: &Opts) -> ExitCode {
    let root = workspace_root(opts.root.clone());
    let report = match lint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = report.findings;
    if opts.json {
        println!("{}", lint::findings_to_json(&findings));
    } else if findings.is_empty() {
        println!("lint: workspace clean under all determinism rules");
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!("lint: {} violation(s)", findings.len());
    }
    let mut failures = findings.len();
    // The registry pass only applies when the tree carries the golden
    // artifacts (i.e. the workspace root, not an arbitrary --root dir).
    if !opts.json && lint::registry::artifacts_present(&root) {
        failures += run_registry_checks(&root);
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prints registry findings; returns how many there were.
fn run_registry_checks(root: &std::path::Path) -> usize {
    let report = lint::check_registry(root);
    for f in &report.findings {
        println!("{f}");
    }
    if report.findings.is_empty() {
        println!(
            "lint: registry consistent ({} scenarios, {} arms)",
            report.scenarios, report.arms
        );
    } else {
        eprintln!("lint: {} registry inconsistency(ies)", report.findings.len());
    }
    report.findings.len()
}

fn run_registry(opts: &Opts) -> ExitCode {
    let root = workspace_root(opts.root.clone());
    if run_registry_checks(&root) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_unused_allows(opts: &Opts) -> ExitCode {
    let root = workspace_root(opts.root.clone());
    let report = match lint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for u in &report.unused_allows {
        println!("{u}");
    }
    if report.unused_allows.is_empty() {
        println!(
            "lint: all {} lint:allow site(s) suppress at least one finding",
            report.stats.allow_sites
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {} unused allow(s)", report.unused_allows.len());
        ExitCode::FAILURE
    }
}

fn run_audit(opts: &Opts) -> ExitCode {
    let outcomes = fleet::campaign::audit(opts.seed, opts.jobs);
    let mut failures = 0usize;
    for outcome in &outcomes {
        if outcome.is_ok() {
            println!("{}", outcome.render());
        } else {
            eprintln!("{}", outcome.render());
            failures += 1;
        }
    }
    println!(
        "audit: {} scenario arm(s) double-run with seed {}, {failures} divergence(s)",
        outcomes.len(),
        opts.seed
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if opts.audit {
        run_audit(&opts)
    } else if opts.registry {
        run_registry(&opts)
    } else if opts.unused_allows {
        run_unused_allows(&opts)
    } else {
        run_scan(&opts)
    }
}
