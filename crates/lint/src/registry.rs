//! The registry-consistency pass.
//!
//! `src/campaign.rs` is the single source of truth for scenario and arm
//! IDs, but three other places repeat those names: the committed golden
//! artifacts, the Table 15 / catalog-coverage mappings inside the
//! campaign itself, and string literals in the workspace tests. A typo
//! or a renamed scenario silently decays into "not modelled" rows and
//! dead forensics blocks — this pass makes that a lint failure instead.
//!
//! Checks, each a cheap cross-reference:
//!
//! 1. every registered scenario appears in `campaign_output.txt`;
//! 2. `forensics_output.txt` block headers (`== name — …`) and the
//!    registry agree in *both* directions;
//! 3. `BENCH_forensics.json` `per_scenario` names and its `scenarios`
//!    count agree with the registry (parsed with [`study::json`]);
//! 4. every `BENCH_gray.json` scenario is registered;
//! 5. every `"arms"`/`"scenarios"` counter in `BENCH_perf.json` and
//!    `BENCH_fleet.json` matches the registry;
//! 6. every scenario named by `table15` / `catalog_coverage` is
//!    registered (dead internal references);
//! 7. arm-shaped string literals (`…/flawed`, `…/fixed`) in the root
//!    `tests/` tree name registered scenarios;
//! 8. `BENCH_workload.json` `per_scenario` names and the registry's
//!    load-driven subset (partition label `load*`) agree in *both*
//!    directions, every row drove a non-zero operation count, and the
//!    sharded ladder's `byte_identical` verdict is `true`;
//! 9. `BENCH_explore.json` `minimized` names and the registry's
//!    delta-minimized subset (partition label `explored*`) agree in
//!    *both* directions, every minimized row is still 1-minimal with a
//!    firing flawed arm and a clean fixed arm, coverage-guided search
//!    still strictly beats naive on at least two targets, and the
//!    sharded exploration merge is still byte-identical.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lex::{self, TokenKind};
use study::json::Value;

/// One inconsistency between the registry and an artifact or reference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegistryFinding {
    /// The artifact or reference site the registry disagrees with.
    pub artifact: String,
    pub message: String,
}

impl std::fmt::Display for RegistryFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "registry: {}: {}", self.artifact, self.message)
    }
}

/// The outcome of the pass: registry shape plus any inconsistencies.
#[derive(Debug)]
pub struct RegistryReport {
    pub scenarios: usize,
    pub arms: usize,
    pub findings: Vec<RegistryFinding>,
}

/// True when `root` looks like a checkout carrying the golden artifacts
/// this pass cross-checks (the default `lint` run skips the pass on
/// bare trees, e.g. `--root` pointed at a single crate).
pub fn artifacts_present(root: &Path) -> bool {
    root.join("campaign_output.txt").exists()
}

/// Runs every check against the artifacts under `root`. The registry
/// itself comes from the linked `neat_repro::campaign`, so the pass
/// compares the *code's* scenario set against the committed bytes.
pub fn check_registry(root: &Path) -> RegistryReport {
    let registered: BTreeSet<String> = neat_repro::campaign::registry()
        .iter()
        .map(|s| s.name.to_string())
        .collect();
    let arms = neat_repro::campaign::arm_ids().len();
    let mut findings = Vec::new();

    check_campaign_output(root, &registered, &mut findings);
    check_forensics_text(root, &registered, &mut findings);
    check_forensics_bench(root, &registered, &mut findings);
    check_gray_bench(root, &registered, &mut findings);
    check_counts(root, "BENCH_perf.json", registered.len(), arms, &mut findings);
    check_counts(root, "BENCH_fleet.json", registered.len(), arms, &mut findings);
    check_internal_references(&registered, &mut findings);
    check_test_references(root, &registered, &mut findings);
    check_workload_bench(root, &mut findings);
    check_explore_bench(root, &mut findings);

    RegistryReport {
        scenarios: registered.len(),
        arms,
        findings,
    }
}

fn push(findings: &mut Vec<RegistryFinding>, artifact: &str, message: String) {
    findings.push(RegistryFinding {
        artifact: artifact.to_string(),
        message,
    });
}

fn read(root: &Path, name: &str, findings: &mut Vec<RegistryFinding>) -> Option<String> {
    match std::fs::read_to_string(root.join(name)) {
        Ok(s) => Some(s),
        Err(e) => {
            push(findings, name, format!("cannot read artifact: {e}"));
            None
        }
    }
}

/// Check 1: every registered scenario shows up in the campaign table.
fn check_campaign_output(
    root: &Path,
    registered: &BTreeSet<String>,
    findings: &mut Vec<RegistryFinding>,
) {
    let Some(text) = read(root, "campaign_output.txt", findings) else {
        return;
    };
    for name in registered {
        if !text.contains(name.as_str()) {
            push(
                findings,
                "campaign_output.txt",
                format!("registered scenario `{name}` missing from the campaign table — regenerate the goldens"),
            );
        }
    }
}

/// Check 2: forensics block headers ↔ registry, both directions.
fn check_forensics_text(
    root: &Path,
    registered: &BTreeSet<String>,
    findings: &mut Vec<RegistryFinding>,
) {
    let Some(text) = read(root, "forensics_output.txt", findings) else {
        return;
    };
    let blocks: BTreeSet<String> = text
        .lines()
        .filter_map(|l| l.strip_prefix("== "))
        .filter(|l| l.contains(" — "))
        .filter_map(|l| l.split(" — ").next())
        .map(str::to_string)
        .collect();
    for name in registered.difference(&blocks) {
        push(
            findings,
            "forensics_output.txt",
            format!("registered scenario `{name}` has no forensics block"),
        );
    }
    for name in blocks.difference(registered) {
        push(
            findings,
            "forensics_output.txt",
            format!("forensics block `{name}` names an unregistered scenario"),
        );
    }
}

/// Check 3: BENCH_forensics.json per-scenario names and counts.
fn check_forensics_bench(
    root: &Path,
    registered: &BTreeSet<String>,
    findings: &mut Vec<RegistryFinding>,
) {
    let Some(text) = read(root, "BENCH_forensics.json", findings) else {
        return;
    };
    let doc = match study::json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            push(findings, "BENCH_forensics.json", format!("unparseable: {e}"));
            return;
        }
    };
    if let Some(n) = doc.get("scenarios").and_then(Value::as_u64) {
        if n as usize != registered.len() {
            push(
                findings,
                "BENCH_forensics.json",
                format!("records {n} scenarios; the registry has {}", registered.len()),
            );
        }
    }
    let names: BTreeSet<String> = doc
        .get("per_scenario")
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|row| row.get("scenario").and_then(Value::as_str))
        .map(str::to_string)
        .collect();
    for name in registered.difference(&names) {
        push(
            findings,
            "BENCH_forensics.json",
            format!("registered scenario `{name}` missing from per_scenario"),
        );
    }
    for name in names.difference(registered) {
        push(
            findings,
            "BENCH_forensics.json",
            format!("per_scenario entry `{name}` names an unregistered scenario"),
        );
    }
}

/// Check 4: every gray-bench scenario is registered.
fn check_gray_bench(
    root: &Path,
    registered: &BTreeSet<String>,
    findings: &mut Vec<RegistryFinding>,
) {
    let Some(text) = read(root, "BENCH_gray.json", findings) else {
        return;
    };
    let doc = match study::json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            push(findings, "BENCH_gray.json", format!("unparseable: {e}"));
            return;
        }
    };
    let mut names = Vec::new();
    collect_key_strings(&doc, "scenario", &mut names);
    for name in names {
        if !registered.contains(&name) {
            push(
                findings,
                "BENCH_gray.json",
                format!("scenario `{name}` is not registered"),
            );
        }
    }
}

/// Check 5: every `"scenarios"`/`"arms"` counter matches the registry.
fn check_counts(
    root: &Path,
    artifact: &str,
    scenarios: usize,
    arms: usize,
    findings: &mut Vec<RegistryFinding>,
) {
    let Some(text) = read(root, artifact, findings) else {
        return;
    };
    let doc = match study::json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            push(findings, artifact, format!("unparseable: {e}"));
            return;
        }
    };
    let mut counts = Vec::new();
    collect_key_nums(&doc, "arms", &mut counts);
    for n in counts.drain(..) {
        if n as usize != arms {
            push(
                findings,
                artifact,
                format!("records {n} arms; the registry has {arms}"),
            );
        }
    }
    collect_key_nums(&doc, "scenarios", &mut counts);
    for n in counts {
        if n as usize != scenarios {
            push(
                findings,
                artifact,
                format!("records {n} scenarios; the registry has {scenarios}"),
            );
        }
    }
}

/// Check 6: Table 15 and catalog-coverage rows reference live scenarios.
fn check_internal_references(
    registered: &BTreeSet<String>,
    findings: &mut Vec<RegistryFinding>,
) {
    for row in neat_repro::campaign::table15(&[]) {
        if let Some(name) = row.scenario {
            if !registered.contains(name) {
                push(
                    findings,
                    "src/campaign.rs (table15)",
                    format!(
                        "row {} {} maps to `{name}`, which is not registered",
                        row.system, row.reference
                    ),
                );
            }
        }
    }
    for (reference, name) in neat_repro::campaign::catalog_coverage() {
        if !registered.contains(name) {
            push(
                findings,
                "src/campaign.rs (catalog_coverage)",
                format!("catalog row {reference} maps to `{name}`, which is not registered"),
            );
        }
    }
}

/// Check 7: arm-shaped string literals in the root `tests/` tree.
fn check_test_references(
    root: &Path,
    registered: &BTreeSet<String>,
    findings: &mut Vec<RegistryFinding>,
) {
    let dir = root.join("tests");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no root tests tree: nothing to cross-check
    };
    let mut files: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    for path in files {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = format!("tests/{}", path.file_name().unwrap_or_default().to_string_lossy());
        for t in lex::lex(&source) {
            if t.kind != TokenKind::Str {
                continue;
            }
            let Some(contents) = t.str_contents() else {
                continue;
            };
            let Some(scenario) = contents
                .strip_suffix("/flawed")
                .or_else(|| contents.strip_suffix("/fixed"))
            else {
                continue;
            };
            if !scenario.is_empty() && !registered.contains(scenario) {
                push(
                    findings,
                    &rel,
                    format!(
                        "line {}: arm literal `{contents}` names unregistered scenario `{scenario}`",
                        t.line
                    ),
                );
            }
        }
    }
}

/// Check 8: BENCH_workload.json ↔ the registry's load-driven subset,
/// both directions, plus the op counters and the ladder verdict. A
/// doctored or rotted artifact fails here: a ghost scenario, a dropped
/// scenario, a row that drove no traffic, or a ladder whose sharded
/// runs stopped merging byte-identically.
fn check_workload_bench(root: &Path, findings: &mut Vec<RegistryFinding>) {
    const ARTIFACT: &str = "BENCH_workload.json";
    let load: BTreeSet<String> = neat_repro::campaign::registry()
        .iter()
        .filter(|s| s.partition.starts_with("load"))
        .map(|s| s.name.to_string())
        .collect();
    let Some(text) = read(root, ARTIFACT, findings) else {
        return;
    };
    let doc = match study::json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            push(findings, ARTIFACT, format!("unparseable: {e}"));
            return;
        }
    };
    let mut names = BTreeSet::new();
    for row in doc
        .get("per_scenario")
        .and_then(Value::as_array)
        .unwrap_or(&[])
    {
        let Some(name) = row.get("scenario").and_then(Value::as_str) else {
            continue;
        };
        names.insert(name.to_string());
        if row.get("ops").and_then(Value::as_u64) == Some(0) {
            push(
                findings,
                ARTIFACT,
                format!("scenario `{name}` drove zero operations"),
            );
        }
    }
    for name in load.difference(&names) {
        push(
            findings,
            ARTIFACT,
            format!("registered load scenario `{name}` missing from per_scenario"),
        );
    }
    for name in names.difference(&load) {
        push(
            findings,
            ARTIFACT,
            format!("per_scenario entry `{name}` is not a registered load scenario"),
        );
    }
    match doc
        .get("open_loop")
        .and_then(|o| o.get("byte_identical"))
        .and_then(Value::as_bool)
    {
        Some(true) => {}
        Some(false) => push(
            findings,
            ARTIFACT,
            "the sharded open-loop ladder no longer merges byte-identically".to_string(),
        ),
        None => push(
            findings,
            ARTIFACT,
            "missing the open_loop byte_identical verdict".to_string(),
        ),
    }
}

/// Check 9: BENCH_explore.json ↔ the registry's delta-minimized subset,
/// both directions, plus the per-row repro verdicts and the pipeline's
/// acceptance verdicts. A doctored or rotted artifact fails here: a
/// ghost regression, a dropped regression, a schedule that is no longer
/// 1-minimal, a flawed arm that stopped firing, a fixed arm that started
/// firing, a coverage comparison that fell under the two-target floor,
/// or a sharded exploration that stopped merging byte-identically.
fn check_explore_bench(root: &Path, findings: &mut Vec<RegistryFinding>) {
    const ARTIFACT: &str = "BENCH_explore.json";
    let explored: BTreeSet<String> = neat_repro::campaign::registry()
        .iter()
        .filter(|s| s.partition.starts_with("explored"))
        .map(|s| s.name.to_string())
        .collect();
    let Some(text) = read(root, ARTIFACT, findings) else {
        return;
    };
    let doc = match study::json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            push(findings, ARTIFACT, format!("unparseable: {e}"));
            return;
        }
    };
    let mut names = BTreeSet::new();
    for row in doc.get("minimized").and_then(Value::as_array).unwrap_or(&[]) {
        let Some(name) = row.get("scenario").and_then(Value::as_str) else {
            continue;
        };
        names.insert(name.to_string());
        if row.get("one_minimal").and_then(Value::as_bool) != Some(true) {
            push(
                findings,
                ARTIFACT,
                format!("minimized schedule `{name}` is not 1-minimal"),
            );
        }
        if row
            .get("flawed")
            .and_then(Value::as_array)
            .is_none_or(<[Value]>::is_empty)
        {
            push(
                findings,
                ARTIFACT,
                format!("minimized schedule `{name}` no longer fires on the flawed arm"),
            );
        }
        if row
            .get("fixed")
            .and_then(Value::as_array)
            .is_none_or(|a| !a.is_empty())
        {
            push(
                findings,
                ARTIFACT,
                format!("minimized schedule `{name}` fires on the fixed arm"),
            );
        }
    }
    for name in explored.difference(&names) {
        push(
            findings,
            ARTIFACT,
            format!("registered explored scenario `{name}` missing from minimized"),
        );
    }
    for name in names.difference(&explored) {
        push(
            findings,
            ARTIFACT,
            format!("minimized entry `{name}` is not a registered explored scenario"),
        );
    }
    match doc
        .get("coverage_strictly_better_targets")
        .and_then(Value::as_u64)
    {
        Some(n) if n >= 2 => {}
        Some(n) => push(
            findings,
            ARTIFACT,
            format!("coverage-guided search beats naive on only {n} targets (needs >= 2)"),
        ),
        None => push(
            findings,
            ARTIFACT,
            "missing the coverage_strictly_better_targets verdict".to_string(),
        ),
    }
    match doc
        .get("sharded")
        .and_then(|o| o.get("byte_identical"))
        .and_then(Value::as_bool)
    {
        Some(true) => {}
        Some(false) => push(
            findings,
            ARTIFACT,
            "the sharded exploration no longer merges byte-identically".to_string(),
        ),
        None => push(
            findings,
            ARTIFACT,
            "missing the sharded byte_identical verdict".to_string(),
        ),
    }
}

/// Collects every string under `key` anywhere in the document.
fn collect_key_strings(doc: &Value, key: &str, out: &mut Vec<String>) {
    match doc {
        Value::Obj(fields) => {
            for (k, v) in fields {
                if k == key {
                    if let Some(s) = v.as_str() {
                        out.push(s.to_string());
                    }
                }
                collect_key_strings(v, key, out);
            }
        }
        Value::Arr(items) => {
            for v in items {
                collect_key_strings(v, key, out);
            }
        }
        _ => {}
    }
}

/// Collects every number under `key` anywhere in the document.
fn collect_key_nums(doc: &Value, key: &str, out: &mut Vec<u64>) {
    match doc {
        Value::Obj(fields) => {
            for (k, v) in fields {
                if k == key {
                    if let Some(n) = v.as_u64() {
                        out.push(n);
                    }
                }
                collect_key_nums(v, key, out);
            }
        }
        Value::Arr(items) => {
            for v in items {
                collect_key_nums(v, key, out);
            }
        }
        _ => {}
    }
}
