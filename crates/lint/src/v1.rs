//! The v1 scanner, frozen as a comparison baseline.
//!
//! This is the original line-oriented pass: strip comments and literals
//! with a state machine, then match identifiers in what is left. It is
//! kept verbatim (findings restricted to the original seven rules) so
//! tests can demonstrate exactly what the lexer-based pass in
//! [`crate::scan`] catches that this one provably misses:
//!
//! - aliased imports (`use std::collections::HashMap as Map;` — the
//!   alias use-sites never mention a banned name),
//! - `debug-hash-leak` and the other v2 rule families (no notion of
//!   type bodies or attributes),
//! - code after a `'\\'` char literal (the escape handling below steps
//!   past the closing tick and swallows the rest of the line),
//! - raw identifiers (`r#unsafe` fired the unsafe-code rule).
//!
//! Do not extend this module; new behaviour belongs in [`crate::scan`].

use crate::scan::{classify, Finding, Rule};

/// One source line after comment/literal stripping.
struct CleanLine {
    text: String,
    /// Any part of the line sits inside a `#[cfg(test)]` brace region.
    in_test: bool,
}

struct Cleaned {
    lines: Vec<CleanLine>,
    /// `(line, rule)` pairs from `lint:allow(...)` comment directives.
    allows: Vec<(usize, Rule)>,
}

fn collect_allows(comment: &str, line: usize, allows: &mut Vec<(usize, Rule)>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else { return };
        for name in rest[..end].split(',') {
            if let Some(rule) = Rule::from_name(name.trim()) {
                allows.push((line, rule));
            }
        }
        rest = &rest[end..];
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Strips comments and string/char literals, recording `lint:allow`
/// directives and which lines sit inside `#[cfg(test)]` regions.
fn clean(source: &str) -> Cleaned {
    enum St {
        Code,
        LineComment,
        BlockComment,
        Str,
        RawStr,
    }

    let chars: Vec<char> = source.chars().collect();
    let mut st = St::Code;
    let mut block_depth = 0usize;
    let mut raw_hashes = 0usize;

    let mut lines = Vec::new();
    let mut allows = Vec::new();
    let mut cur = String::new();
    let mut comment_buf = String::new();
    let mut line_no = 1usize;

    let mut pending_test = false;
    let mut brace_stack: Vec<bool> = Vec::new();
    let mut test_depth = 0usize;
    let mut line_in_test = false;

    let mut prev_code: Option<char> = None;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            match st {
                St::LineComment => {
                    collect_allows(&comment_buf, line_no, &mut allows);
                    comment_buf.clear();
                    st = St::Code;
                }
                St::BlockComment => {
                    collect_allows(&comment_buf, line_no, &mut allows);
                    comment_buf.clear();
                }
                _ => {}
            }
            lines.push(CleanLine {
                text: std::mem::take(&mut cur),
                in_test: line_in_test || test_depth > 0,
            });
            line_in_test = test_depth > 0;
            line_no += 1;
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment;
                    block_depth = 1;
                    i += 2;
                    continue;
                }
                if (c == 'r' || c == 'b') && !prev_code.is_some_and(is_ident_char) {
                    let mut k = i;
                    if chars.get(k) == Some(&'b') {
                        k += 1;
                    }
                    if chars.get(k) == Some(&'r') {
                        k += 1;
                        let mut hashes = 0usize;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') {
                            st = St::RawStr;
                            raw_hashes = hashes;
                            prev_code = None;
                            i = k + 1;
                            continue;
                        }
                    }
                }
                if c == '"' {
                    st = St::Str;
                    prev_code = None;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // BUG (kept): for `'\\'` this loop takes the escaped
                    // backslash, then lands on the *closing* tick's
                    // backslash-free neighbour and keeps walking to the
                    // next tick or EOF, swallowing live code.
                    if chars.get(i + 1) == Some(&'\\') {
                        let mut j = i + 2;
                        while j < chars.len() {
                            if chars[j] == '\\' {
                                j += 2;
                            } else if chars[j] == '\'' {
                                j += 1;
                                break;
                            } else {
                                j += 1;
                            }
                        }
                        i = j;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        i += 3;
                    } else {
                        i += 1;
                    }
                    prev_code = None;
                    continue;
                }
                cur.push(c);
                prev_code = Some(c);
                match c {
                    ']' if cur.ends_with("#[cfg(test)]") => pending_test = true,
                    ';' => pending_test = false,
                    '{' => {
                        brace_stack.push(pending_test);
                        if pending_test {
                            test_depth += 1;
                            line_in_test = true;
                        }
                        pending_test = false;
                    }
                    '}' => {
                        if brace_stack.pop() == Some(true) {
                            test_depth -= 1;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            St::LineComment => {
                comment_buf.push(c);
                i += 1;
            }
            St::BlockComment => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    block_depth += 1;
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    block_depth -= 1;
                    i += 2;
                    if block_depth == 0 {
                        collect_allows(&comment_buf, line_no, &mut allows);
                        comment_buf.clear();
                        st = St::Code;
                    }
                } else {
                    comment_buf.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        i += 2;
                    }
                } else if c == '"' {
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr => {
                if c == '"' {
                    let closed = (1..=raw_hashes).all(|k| chars.get(i + k) == Some(&'#'));
                    if closed {
                        st = St::Code;
                        i += raw_hashes + 1;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    if matches!(st, St::LineComment | St::BlockComment) {
        collect_allows(&comment_buf, line_no, &mut allows);
    }
    if !cur.is_empty() {
        lines.push(CleanLine {
            text: cur,
            in_test: line_in_test || test_depth > 0,
        });
    }
    Cleaned { lines, allows }
}

/// Identifiers banned everywhere under the workspace.
fn global_ident_rule(ident: &str) -> Option<(Rule, &'static str)> {
    match ident {
        "Instant" | "SystemTime" => Some((
            Rule::WallClock,
            "wall-clock time differs between runs; use simnet virtual time",
        )),
        "thread_rng" | "OsRng" | "from_entropy" | "getrandom" => Some((
            Rule::OsEntropy,
            "OS entropy makes runs unrepeatable; seed a StdRng explicitly",
        )),
        "unsafe" => Some((Rule::UnsafeCode, "unsafe code is forbidden workspace-wide")),
        _ => None,
    }
}

/// The v1 scan of one file: the original seven rules, line-matched.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let class = classify(rel_path);
    let cleaned = clean(source);
    let mut findings: Vec<Finding> = Vec::new();

    let allowed = |line: usize, rule: Rule| {
        if rule == Rule::ThreadSpawn && !class.orchestration && !class.test_like {
            return false;
        }
        if rule == Rule::PrintlnInLib && class.strict && !class.test_like {
            return false;
        }
        cleaned
            .allows
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
    };
    let mut push = |line: usize, rule: Rule, message: String| {
        if allowed(line, rule) {
            return;
        }
        if findings.iter().any(|f| f.line == line && f.rule == rule) {
            return;
        }
        findings.push(Finding {
            path: rel_path.to_string(),
            line,
            rule,
            message,
        });
    };

    for (idx, cl) in cleaned.lines.iter().enumerate() {
        let line = idx + 1;
        let text = cl.text.as_str();

        if text.contains("thread::spawn")
            || text.contains("thread::scope")
            || text.contains("thread::Builder")
        {
            push(
                line,
                Rule::ThreadSpawn,
                "OS threads introduce scheduling nondeterminism; the simulator is single-threaded"
                    .to_string(),
            );
        }
        if text.contains("rand::random") {
            push(
                line,
                Rule::OsEntropy,
                "`rand::random` draws from OS entropy; seed a StdRng explicitly".to_string(),
            );
        }

        let mut chars = text.char_indices().peekable();
        let mut prev_non_ws: Option<char> = None;
        while let Some((start, c)) = chars.next() {
            if !is_ident_char(c) || c.is_ascii_digit() {
                if !c.is_whitespace() {
                    prev_non_ws = Some(c);
                }
                continue;
            }
            let mut end = start + c.len_utf8();
            while let Some(&(j, cj)) = chars.peek() {
                if is_ident_char(cj) {
                    end = j + cj.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            let ident = &text[start..end];
            if let Some((rule, msg)) = global_ident_rule(ident) {
                push(line, rule, format!("`{ident}`: {msg}"));
            }
            if class.strict && (ident == "HashMap" || ident == "HashSet") {
                push(
                    line,
                    Rule::HashIteration,
                    format!(
                        "`{ident}` iteration order is nondeterministic in simulation code; \
                         use BTreeMap/BTreeSet or sort before iterating"
                    ),
                );
            }
            if ident == "spawn" && prev_non_ws == Some('.') {
                push(
                    line,
                    Rule::ThreadSpawn,
                    "`.spawn()`: scoped/builder spawns are still OS threads; the simulator \
                     is single-threaded"
                        .to_string(),
                );
            }
            if !class.bin_like
                && !class.test_like
                && !cl.in_test
                && matches!(ident, "println" | "print" | "eprintln" | "eprint")
                && text[end..].trim_start().starts_with('!')
            {
                push(
                    line,
                    Rule::PrintlnInLib,
                    format!(
                        "`{ident}!` in library code; emit through the obs layer or return \
                         strings — stdout belongs to bin targets"
                    ),
                );
            }
            if class.strict
                && !class.test_like
                && !cl.in_test
                && (ident == "unwrap" || ident == "expect")
                && prev_non_ws == Some('.')
            {
                push(
                    line,
                    Rule::UnwrapExpect,
                    format!(
                        "`.{ident}()` in non-test simulation code; propagate a Result or \
                         annotate a genuine invariant with lint:allow(unwrap-expect)"
                    ),
                );
            }
            prev_non_ws = Some(c);
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::scan_source as v1_scan;
    use crate::scan::Rule;

    const STRICT_FILE: &str = "crates/simnet/src/fabric.rs";

    /// Pins the v1 bug the lexer fixes: `'\\'` swallows the line.
    #[test]
    fn v1_misses_code_after_backslash_char_literal() {
        let src = "fn f() { let c = '\\\\'; x.unwrap(); }\n";
        assert!(v1_scan(STRICT_FILE, src).is_empty(), "v1 bug disappeared");
        assert_eq!(
            crate::scan_source(STRICT_FILE, src)
                .iter()
                .map(|f| f.rule)
                .collect::<Vec<_>>(),
            vec![Rule::UnwrapExpect]
        );
    }

    /// Pins the v1 bug the lexer fixes: raw identifiers matched keywords.
    #[test]
    fn v1_false_positives_on_raw_identifiers() {
        let src = "fn f() { let r#unsafe = 1; }\n";
        assert_eq!(
            v1_scan(STRICT_FILE, src)
                .iter()
                .map(|f| f.rule)
                .collect::<Vec<_>>(),
            vec![Rule::UnsafeCode],
            "v1 bug disappeared"
        );
        assert!(crate::scan_source(STRICT_FILE, src).is_empty());
    }
}
