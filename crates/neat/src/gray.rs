//! Gray-failure fault specifications: targeted link degradation.
//!
//! The paper traces most *partial* partitions to flaky, congested, or
//! half-broken links (§2.1) — not clean cuts. A [`DegradeSpec`] is the
//! gray-failure sibling of [`crate::PartitionSpec`]: instead of blocking
//! a set of directed pairs outright, it installs a
//! [`simnet::DegradeRule`] over them — probabilistic loss, extra latency,
//! jitter, and duplication, optionally flapping between active and
//! healthy windows.

#![deny(missing_docs)]

use std::collections::BTreeSet;

use simnet::{
    net::{bidirectional_pairs, simplex_pairs},
    DegradeRule, DegradeRuleId, NodeId, Time,
};

/// The gray-failure taxonomy buckets (the paper's §2.1 flaky-link causes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DegradeKind {
    /// Both directions between two groups are degraded — the "one flaky
    /// NIC" cause behind most partial partitions.
    GrayPartial,
    /// One direction only is degraded; replies still flow cleanly.
    GraySimplex,
    /// The degradation alternates between active and healthy windows
    /// (`flap_period` of the underlying rule is nonzero).
    Flapping,
}

impl std::fmt::Display for DegradeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradeKind::GrayPartial => "gray-partial",
            DegradeKind::GraySimplex => "gray-simplex",
            DegradeKind::Flapping => "flapping",
        })
    }
}

/// A gray-failure fault to inject.
///
/// Like [`crate::PartitionSpec`], the two variants differ in *direction*:
/// `Partial` degrades both directions between group `a` and group `b`,
/// while `Simplex` degrades traffic from `src` to `dst` only. The attached
/// [`DegradeRule`] carries the degradation knobs; when its `flap_period`
/// is nonzero the fault classifies as [`DegradeKind::Flapping`] regardless
/// of direction.
#[derive(Clone, PartialEq, Debug)]
pub enum DegradeSpec {
    /// Degrade both directions between `a` and `b`.
    Partial {
        /// First group.
        a: Vec<NodeId>,
        /// Second group.
        b: Vec<NodeId>,
        /// The degradation applied to every directed pair.
        rule: DegradeRule,
    },
    /// Degrade traffic from `src` to `dst` only; replies flow cleanly.
    Simplex {
        /// Source group.
        src: Vec<NodeId>,
        /// Destination group.
        dst: Vec<NodeId>,
        /// The degradation applied to every directed pair.
        rule: DegradeRule,
    },
}

impl DegradeSpec {
    /// The taxonomy bucket of this fault.
    pub fn kind(&self) -> DegradeKind {
        if self.rule().flap_period > 0 {
            return DegradeKind::Flapping;
        }
        match self {
            DegradeSpec::Partial { .. } => DegradeKind::GrayPartial,
            DegradeSpec::Simplex { .. } => DegradeKind::GraySimplex,
        }
    }

    /// The directed pairs this fault degrades.
    pub fn pairs(&self) -> BTreeSet<(NodeId, NodeId)> {
        match self {
            DegradeSpec::Partial { a, b, .. } => bidirectional_pairs(a, b),
            DegradeSpec::Simplex { src, dst, .. } => simplex_pairs(src, dst),
        }
    }

    /// The degradation rule this fault installs.
    pub fn rule(&self) -> DegradeRule {
        match self {
            DegradeSpec::Partial { rule, .. } | DegradeSpec::Simplex { rule, .. } => *rule,
        }
    }

    /// Convenience: a flapping bidirectional degradation — `rule` active
    /// for `period` virtual milliseconds, then healthy for `period`, and
    /// so on (the paper's intermittently flaky link).
    pub fn flapping(a: Vec<NodeId>, b: Vec<NodeId>, rule: DegradeRule, period: Time) -> Self {
        DegradeSpec::Partial {
            a,
            b,
            rule: rule.flapping(period),
        }
    }
}

/// An installed gray failure, used to heal it later.
///
/// Returned by [`crate::engine::Neat::degrade`]; pass it back to
/// [`crate::engine::Neat::heal_degrade`]. Degrade rules live in their own
/// id namespace, separate from partition block rules.
#[derive(Clone, Debug)]
pub struct Degrade {
    pub(crate) rule: DegradeRuleId,
    /// The specification that was installed, for logging/classification.
    pub spec: DegradeSpec,
}

impl Degrade {
    /// The taxonomy bucket of the installed fault.
    pub fn kind(&self) -> DegradeKind {
        self.spec.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn partial_degrades_both_directions() {
        let s = DegradeSpec::Partial {
            a: ids(&[0]),
            b: ids(&[1, 2]),
            rule: DegradeRule::lossy(0.5),
        };
        assert_eq!(s.kind(), DegradeKind::GrayPartial);
        let pairs = s.pairs();
        assert!(pairs.contains(&(NodeId(0), NodeId(1))));
        assert!(pairs.contains(&(NodeId(1), NodeId(0))));
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn simplex_degrades_one_direction() {
        let s = DegradeSpec::Simplex {
            src: ids(&[0]),
            dst: ids(&[1]),
            rule: DegradeRule::duplicating(1.0),
        };
        assert_eq!(s.kind(), DegradeKind::GraySimplex);
        let pairs = s.pairs();
        assert!(pairs.contains(&(NodeId(0), NodeId(1))));
        assert!(!pairs.contains(&(NodeId(1), NodeId(0))));
    }

    #[test]
    fn nonzero_flap_period_classifies_as_flapping() {
        let s = DegradeSpec::flapping(ids(&[0]), ids(&[1]), DegradeRule::lossy(1.0), 200);
        assert_eq!(s.kind(), DegradeKind::Flapping);
        assert_eq!(s.rule().flap_period, 200);
        let simplex = DegradeSpec::Simplex {
            src: ids(&[0]),
            dst: ids(&[1]),
            rule: DegradeRule::lossy(1.0).flapping(50),
        };
        assert_eq!(simplex.kind(), DegradeKind::Flapping);
    }

    #[test]
    fn kind_display_matches_registry_labels() {
        assert_eq!(DegradeKind::GrayPartial.to_string(), "gray-partial");
        assert_eq!(DegradeKind::GraySimplex.to_string(), "gray-simplex");
        assert_eq!(DegradeKind::Flapping.to_string(), "flapping");
    }
}
