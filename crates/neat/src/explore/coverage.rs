//! Coverage signatures and the AFL-style novelty corpus.
//!
//! Each trial's [`obs::Timeline`] is folded into a compact [`Signature`]
//! describing *where the run went*: how many fault and degrade windows
//! opened (and stayed open), how many operations were in flight during a
//! fault, which key first diverged, how the operation outcomes bucketed,
//! and which verdict kinds the checkers produced. Two runs with the same
//! signature exercised the system the same way; a run with a fresh
//! signature reached a new state and its schedule is worth mutating
//! further — the feedback loop of coverage-guided fuzzing, transplanted
//! onto deterministic fault injection.

#![deny(missing_docs)]

use std::collections::BTreeSet;

use rand::{rngs::StdRng, Rng};

use crate::checkers::{Violation, ViolationKind};

use super::schedule::SchedulePlan;

/// Log2 bucket: 0 → 0, 1 → 1, 2–3 → 2, 4–7 → 3, … Coarse on purpose —
/// signatures must collapse runs that differ only in noise.
fn bucket(n: u64) -> u8 {
    match n {
        0 => 0,
        _ => (64 - n.leading_zeros()) as u8,
    }
}

/// A compact descriptor of one trial's observed behaviour, extracted from
/// its [`obs::Timeline`] and checker verdicts.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Signature {
    /// Partition windows opened during the run.
    pub partition_windows: usize,
    /// Degrade (gray-failure) windows opened during the run.
    pub degrade_windows: usize,
    /// Fault windows (either kind) still open when the run ended.
    pub unhealed: usize,
    /// Log2 bucket of client operations in flight during a fault window.
    pub ops_in_flight: u8,
    /// Key of the first operation blamed by a verdict, if any.
    pub divergent_key: Option<String>,
    /// Log2 buckets of operation outcomes `(ok, fail, timeout)`.
    pub outcomes: (u8, u8, u8),
    /// Log2 bucket of node crashes injected.
    pub crashes: u8,
    /// Log2 bucket of node restarts injected.
    pub restarts: u8,
    /// Distinct verdict kinds, sorted.
    pub kinds: Vec<ViolationKind>,
}

impl Signature {
    /// Folds a trial's timeline and verdicts into a signature.
    ///
    /// Works on unrecorded timelines too (the counters are always live),
    /// but the window/in-flight/divergence dimensions only discriminate
    /// when the target was reset with recording on.
    pub fn of(timeline: &obs::Timeline, violations: &[Violation]) -> Self {
        let faults = timeline.fault_windows();
        let degrades = timeline.degrade_windows();
        let unhealed = faults
            .iter()
            .chain(degrades.iter())
            .filter(|w| w.2.is_none())
            .count();
        let (ok, fail, timeout) = timeline.op_outcome_counts();
        let divergent_key = timeline.first_divergent_op().and_then(|e| match e {
            obs::Event::Op { key, .. } => Some(key.clone()),
            _ => None,
        });
        let mut kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
        kinds.sort();
        kinds.dedup();
        Signature {
            partition_windows: faults.len(),
            degrade_windows: degrades.len(),
            unhealed,
            ops_in_flight: bucket(timeline.ops_in_flight().len() as u64),
            divergent_key,
            outcomes: (bucket(ok), bucket(fail), bucket(timeout)),
            crashes: bucket(timeline.counters.crashes),
            restarts: bucket(timeline.counters.restarts),
            kinds,
        }
    }
}

/// The novelty corpus: schedules that reached a signature no earlier
/// trial reached, in discovery order.
///
/// Discovery order is part of the contract — merging shard corpora folds
/// entries in shard order, so a merged corpus is a pure function of the
/// shard results regardless of how many worker threads produced them.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    seen: BTreeSet<Signature>,
    entries: Vec<(SchedulePlan, Signature)>,
}

impl Corpus {
    /// Records a trial. Returns `true` — and keeps the schedule as a
    /// mutation seed — when the signature is new.
    pub fn observe(&mut self, plan: &SchedulePlan, sig: Signature) -> bool {
        if self.seen.insert(sig.clone()) {
            self.entries.push((plan.clone(), sig));
            true
        } else {
            false
        }
    }

    /// Number of schedules kept (equals the number of distinct signatures).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no novel schedule has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The kept `(schedule, signature)` pairs, in discovery order.
    pub fn entries(&self) -> &[(SchedulePlan, Signature)] {
        &self.entries
    }

    /// Picks one kept schedule uniformly, favouring none — the mutation
    /// pressure comes from novelty alone, as in AFL's simplest queue.
    pub fn pick(&self, rng: &mut StdRng) -> Option<&SchedulePlan> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.gen_range(0..self.entries.len())].0)
        }
    }

    /// Folds `other` into `self` in `other`'s discovery order. Duplicated
    /// signatures are dropped; the result is deterministic for a fixed
    /// sequence of merges.
    pub fn merge(&mut self, other: &Corpus) {
        for (plan, sig) in &other.entries {
            self.observe(plan, sig.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sig(kinds: Vec<ViolationKind>, partitions: usize) -> Signature {
        Signature {
            partition_windows: partitions,
            degrade_windows: 0,
            unhealed: 0,
            ops_in_flight: 0,
            divergent_key: None,
            outcomes: (0, 0, 0),
            crashes: 0,
            restarts: 0,
            kinds,
        }
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(7), 3);
        assert_eq!(bucket(8), 4);
    }

    #[test]
    fn corpus_keeps_only_novel_signatures() {
        let mut corpus = Corpus::default();
        let plan = SchedulePlan::default();
        assert!(corpus.observe(&plan, sig(vec![], 1)));
        assert!(!corpus.observe(&plan, sig(vec![], 1)), "duplicate signature");
        assert!(corpus.observe(&plan, sig(vec![], 2)), "new partition count");
        assert!(corpus.observe(&plan, sig(vec![ViolationKind::StaleRead], 2)));
        assert_eq!(corpus.len(), 3);
    }

    #[test]
    fn merge_is_a_deterministic_fold() {
        let plan = SchedulePlan::default();
        let mut a = Corpus::default();
        a.observe(&plan, sig(vec![], 1));
        let mut b = Corpus::default();
        b.observe(&plan, sig(vec![], 1));
        b.observe(&plan, sig(vec![], 2));
        let mut merged1 = Corpus::default();
        merged1.merge(&a);
        merged1.merge(&b);
        let mut merged2 = Corpus::default();
        merged2.merge(&a);
        merged2.merge(&b);
        assert_eq!(format!("{merged1:?}"), format!("{merged2:?}"));
        assert_eq!(merged1.len(), 2, "the duplicate signature merged away");
    }

    #[test]
    fn pick_returns_none_on_empty() {
        let corpus = Corpus::default();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(corpus.pick(&mut rng).is_none());
    }

    #[test]
    fn signature_of_empty_timeline_reflects_verdicts_only() {
        let violations = vec![Violation::new(ViolationKind::DataLoss, "k1 gone")];
        let s = Signature::of(&obs::Timeline::default(), &violations);
        assert_eq!(s.kinds, vec![ViolationKind::DataLoss]);
        assert_eq!(s.partition_windows, 0);
    }
}
