//! Delta-debugging (ddmin) repro minimization for fault schedules.
//!
//! When an explored schedule trips a checker, the minimizer shrinks it to
//! a 1-minimal nemesis sequence: removing *any single remaining step*
//! makes the violation disappear. The reduction is sound because replay
//! is deterministic — a sub-schedule either reproduces the violation on
//! every run or on none — and because client steps carry their own RNG
//! seeds ([`super::schedule`]), so deleting a step never perturbs the
//! steps that survive. Minimized schedules are small enough to read and
//! stable enough to commit as permanent regression scenarios.

#![deny(missing_docs)]

use crate::checkers::ViolationKind;

use super::{
    schedule::{run_schedule, SchedulePlan, ScheduleStep},
    TestTarget,
};

/// Zeller's ddmin over schedule steps: returns a subsequence of `steps`
/// (in original order) on which `test` still holds, 1-minimal with
/// respect to single-step removal.
///
/// `test` must hold on `steps` itself; callers check that before
/// minimizing (see [`minimize_for_kind`]).
pub fn ddmin(
    steps: &[ScheduleStep],
    mut test: impl FnMut(&[ScheduleStep]) -> bool,
) -> Vec<ScheduleStep> {
    let mut current = steps.to_vec();
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let len = current.len();
        let chunk = len.div_ceil(granularity);
        let mut reduced = false;

        // Try each chunk alone: a fast path when one step family carries
        // the whole repro.
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            let subset = current[start..end].to_vec();
            if subset.len() < len && test(&subset) {
                current = subset;
                granularity = 2;
                reduced = true;
                break;
            }
            start += chunk;
        }

        // Then each complement: drop one chunk, keep the rest.
        if !reduced {
            let mut start = 0;
            while start < len {
                let end = (start + chunk).min(len);
                let mut complement = current[..start].to_vec();
                complement.extend_from_slice(&current[end..]);
                if complement.len() < len && test(&complement) {
                    current = complement;
                    granularity = (granularity - 1).max(2);
                    reduced = true;
                    break;
                }
                start += chunk;
            }
        }

        if !reduced {
            if granularity >= len {
                // Every single-step removal fails: 1-minimal.
                break;
            }
            granularity = (granularity * 2).min(len);
        }
    }
    current
}

/// `true` when `test` holds on `steps` but on no variant with one step
/// removed — the 1-minimality certificate the bench artifact records.
pub fn is_one_minimal(
    steps: &[ScheduleStep],
    mut test: impl FnMut(&[ScheduleStep]) -> bool,
) -> bool {
    if !test(steps) {
        return false;
    }
    for skip in 0..steps.len() {
        let mut variant = steps.to_vec();
        variant.remove(skip);
        if test(&variant) {
            return false;
        }
    }
    true
}

/// Replays `steps` on a freshly reset target and reports whether a
/// violation of `kind` was detected. The reset seed makes this a pure
/// function of `(target construction, seed, steps)`.
pub fn reproduces(
    target: &mut dyn TestTarget,
    steps: &[ScheduleStep],
    seed: u64,
    kind: ViolationKind,
) -> bool {
    target.reset(seed, false);
    if target.servers().is_empty() {
        return false;
    }
    let plan = SchedulePlan {
        steps: steps.to_vec(),
    };
    run_schedule(target, &plan).iter().any(|v| v.kind == kind)
}

/// Shrinks `plan` to a 1-minimal schedule that still reproduces a
/// violation of `kind` on `target` at `seed`. Returns `None` when the
/// full plan does not reproduce it in the first place (a flaky find —
/// impossible under deterministic replay unless the seed is wrong).
pub fn minimize_for_kind(
    target: &mut dyn TestTarget,
    plan: &SchedulePlan,
    seed: u64,
    kind: ViolationKind,
) -> Option<SchedulePlan> {
    if !reproduces(target, &plan.steps, seed, kind) {
        return None;
    }
    let steps = ddmin(&plan.steps, |s| reproduces(target, s, seed, kind));
    Some(SchedulePlan { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::EventChoice;

    fn client(ev: EventChoice, seed: u64) -> ScheduleStep {
        ScheduleStep::Client(ev, seed)
    }

    /// The repro needs a write (any) followed later by a read (any);
    /// everything else is noise.
    fn write_then_read(steps: &[ScheduleStep]) -> bool {
        let wrote = steps
            .iter()
            .position(|s| matches!(s, ScheduleStep::Client(EventChoice::Write, _)));
        match wrote {
            None => false,
            Some(w) => steps[w..]
                .iter()
                .any(|s| matches!(s, ScheduleStep::Client(EventChoice::Read, _))),
        }
    }

    fn noisy_plan() -> Vec<ScheduleStep> {
        vec![
            ScheduleStep::Sleep(100),
            client(EventChoice::Delete, 1),
            client(EventChoice::Write, 2),
            ScheduleStep::Heal,
            client(EventChoice::Delete, 3),
            client(EventChoice::Read, 4),
            ScheduleStep::Sleep(200),
        ]
    }

    #[test]
    fn ddmin_shrinks_to_the_two_essential_steps() {
        let min = ddmin(&noisy_plan(), write_then_read);
        assert_eq!(min.len(), 2, "{min:?}");
        assert!(matches!(min[0], ScheduleStep::Client(EventChoice::Write, 2)));
        assert!(matches!(min[1], ScheduleStep::Client(EventChoice::Read, 4)));
    }

    #[test]
    fn ddmin_result_is_one_minimal() {
        let min = ddmin(&noisy_plan(), write_then_read);
        assert!(is_one_minimal(&min, write_then_read));
        assert!(
            !is_one_minimal(&noisy_plan(), write_then_read),
            "the unminimized plan has removable noise"
        );
    }

    #[test]
    fn ddmin_keeps_order_dependent_steps_in_order() {
        // Read-before-write must not satisfy the predicate.
        let plan = vec![
            client(EventChoice::Read, 1),
            client(EventChoice::Write, 2),
            client(EventChoice::Read, 3),
        ];
        let min = ddmin(&plan, write_then_read);
        assert!(write_then_read(&min));
        assert!(is_one_minimal(&min, write_then_read));
    }

    #[test]
    fn ddmin_on_an_already_minimal_plan_is_identity() {
        let plan = vec![client(EventChoice::Write, 1), client(EventChoice::Read, 2)];
        let min = ddmin(&plan, write_then_read);
        assert_eq!(min.len(), 2);
    }

    #[test]
    fn ddmin_handles_single_step_plans() {
        let plan = vec![client(EventChoice::Write, 1)];
        let has_write = |s: &[ScheduleStep]| {
            s.iter()
                .any(|x| matches!(x, ScheduleStep::Client(EventChoice::Write, _)))
        };
        assert_eq!(ddmin(&plan, has_write).len(), 1);
        assert_eq!(ddmin(&[], has_write).len(), 0);
    }
}
