//! Typed composite fault schedules: the unit the explorer generates,
//! mutates, replays, and delta-minimizes.
//!
//! A [`SchedulePlan`] is a straight-line program over the nemesis and
//! client vocabulary of the paper's Tables 8–9: install a partition,
//! degrade links (gray failure), crash/restart nodes, heal, let virtual
//! time pass, issue a client event. Every random choice a client event
//! makes (key, value, which client) is fixed by a seed *embedded in the
//! step itself*, so replaying any sub-sequence of a plan replays each
//! surviving step byte-for-byte — the property that makes ddmin
//! minimization sound on top of the deterministic simulator.

#![deny(missing_docs)]

use rand::{rngs::StdRng, SeedableRng};
use simnet::{NodeId, Time};

use crate::{
    checkers::Violation,
    fault::PartitionSpec,
    gray::DegradeSpec,
};

use super::{EventChoice, TestTarget};

/// One step of a composite fault schedule.
#[derive(Clone, Debug)]
pub enum ScheduleStep {
    /// Install a partition (complete, partial, or simplex).
    Partition(PartitionSpec),
    /// Install a gray failure: degraded — not severed — links.
    Degrade(DegradeSpec),
    /// Crash these nodes.
    Crash(Vec<NodeId>),
    /// Restart these nodes (no-op for nodes already up).
    Restart(Vec<NodeId>),
    /// Heal every partition and degradation currently installed.
    Heal,
    /// Advance virtual time by this many milliseconds.
    Sleep(Time),
    /// Issue one client/admin event. The embedded seed fixes the
    /// adapter's random choices for this step alone.
    Client(EventChoice, u64),
}

impl ScheduleStep {
    /// A compact human-readable label, used by [`SchedulePlan::render`].
    pub fn label(&self) -> String {
        fn ids(group: &[NodeId]) -> String {
            let mut out = String::new();
            for (i, n) in group.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&n.0.to_string());
            }
            out
        }
        match self {
            ScheduleStep::Partition(spec) => {
                let (a, b) = match spec {
                    PartitionSpec::Complete { a, b } | PartitionSpec::Partial { a, b } => (a, b),
                    PartitionSpec::Simplex { src, dst } => (src, dst),
                };
                format!("partition({} {{{}}}|{{{}}})", spec.kind(), ids(a), ids(b))
            }
            ScheduleStep::Degrade(spec) => format!("degrade({})", spec.kind()),
            ScheduleStep::Crash(nodes) => format!("crash({{{}}})", ids(nodes)),
            ScheduleStep::Restart(nodes) => format!("restart({{{}}})", ids(nodes)),
            ScheduleStep::Heal => "heal".to_string(),
            ScheduleStep::Sleep(ms) => format!("sleep({ms})"),
            ScheduleStep::Client(ev, _) => ev.label().to_string(),
        }
    }
}

/// A composite fault schedule: the typed test case the explorer searches
/// over, in execution order.
#[derive(Clone, Debug, Default)]
pub struct SchedulePlan {
    /// The steps, executed front to back by [`run_schedule`].
    pub steps: Vec<ScheduleStep>,
}

impl SchedulePlan {
    /// Number of client events in the plan (the paper's Table 7 budget).
    pub fn client_events(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ScheduleStep::Client(..)))
            .count()
    }

    /// Number of fault injections (partition, degrade, crash).
    pub fn fault_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    ScheduleStep::Partition(_) | ScheduleStep::Degrade(_) | ScheduleStep::Crash(_)
                )
            })
            .count()
    }

    /// `true` when the plan heals mid-schedule (before its last step).
    pub fn heals_mid_schedule(&self) -> bool {
        self.steps
            .iter()
            .position(|s| matches!(s, ScheduleStep::Heal))
            .is_some_and(|i| i + 1 < self.steps.len())
    }

    /// One-line rendering: step labels joined by arrows.
    pub fn render(&self) -> String {
        if self.steps.is_empty() {
            return "(empty)".to_string();
        }
        let labels: Vec<String> = self.steps.iter().map(ScheduleStep::label).collect();
        labels.join(" -> ")
    }
}

/// Replays `plan` against a target that has already been
/// [`TestTarget::reset`], then runs the target's checkers.
///
/// Client steps draw their randomness from the seed embedded in the step,
/// never from shared state, so dropping steps (as the minimizer does)
/// cannot shift the choices of the steps that remain.
pub fn run_schedule(target: &mut dyn TestTarget, plan: &SchedulePlan) -> Vec<Violation> {
    for step in &plan.steps {
        match step {
            ScheduleStep::Partition(spec) => target.inject(spec),
            ScheduleStep::Degrade(spec) => target.degrade(spec),
            ScheduleStep::Crash(nodes) => target.crash(nodes),
            ScheduleStep::Restart(nodes) => target.restart(nodes),
            ScheduleStep::Heal => target.heal_all(),
            ScheduleStep::Sleep(ms) => target.advance(*ms),
            ScheduleStep::Client(ev, op_seed) => {
                let mut rng = StdRng::seed_from_u64(*op_seed);
                target.apply_event(*ev, &mut rng);
            }
        }
    }
    target.finish_and_check()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_render_are_compact() {
        let plan = SchedulePlan {
            steps: vec![
                ScheduleStep::Partition(PartitionSpec::Complete {
                    a: vec![NodeId(0)],
                    b: vec![NodeId(1), NodeId(2)],
                }),
                ScheduleStep::Client(EventChoice::Write, 7),
                ScheduleStep::Heal,
                ScheduleStep::Sleep(250),
                ScheduleStep::Client(EventChoice::Read, 8),
            ],
        };
        assert_eq!(
            plan.render(),
            "partition(complete {0}|{1,2}) -> write -> heal -> sleep(250) -> read"
        );
        assert_eq!(plan.client_events(), 2);
        assert_eq!(plan.fault_steps(), 1);
        assert!(plan.heals_mid_schedule());
        assert_eq!(SchedulePlan::default().render(), "(empty)");
    }

    #[test]
    fn heal_at_the_end_is_not_mid_schedule() {
        let plan = SchedulePlan {
            steps: vec![ScheduleStep::Client(EventChoice::Write, 1), ScheduleStep::Heal],
        };
        assert!(!plan.heals_mid_schedule());
    }
}
