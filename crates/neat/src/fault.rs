//! Network-partitioning fault specifications (the paper's Figure 1).

use std::collections::BTreeSet;

use simnet::{
    net::{bidirectional_pairs, simplex_pairs},
    BlockRuleId, NodeId,
};

/// The three partition types studied by the paper (Table 6).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PartitionKind {
    /// The cluster is split into two disconnected halves (Figure 1.a).
    Complete,
    /// Two groups are disconnected while a third group still reaches both
    /// (Figure 1.b).
    Partial,
    /// Traffic flows in one direction only (Figure 1.c).
    Simplex,
}

impl std::fmt::Display for PartitionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PartitionKind::Complete => "complete",
            PartitionKind::Partial => "partial",
            PartitionKind::Simplex => "simplex",
        })
    }
}

/// A network-partitioning fault to inject.
///
/// `Complete` and `Partial` have identical *mechanics* (both directions
/// between group `a` and group `b` are blocked); they differ in intent and in
/// group composition — a complete partition's groups cover the whole cluster,
/// while a partial partition leaves a third group connected to both sides.
/// Keeping both mirrors the paper's `Partitioner.complete`/`partial` API and
/// lets harnesses classify the faults they injected (Table 6).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PartitionSpec {
    /// Split `a` from `b` completely.
    Complete { a: Vec<NodeId>, b: Vec<NodeId> },
    /// Split `a` from `b` while every node outside `a ∪ b` reaches both.
    Partial { a: Vec<NodeId>, b: Vec<NodeId> },
    /// Drop traffic from `src` to `dst` only; replies still flow.
    Simplex { src: Vec<NodeId>, dst: Vec<NodeId> },
}

impl PartitionSpec {
    /// The taxonomy bucket of this fault.
    pub fn kind(&self) -> PartitionKind {
        match self {
            PartitionSpec::Complete { .. } => PartitionKind::Complete,
            PartitionSpec::Partial { .. } => PartitionKind::Partial,
            PartitionSpec::Simplex { .. } => PartitionKind::Simplex,
        }
    }

    /// The directed pairs this fault blocks.
    pub fn pairs(&self) -> BTreeSet<(NodeId, NodeId)> {
        match self {
            PartitionSpec::Complete { a, b } | PartitionSpec::Partial { a, b } => {
                bidirectional_pairs(a, b)
            }
            PartitionSpec::Simplex { src, dst } => simplex_pairs(src, dst),
        }
    }

    /// Convenience: complete partition isolating exactly one node — the
    /// fault the paper finds can trigger 88% of all failures (Finding 9).
    pub fn isolate(node: NodeId, rest: Vec<NodeId>) -> Self {
        PartitionSpec::Complete {
            a: vec![node],
            b: rest,
        }
    }
}

/// An installed partition, used to heal it later.
///
/// Returned by [`crate::engine::Neat::partition`]; pass it back to
/// [`crate::engine::Neat::heal`].
#[derive(Clone, Debug)]
pub struct Partition {
    pub(crate) rule: BlockRuleId,
    /// The specification that was installed, for logging/classification.
    pub spec: PartitionSpec,
}

impl Partition {
    /// The taxonomy bucket of the installed fault.
    pub fn kind(&self) -> PartitionKind {
        self.spec.kind()
    }
}

/// Returns `all` minus `group`, preserving order — the paper's
/// `Partitioner.rest(minority)` helper (Listing 2).
pub fn rest_of(all: &[NodeId], group: &[NodeId]) -> Vec<NodeId> {
    all.iter().copied().filter(|n| !group.contains(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn complete_and_partial_share_mechanics() {
        let c = PartitionSpec::Complete {
            a: ids(&[0]),
            b: ids(&[1, 2]),
        };
        let p = PartitionSpec::Partial {
            a: ids(&[0]),
            b: ids(&[1, 2]),
        };
        assert_eq!(c.pairs(), p.pairs());
        assert_ne!(c.kind(), p.kind());
    }

    #[test]
    fn simplex_pairs_are_one_directional() {
        let s = PartitionSpec::Simplex {
            src: ids(&[0]),
            dst: ids(&[1]),
        };
        let pairs = s.pairs();
        assert!(pairs.contains(&(NodeId(0), NodeId(1))));
        assert!(!pairs.contains(&(NodeId(1), NodeId(0))));
    }

    #[test]
    fn isolate_builds_single_node_split() {
        let s = PartitionSpec::isolate(NodeId(2), ids(&[0, 1]));
        assert_eq!(s.kind(), PartitionKind::Complete);
        assert_eq!(s.pairs().len(), 4);
    }

    #[test]
    fn rest_of_excludes_group() {
        let all = ids(&[0, 1, 2, 3]);
        assert_eq!(rest_of(&all, &ids(&[1, 3])), ids(&[0, 2]));
        assert_eq!(rest_of(&all, &[]), all);
    }

    #[test]
    fn kind_display_matches_table6_labels() {
        assert_eq!(PartitionKind::Complete.to_string(), "complete");
        assert_eq!(PartitionKind::Partial.to_string(), "partial");
        assert_eq!(PartitionKind::Simplex.to_string(), "simplex");
    }
}
