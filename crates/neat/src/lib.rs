//! NEAT: a network-partitioning testing framework, reimplemented in Rust.
//!
//! This crate is the Rust counterpart of the paper's NEAT framework
//! (Chapter 6): it simplifies the coordination of multiple clients and can
//! inject all three types of network-partitioning faults. Where the original
//! manipulated OpenFlow switch rules or `iptables` firewalls on a physical
//! testbed, this version installs *block rules* in a [`simnet`] simulated
//! fabric — the same reachability semantics, with deterministic virtual time.
//!
//! The pieces, mapped to the paper's Figure 4 architecture:
//!
//! - [`engine::Neat`] — the *test engine*: globally orders client operations,
//!   crashes and restarts nodes, and advances virtual time (`sleep`).
//! - [`fault`] — the *network partitioner*: [`fault::PartitionSpec`] expresses
//!   complete, partial, and simplex partitions; the engine installs and heals
//!   them.
//! - [`gray`] — the *gray-failure injector*: [`gray::DegradeSpec`] expresses
//!   degraded (lossy, slow, duplicating, flapping) links — the §2.1 flaky-link
//!   causes behind most partial partitions — installed and healed through the
//!   same engine.
//! - [`retry`] — [`retry::RetryPolicy`], bounded exponential backoff in
//!   virtual time, so scenarios can contrast no-retry against
//!   retry-with-backoff clients (client-side handling decides impact).
//! - [`history`] — records every client operation (invocation, completion,
//!   outcome) exactly as the paper's verification steps observe them.
//! - [`checkers`] — the *verification code*: turns a history plus the final
//!   system state into typed [`checkers::Violation`]s whose kinds match the
//!   paper's failure-impact taxonomy (Table 2).
//! - [`explore`] — the paper's §8.1 future work: automatic workload and fault
//!   generation, with a *findings-guided* strategy implementing the pruning
//!   characteristics of Chapter 5 (partition first, ≤ 3 events, isolate the
//!   leader, natural order).
//!
//! # Examples
//!
//! Injecting and healing the three fault types of the paper's Figure 1:
//!
//! ```
//! use neat::{Neat, PartitionKind};
//! use simnet::{Application, Ctx, NodeId, TimerId, WorldBuilder};
//!
//! struct Idle;
//! impl Application for Idle {
//!     type Msg = ();
//!     fn on_start(&mut self, _: &mut Ctx<'_, ()>) {}
//!     fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
//!     fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerId, _: u64) {}
//! }
//!
//! let mut engine = Neat::new(WorldBuilder::new(1).build(3, |_| Idle));
//! let a = [NodeId(0)];
//! let b = [NodeId(1), NodeId(2)];
//!
//! let complete = engine.partition_complete(&a, &b);
//! assert_eq!(complete.kind(), PartitionKind::Complete);
//! engine.sleep(100); // virtual time passes while the fault is active
//! engine.heal(&complete);
//!
//! let simplex = engine.partition_simplex(&a, &b);
//! assert_eq!(simplex.kind(), PartitionKind::Simplex);
//! engine.heal_all();
//! assert!(engine.active_partitions().is_empty());
//! ```

pub use obs;

pub mod audit;
pub mod checkers;
pub mod engine;
pub mod explore;
pub mod fault;
pub mod gray;
pub mod history;
pub mod nemesis;
pub mod retry;

pub use checkers::{Violation, ViolationKind};
pub use engine::Neat;
pub use fault::{rest_of, Partition, PartitionKind, PartitionSpec};
pub use gray::{Degrade, DegradeKind, DegradeSpec};
pub use history::{History, Op, OpRecord, Outcome};
pub use nemesis::{Nemesis, NemesisAction, Schedule};
pub use retry::RetryPolicy;
