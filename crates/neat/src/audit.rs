//! Trace-divergence auditing: the dynamic complement to the static
//! determinism pass in `crates/lint`.
//!
//! DESIGN.md §6 guarantees *same seed ⇒ same trace*. The static pass keeps
//! nondeterminism sources (wall clocks, OS entropy, hash-order iteration)
//! out of the source; this module closes the loop at runtime by
//! fingerprinting executions and comparing double-runs. A scenario is
//! audited by running it twice with the identical seed and hashing
//! everything observable about each run — the `simnet` trace log, the
//! operation history, checker verdicts, final state, and (since the
//! forensics layer landed) the full `obs` event timeline. Any hash
//! mismatch is a determinism bug, reported with the first diverging line.

#![deny(missing_docs)]

/// 64-bit FNV-1a over raw bytes. Stable across platforms and runs; not
/// cryptographic — collisions between *intentionally different* traces are
/// astronomically unlikely, which is all an auditor needs.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of a rendered execution fingerprint (trace log, history, …).
pub fn trace_hash(fingerprint: &str) -> u64 {
    fnv1a_64(fingerprint.as_bytes())
}

/// One divergence between two same-seed runs of a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Scenario name.
    pub scenario: String,
    /// Seed both runs used.
    pub seed: u64,
    /// Fingerprint hash of the first run.
    pub hash_a: u64,
    /// Fingerprint hash of the second run.
    pub hash_b: u64,
    /// The first line at which the rendered fingerprints differ — the
    /// actual debugging handle, since the hashes only say "different".
    pub first_diff: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: seed {} diverged: {:016x} != {:016x}\n  first differing line: {}",
            self.scenario, self.seed, self.hash_a, self.hash_b, self.first_diff
        )
    }
}

/// Compares two same-seed fingerprints; `None` means bit-identical.
pub fn compare_runs(scenario: &str, seed: u64, a: &str, b: &str) -> Option<Divergence> {
    if a == b {
        return None;
    }
    let first_diff = a
        .lines()
        .zip(b.lines())
        .enumerate()
        .find(|(_, (la, lb))| la != lb)
        .map(|(i, (la, lb))| format!("line {}: `{la}` vs `{lb}`", i + 1))
        .unwrap_or_else(|| {
            format!(
                "run lengths differ: {} vs {} lines",
                a.lines().count(),
                b.lines().count()
            )
        });
    Some(Divergence {
        scenario: scenario.to_string(),
        seed,
        hash_a: trace_hash(a),
        hash_b: trace_hash(b),
        first_diff,
    })
}

/// One arm's audited result — the reduce unit the fleet merges when the
/// auditor runs with `--jobs`, and the line source for serial output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Arm name, `<scenario>/<flawed|fixed>`.
    pub name: String,
    /// The fingerprint hash of the (identical) runs, or the divergence.
    pub result: Result<u64, Divergence>,
}

impl AuditOutcome {
    /// `true` when both runs produced the identical fingerprint.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// The exact line the auditor prints for this arm — shared by the
    /// serial and the fleet-sharded audit paths so `--jobs K` output is
    /// byte-identical to serial.
    pub fn render(&self) -> String {
        match &self.result {
            Ok(hash) => format!("audit {}: ok {hash:016x}", self.name),
            Err(d) => format!("audit FAILED: {d}"),
        }
    }
}

/// Audits a scenario closure by running it twice with the same seed.
///
/// `run` must be a pure function of the seed (that is the property under
/// test); it returns the rendered execution fingerprint.
pub fn audit_double_run<F: FnMut(u64) -> String>(
    scenario: &str,
    seed: u64,
    mut run: F,
) -> Result<u64, Divergence> {
    let a = run(seed);
    let b = run(seed);
    match compare_runs(scenario, seed, &a, &b) {
        None => Ok(trace_hash(&a)),
        Some(d) => Err(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn identical_runs_pass() {
        let hash = audit_double_run("s", 7, |seed| format!("trace for {seed}"))
            .expect("identical runs must pass");
        assert_eq!(hash, trace_hash("trace for 7"));
    }

    #[test]
    fn diverging_runs_report_first_line() {
        let mut flip = false;
        let err = audit_double_run("s", 7, |_| {
            flip = !flip;
            format!("line one\nline two {flip}")
        })
        .expect_err("diverging runs must fail");
        assert_eq!(err.seed, 7);
        assert!(err.first_diff.contains("line 2"), "{}", err.first_diff);
        assert_ne!(err.hash_a, err.hash_b);
    }

    #[test]
    fn length_only_divergence_is_reported() {
        let d = compare_runs("s", 1, "a\nb", "a\nb\nc").expect("diverges");
        assert!(d.first_diff.contains("lengths differ"), "{}", d.first_diff);
    }

    #[test]
    fn outcome_renders_the_audit_lines() {
        let ok = AuditOutcome {
            name: "s/flawed".to_string(),
            result: Ok(0xabc),
        };
        assert!(ok.is_ok());
        assert_eq!(ok.render(), "audit s/flawed: ok 0000000000000abc");

        let failed = AuditOutcome {
            name: "s/flawed".to_string(),
            result: Err(compare_runs("s/flawed", 7, "x", "y").expect("diverges")),
        };
        assert!(!failed.is_ok());
        assert!(failed.render().starts_with("audit FAILED: s/flawed: seed 7"));
    }
}
