//! Trace-divergence auditing: the dynamic complement to the static
//! determinism pass in `crates/lint`.
//!
//! DESIGN.md §6 guarantees *same seed ⇒ same trace*. The static pass keeps
//! nondeterminism sources (wall clocks, OS entropy, hash-order iteration)
//! out of the source; this module closes the loop at runtime by
//! fingerprinting executions and comparing double-runs. A scenario is
//! audited by running it twice with the identical seed and hashing
//! everything observable about each run — the `simnet` trace log, the
//! operation history, checker verdicts, final state, and (since the
//! forensics layer landed) the full `obs` event timeline.
//!
//! The fast path never materializes a fingerprint: [`FingerHasher`] folds
//! the `{:#?}` byte stream into FNV-1a as `Debug` emits it, so the two
//! runs of an arm cost two hashes, not two multi-megabyte `String`s. Only
//! when the hashes disagree does the auditor re-render both runs in full
//! and line-diff them via [`compare_runs`] to recover the first diverging
//! line — the actual debugging handle.

#![deny(missing_docs)]

/// 64-bit FNV-1a over raw bytes. Stable across platforms and runs; not
/// cryptographic — collisions between *intentionally different* traces are
/// astronomically unlikely, which is all an auditor needs.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FingerHasher::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Hash of a rendered execution fingerprint (trace log, history, …).
pub fn trace_hash(fingerprint: &str) -> u64 {
    fnv1a_64(fingerprint.as_bytes())
}

/// An incremental FNV-1a 64 hasher that doubles as a [`std::fmt::Write`]
/// sink, so `write!(hasher, "{:#?}", value)` hashes **exactly the byte
/// stream** that `format!("{:#?}", value)` would have collected into a
/// `String` — without ever allocating it. The formatting machinery routes
/// every fragment through `write_str`, and FNV-1a folds bytes one at a
/// time, so fragment boundaries cannot change the result:
/// `stream_hash(&v) == trace_hash(&format!("{v:#?}"))` byte-for-byte.
#[derive(Clone, Copy, Debug)]
pub struct FingerHasher {
    h: u64,
}

impl FingerHasher {
    /// A fresh hasher at the FNV-1a offset basis (equals `fnv1a_64(b"")`).
    pub fn new() -> Self {
        FingerHasher {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds raw bytes into the running hash.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.h;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.h = h;
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for FingerHasher {
    fn default() -> Self {
        FingerHasher::new()
    }
}

impl std::fmt::Write for FingerHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Hashes `value`'s pretty `Debug` rendering without allocating it:
/// exactly `trace_hash(&format!("{value:#?}"))`, minus the `String`.
pub fn stream_hash<T: std::fmt::Debug + ?Sized>(value: &T) -> u64 {
    use std::fmt::Write as _;
    let mut h = FingerHasher::new();
    // Infallible: FingerHasher::write_str never errors.
    let _ = write!(h, "{value:#?}");
    h.finish()
}

/// Compares two same-seed fingerprints; `None` means bit-identical.
pub fn compare_runs(scenario: &str, seed: u64, a: &str, b: &str) -> Option<Divergence> {
    if a == b {
        return None;
    }
    let first_diff = a
        .lines()
        .zip(b.lines())
        .enumerate()
        .find(|(_, (la, lb))| la != lb)
        .map(|(i, (la, lb))| format!("line {}: `{la}` vs `{lb}`", i + 1))
        .unwrap_or_else(|| {
            // Every shared line matched, so one fingerprint is a strict
            // prefix of the other (or they differ only in a trailing
            // newline). The first *extra* line is the debugging handle.
            let (la, lb) = (a.lines().count(), b.lines().count());
            let extra = if la > lb {
                a.lines().nth(lb).map(|l| (lb + 1, l))
            } else {
                b.lines().nth(la).map(|l| (la + 1, l))
            };
            match extra {
                Some((n, line)) => format!(
                    "run lengths differ: {la} vs {lb} lines; first extra line ({n}): `{line}`"
                ),
                None => format!("run lengths differ: {la} vs {lb} lines"),
            }
        });
    Some(Divergence {
        scenario: scenario.to_string(),
        seed,
        hash_a: trace_hash(a),
        hash_b: trace_hash(b),
        first_diff,
    })
}

/// One divergence between two same-seed runs of a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Scenario name.
    pub scenario: String,
    /// Seed both runs used.
    pub seed: u64,
    /// Fingerprint hash of the first run.
    pub hash_a: u64,
    /// Fingerprint hash of the second run.
    pub hash_b: u64,
    /// The first line at which the rendered fingerprints differ — the
    /// actual debugging handle, since the hashes only say "different".
    pub first_diff: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: seed {} diverged: {:016x} != {:016x}\n  first differing line: {}",
            self.scenario, self.seed, self.hash_a, self.hash_b, self.first_diff
        )
    }
}

/// One arm's audited result — the reduce unit the fleet merges when the
/// auditor runs with `--jobs`, and the line source for serial output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Arm name, `<scenario>/<flawed|fixed>`.
    pub name: String,
    /// The fingerprint hash of the (identical) runs, or the divergence.
    pub result: Result<u64, Divergence>,
}

impl AuditOutcome {
    /// `true` when both runs produced the identical fingerprint.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// The exact line the auditor prints for this arm — shared by the
    /// serial and the fleet-sharded audit paths so `--jobs K` output is
    /// byte-identical to serial.
    pub fn render(&self) -> String {
        match &self.result {
            Ok(hash) => format!("audit {}: ok {hash:016x}", self.name),
            Err(d) => format!("audit FAILED: {d}"),
        }
    }
}

/// Audits a scenario by running it twice with the same seed.
///
/// `hash_run` must stream-hash one execution's fingerprint (a pure
/// function of the seed — that is the property under test); the fast path
/// compares the two hashes and allocates nothing. Only on mismatch does
/// the auditor call `render_run` to materialize both fingerprints and
/// recover the first diverging line. If the divergence then fails to
/// reproduce under re-rendering (flaky nondeterminism), the original
/// hashes are still reported so the failure is never swallowed.
pub fn audit_double_run<H, R>(
    scenario: &str,
    seed: u64,
    mut hash_run: H,
    mut render_run: R,
) -> Result<u64, Divergence>
where
    H: FnMut(u64) -> u64,
    R: FnMut(u64) -> String,
{
    let hash_a = hash_run(seed);
    let hash_b = hash_run(seed);
    if hash_a == hash_b {
        return Ok(hash_a);
    }
    let a = render_run(seed);
    let b = render_run(seed);
    match compare_runs(scenario, seed, &a, &b) {
        Some(d) => Err(d),
        // The hashed pair diverged but the re-rendered pair agreed: the
        // nondeterminism is flaky. Report the original hashes anyway.
        None => Err(Divergence {
            scenario: scenario.to_string(),
            seed,
            hash_a,
            hash_b,
            first_diff: "divergence did not reproduce on re-render (flaky nondeterminism)"
                .to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Audits a string-producing closure the way pre-streaming callers
    /// did: hash by rendering, re-render on mismatch.
    fn audit_rendered<F: FnMut(u64) -> String + Clone>(
        scenario: &str,
        seed: u64,
        run: F,
    ) -> Result<u64, Divergence> {
        let mut hash = run.clone();
        audit_double_run(scenario, seed, move |s| trace_hash(&hash(s)), run)
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_hash_equals_rendered_hash() {
        #[derive(Debug)]
        #[allow(dead_code)] // only Debug-rendered, never field-read
        struct Nested {
            label: String,
            counts: Vec<u64>,
            pair: (bool, Option<i32>),
        }
        let v = Nested {
            label: "escaped \"quotes\"\nand newlines\tand unicode: héllo".to_string(),
            counts: vec![0, 1, u64::MAX],
            pair: (true, Some(-7)),
        };
        assert_eq!(stream_hash(&v), trace_hash(&format!("{v:#?}")));
    }

    #[test]
    fn hasher_is_fragment_boundary_invariant() {
        use std::fmt::Write as _;
        let mut whole = FingerHasher::new();
        whole.write_str("abcdef").expect("infallible");
        let mut split = FingerHasher::new();
        split.write_str("ab").expect("infallible");
        split.write_str("").expect("infallible");
        split.write_str("cdef").expect("infallible");
        assert_eq!(whole.finish(), split.finish());
        assert_eq!(whole.finish(), fnv1a_64(b"abcdef"));
    }

    #[test]
    fn identical_runs_pass() {
        let hash = audit_rendered("s", 7, |seed| format!("trace for {seed}"))
            .expect("identical runs must pass");
        assert_eq!(hash, trace_hash("trace for 7"));
    }

    #[test]
    fn fast_path_never_renders() {
        let result = audit_double_run(
            "s",
            7,
            |seed| trace_hash(&format!("trace for {seed}")),
            |_| unreachable!("equal hashes must not trigger a re-render"),
        );
        assert_eq!(result, Ok(trace_hash("trace for 7")));
    }

    #[test]
    fn diverging_runs_report_first_line() {
        let mut flips = (false, false);
        let err = audit_double_run(
            "s",
            7,
            |_| {
                flips.0 = !flips.0;
                trace_hash(&format!("line one\nline two {}", flips.0))
            },
            |_| {
                flips.1 = !flips.1;
                format!("line one\nline two {}", flips.1)
            },
        )
        .expect_err("diverging runs must fail");
        assert_eq!(err.seed, 7);
        assert!(err.first_diff.contains("line 2"), "{}", err.first_diff);
        assert_ne!(err.hash_a, err.hash_b);
    }

    #[test]
    fn unreproducible_divergence_is_still_reported() {
        let mut flip = false;
        let err = audit_double_run(
            "s",
            3,
            |_| {
                flip = !flip;
                trace_hash(&format!("run {flip}"))
            },
            |_| "stable".to_string(),
        )
        .expect_err("hash divergence must fail even if re-render agrees");
        assert!(
            err.first_diff.contains("did not reproduce"),
            "{}",
            err.first_diff
        );
        assert_ne!(err.hash_a, err.hash_b);
    }

    #[test]
    fn length_only_divergence_is_reported() {
        let d = compare_runs("s", 1, "a\nb", "a\nb\nc").expect("diverges");
        assert!(d.first_diff.contains("lengths differ"), "{}", d.first_diff);
    }

    #[test]
    fn strict_prefix_divergence_reports_the_first_extra_line() {
        let d = compare_runs("s", 1, "a\nb", "a\nb\nextra line").expect("diverges");
        assert!(d.first_diff.contains("lengths differ"), "{}", d.first_diff);
        assert!(
            d.first_diff.contains("first extra line (3): `extra line`"),
            "{}",
            d.first_diff
        );
        // Symmetric: the longer run may be the first one.
        let d = compare_runs("s", 1, "a\nb\nc\nd", "a").expect("diverges");
        assert!(
            d.first_diff.contains("first extra line (2): `b`"),
            "{}",
            d.first_diff
        );
    }

    #[test]
    fn outcome_renders_the_audit_lines() {
        let ok = AuditOutcome {
            name: "s/flawed".to_string(),
            result: Ok(0xabc),
        };
        assert!(ok.is_ok());
        assert_eq!(ok.render(), "audit s/flawed: ok 0000000000000abc");

        let failed = AuditOutcome {
            name: "s/flawed".to_string(),
            result: Err(compare_runs("s/flawed", 7, "x", "y").expect("diverges")),
        };
        assert!(!failed.is_ok());
        assert!(failed.render().starts_with("audit FAILED: s/flawed: seed 7"));
    }
}
