//! The NEAT test engine: globally ordered client operations, fault
//! injection, node crashes, and virtual-time sleeps.

use simnet::{Application, NodeId, SimError, Time, World};

use crate::{
    checkers::Violation,
    fault::{Partition, PartitionSpec},
    gray::{Degrade, DegradeKind, DegradeSpec},
    history::{History, OpRecord},
};

/// The test engine (the central node of the paper's Figure 4).
///
/// `Neat` wraps a [`simnet::World`] and provides the paper's testing API:
///
/// - `partition_*` / [`Neat::heal`] — install and remove the three fault
///   types of Figure 1;
/// - [`Neat::crash`] / [`Neat::restart`] — kill and revive node groups;
/// - [`Neat::sleep`] — advance virtual time (e.g., past a leader-election
///   timeout, like `sleep(SLEEP_LEADER_ELECTION_PERIOD)` in Listing 1);
/// - [`Neat::run_op`] — run one client operation to completion under a
///   virtual-time timeout, giving the *global order of client operations*
///   that the paper's RMI-based engine provides;
/// - [`Neat::history`] — the recorded operation log fed to the checkers.
pub struct Neat<A: Application> {
    /// The simulated cluster. Public so harnesses can inspect node state.
    pub world: World<A>,
    history: History,
    active: Vec<Partition>,
    degraded: Vec<Degrade>,
    obs: obs::Recorder,
    /// Timeout applied by [`Neat::run_op`], in virtual milliseconds.
    pub op_timeout: Time,
}

impl<A: Application> Neat<A> {
    /// Wraps a world with the default 1000 ms operation timeout.
    ///
    /// The observability recorder inherits the world's `record_trace`
    /// flag, so one switch governs both the simnet event log and the
    /// typed `obs` timeline.
    pub fn new(world: World<A>) -> Self {
        let obs = obs::Recorder::new(world.trace().recording());
        Self {
            world,
            history: History::new(),
            active: Vec::new(),
            degraded: Vec::new(),
            obs,
            op_timeout: 1000,
        }
    }

    /// The recorded operation history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The observability recorder (counters and typed events so far).
    pub fn obs(&self) -> &obs::Recorder {
        &self.obs
    }

    /// Appends a record to the history (called by system client wrappers)
    /// and mirrors it into the observability stream.
    pub fn record(&mut self, rec: OpRecord) {
        // Deferred details: when per-event recording is off (the campaign's
        // verdict-only sweeps) the closure never runs, so no key/desc/outcome
        // strings are formatted on the hot path.
        self.obs.op_with(rec.start, rec.end, rec.client, || {
            (
                rec.op.key().to_string(),
                format!("{:?}", rec.op),
                format!("{:?}", rec.outcome),
            )
        });
        self.history.push(rec);
    }

    /// Installs a partition described by `spec` and returns a handle for
    /// healing it.
    pub fn partition(&mut self, spec: PartitionSpec) -> Partition {
        // Borrow the groups; the recorder clones them only when recording.
        let (class, a, b): (obs::PartitionClass, &[NodeId], &[NodeId]) = match &spec {
            PartitionSpec::Complete { a, b } => (obs::PartitionClass::Complete, a, b),
            PartitionSpec::Partial { a, b } => (obs::PartitionClass::Partial, a, b),
            PartitionSpec::Simplex { src, dst } => (obs::PartitionClass::Simplex, src, dst),
        };
        let pairs = spec.pairs().len();
        let rule = self.world.block_pairs(spec.pairs());
        self.obs
            .partition_installed(self.world.now(), rule.0, class, a, b, pairs);
        let p = Partition { rule, spec };
        self.active.push(p.clone());
        p
    }

    /// `Partitioner.complete(groupA, groupB)` of the paper.
    pub fn partition_complete(&mut self, a: &[NodeId], b: &[NodeId]) -> Partition {
        self.partition(PartitionSpec::Complete {
            a: a.to_vec(),
            b: b.to_vec(),
        })
    }

    /// `Partitioner.partial(groupA, groupB)` of the paper.
    pub fn partition_partial(&mut self, a: &[NodeId], b: &[NodeId]) -> Partition {
        self.partition(PartitionSpec::Partial {
            a: a.to_vec(),
            b: b.to_vec(),
        })
    }

    /// `Partitioner.simplex(groupSrc, groupDst)` of the paper.
    pub fn partition_simplex(&mut self, src: &[NodeId], dst: &[NodeId]) -> Partition {
        self.partition(PartitionSpec::Simplex {
            src: src.to_vec(),
            dst: dst.to_vec(),
        })
    }

    /// Heals one partition. Healing twice is a no-op.
    pub fn heal(&mut self, p: &Partition) {
        if self.active.iter().any(|q| q.rule == p.rule) {
            self.obs.partition_healed(self.world.now(), p.rule.0);
        }
        self.world.unblock(p.rule);
        self.active.retain(|q| q.rule != p.rule);
    }

    /// Heals every partition installed through this engine.
    pub fn heal_all(&mut self) {
        for p in std::mem::take(&mut self.active) {
            self.obs.partition_healed(self.world.now(), p.rule.0);
            self.world.unblock(p.rule);
        }
    }

    /// Partitions currently installed.
    pub fn active_partitions(&self) -> &[Partition] {
        &self.active
    }

    /// Installs a gray failure described by `spec` and returns a handle
    /// for healing it. The sibling of [`Neat::partition`] for degraded —
    /// rather than severed — links.
    pub fn degrade(&mut self, spec: DegradeSpec) -> Degrade {
        // Borrow the groups; the recorder clones them only when recording.
        let flapping = spec.kind() == DegradeKind::Flapping;
        let (class, a, b): (obs::DegradeClass, &[NodeId], &[NodeId]) = match &spec {
            DegradeSpec::Partial { a, b, .. } => {
                let class = if flapping {
                    obs::DegradeClass::Flapping
                } else {
                    obs::DegradeClass::GrayPartial
                };
                (class, a, b)
            }
            DegradeSpec::Simplex { src, dst, .. } => {
                let class = if flapping {
                    obs::DegradeClass::Flapping
                } else {
                    obs::DegradeClass::GraySimplex
                };
                (class, src, dst)
            }
        };
        let pairs = spec.pairs().len();
        let rule = self.world.degrade_pairs(spec.pairs(), spec.rule());
        self.obs
            .degrade_installed(self.world.now(), rule.0, class, a, b, pairs);
        let d = Degrade { rule, spec };
        self.degraded.push(d.clone());
        d
    }

    /// Heals one gray failure. Healing twice is a no-op.
    pub fn heal_degrade(&mut self, d: &Degrade) {
        if self.degraded.iter().any(|q| q.rule == d.rule) {
            self.obs.degrade_healed(self.world.now(), d.rule.0);
        }
        self.world.undegrade(d.rule);
        self.degraded.retain(|q| q.rule != d.rule);
    }

    /// Heals every gray failure installed through this engine.
    pub fn heal_all_degrades(&mut self) {
        for d in std::mem::take(&mut self.degraded) {
            self.obs.degrade_healed(self.world.now(), d.rule.0);
            self.world.undegrade(d.rule);
        }
    }

    /// Gray failures currently installed.
    pub fn active_degrades(&self) -> &[Degrade] {
        &self.degraded
    }

    /// Crashes every node in `nodes`. Nodes already down are skipped.
    pub fn crash(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            if self.world.crash(n).is_ok() {
                self.obs.crashed(self.world.now(), n);
            }
        }
    }

    /// Restarts every node in `nodes`. Nodes already up are skipped.
    pub fn restart(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            // `World::restart` is Ok for already-live nodes; only genuine
            // transitions become observability events.
            if !self.world.is_alive(n) && self.world.restart(n).is_ok() {
                self.obs.restarted(self.world.now(), n);
            }
        }
    }

    /// Advances virtual time by `ms`, processing everything scheduled in
    /// between — the paper's `sleep(...)` between test steps.
    pub fn sleep(&mut self, ms: Time) {
        self.world.run_for(ms);
    }

    /// Records a workload-driver progress sample at the current virtual
    /// time (see [`obs::Recorder::load_sample`]).
    pub fn load_sample(&mut self, issued: u64, completed: u64, in_flight: u64, backlog: u64) {
        let now = self.world.now();
        self.obs.load_sample(now, issued, completed, in_flight, backlog);
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.world.now()
    }

    /// Records `violations` as verdict events and returns the run's
    /// [`obs::Timeline`]: every fault, operation, and verdict in
    /// virtual-time order, application notes merged in from the simnet
    /// trace, and the fabric counters folded into [`obs::Counters`].
    ///
    /// Call once per run, after the checkers — the idiom every scenario
    /// outcome uses to fill its `timeline` field.
    pub fn observe(&mut self, violations: &[Violation]) -> obs::Timeline {
        let now = self.world.now();
        for v in violations {
            // Deferred: kind/details strings only materialize when recording.
            self.obs.verdict_with(now, || (v.kind.to_string(), v.details.clone()));
        }
        self.timeline()
    }

    /// Snapshot of the observability timeline without recording verdicts.
    pub fn timeline(&self) -> obs::Timeline {
        self.obs.timeline(self.world.trace())
    }

    /// Runs one asynchronous client operation to completion.
    ///
    /// `start` kicks the operation off (typically via [`World::call`] on a
    /// client node); `poll` is invoked after every simulation step and
    /// returns `Some(result)` once the operation completed. Returns `None`
    /// if [`Neat::op_timeout`] virtual milliseconds elapse first — the
    /// *Timeout* outcome of the paper's histories.
    pub fn run_op<R>(
        &mut self,
        start: impl FnOnce(&mut World<A>) -> Result<(), SimError>,
        mut poll: impl FnMut(&mut World<A>) -> Option<R>,
    ) -> Option<R> {
        if start(&mut self.world).is_err() {
            return None;
        }
        let deadline = self.world.now() + self.op_timeout;
        loop {
            if let Some(r) = poll(&mut self.world) {
                return Some(r);
            }
            match self.world.pending_events() {
                0 => {
                    // Nothing left to simulate; the op can only time out.
                    self.world.run_until(deadline);
                    return poll(&mut self.world);
                }
                _ => {
                    if self.world.now() >= deadline {
                        return None;
                    }
                    self.world.step();
                    if self.world.now() > deadline {
                        // The step jumped past the deadline (e.g., a distant
                        // timer); the op had its chance.
                        return poll(&mut self.world);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Ctx, TimerId, WorldBuilder};

    /// A node that acks every request after one hop.
    #[derive(Default)]
    struct AckServer {
        acked: Option<u64>,
    }

    impl Application for AckServer {
        type Msg = u64;
        fn on_start(&mut self, _ctx: &mut Ctx<'_, u64>) {}
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            if msg.is_multiple_of(2) {
                ctx.send(from, msg + 1);
            } else {
                self.acked = Some(msg);
            }
        }
        fn on_timer(&mut self, _: &mut Ctx<'_, u64>, _: TimerId, _: u64) {}
    }

    fn engine(n: usize) -> Neat<AckServer> {
        Neat::new(WorldBuilder::new(5).build(n, |_| AckServer::default()))
    }

    #[test]
    fn run_op_completes_round_trip() {
        let mut neat = engine(2);
        let got = neat.run_op(
            |w| w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 8)),
            |w| w.app(NodeId(0)).acked,
        );
        assert_eq!(got, Some(9));
    }

    #[test]
    fn run_op_times_out_under_partition() {
        let mut neat = engine(2);
        neat.op_timeout = 50;
        neat.partition_complete(&[NodeId(0)], &[NodeId(1)]);
        let t0 = neat.now();
        let got = neat.run_op(
            |w| w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 8)),
            |w| w.app(NodeId(0)).acked,
        );
        assert_eq!(got, None);
        assert!(neat.now() >= t0 + 50, "timeout must consume virtual time");
    }

    #[test]
    fn heal_restores_connectivity() {
        let mut neat = engine(2);
        let p = neat.partition_complete(&[NodeId(0)], &[NodeId(1)]);
        assert_eq!(neat.active_partitions().len(), 1);
        neat.heal(&p);
        assert!(neat.active_partitions().is_empty());
        let got = neat.run_op(
            |w| w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 8)),
            |w| w.app(NodeId(0)).acked,
        );
        assert_eq!(got, Some(9));
    }

    #[test]
    fn heal_all_clears_every_partition() {
        let mut neat = engine(3);
        neat.partition_complete(&[NodeId(0)], &[NodeId(1)]);
        neat.partition_simplex(&[NodeId(1)], &[NodeId(2)]);
        neat.heal_all();
        assert!(neat.active_partitions().is_empty());
        assert_eq!(neat.world.net().rule_count(), 0);
    }

    #[test]
    fn degrade_install_and_heal_roundtrip() {
        use crate::gray::DegradeSpec;
        use simnet::DegradeRule;
        let mut neat = engine(2);
        let d = neat.degrade(DegradeSpec::Partial {
            a: vec![NodeId(0)],
            b: vec![NodeId(1)],
            rule: DegradeRule::lossy(1.0),
        });
        assert_eq!(neat.active_degrades().len(), 1);
        assert!(neat.world.net().is_degraded(NodeId(0), NodeId(1)));
        // Total loss behaves like a partition for this round trip.
        neat.op_timeout = 50;
        let got = neat.run_op(
            |w| w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 8)),
            |w| w.app(NodeId(0)).acked,
        );
        assert_eq!(got, None);
        neat.heal_degrade(&d);
        neat.heal_degrade(&d); // second heal: no extra event
        assert!(neat.active_degrades().is_empty());
        let got = neat.run_op(
            |w| w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 8)),
            |w| w.app(NodeId(0)).acked,
        );
        assert_eq!(got, Some(9));
        let t = neat.observe(&[]);
        assert_eq!(t.counters.degrades_installed, 1);
        assert_eq!(t.counters.degrade_heals, 1);
    }

    #[test]
    fn heal_all_degrades_clears_every_rule() {
        use crate::gray::DegradeSpec;
        use simnet::DegradeRule;
        let mut neat = engine(3);
        neat.degrade(DegradeSpec::Partial {
            a: vec![NodeId(0)],
            b: vec![NodeId(1)],
            rule: DegradeRule::lossy(0.5),
        });
        neat.degrade(DegradeSpec::Simplex {
            src: vec![NodeId(1)],
            dst: vec![NodeId(2)],
            rule: DegradeRule::duplicating(1.0),
        });
        assert_eq!(neat.world.net().degrade_count(), 2);
        neat.heal_all_degrades();
        assert!(neat.active_degrades().is_empty());
        assert_eq!(neat.world.net().degrade_count(), 0);
    }

    #[test]
    fn crash_and_restart_groups() {
        let mut neat = engine(3);
        neat.crash(&[NodeId(1), NodeId(2)]);
        assert!(!neat.world.is_alive(NodeId(1)));
        assert!(!neat.world.is_alive(NodeId(2)));
        neat.crash(&[NodeId(1)]); // already down: skipped, no panic
        neat.restart(&[NodeId(1)]);
        assert!(neat.world.is_alive(NodeId(1)));
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let mut neat = engine(1);
        neat.sleep(123);
        assert_eq!(neat.now(), 123);
    }

    #[test]
    fn observability_counters_mirror_engine_actions() {
        let mut neat = engine(3);
        let p = neat.partition_complete(&[NodeId(0)], &[NodeId(1)]);
        neat.heal(&p);
        neat.heal(&p); // second heal: no extra event
        neat.crash(&[NodeId(1)]);
        neat.crash(&[NodeId(1)]); // already down: skipped
        neat.restart(&[NodeId(1)]);
        neat.restart(&[NodeId(1)]); // already up: skipped
        let t = neat.observe(&[]);
        assert_eq!(t.counters.partitions_installed, 1);
        assert_eq!(t.counters.heals, 1);
        assert_eq!(t.counters.crashes, 1);
        assert_eq!(t.counters.restarts, 1);
        assert!(t.is_empty(), "recording off ⇒ counters only, no events");
    }

    #[test]
    fn recorded_runs_produce_ordered_timelines() {
        let world = WorldBuilder::new(5).record_trace(true).build(2, |_| AckServer::default());
        let mut neat = Neat::new(world);
        assert!(neat.obs().enabled());
        neat.sleep(10);
        let p = neat.partition_complete(&[NodeId(0)], &[NodeId(1)]);
        neat.sleep(10);
        neat.heal(&p);
        neat.record(crate::history::OpRecord {
            client: NodeId(0),
            op: crate::history::Op::Read { key: "k".into() },
            outcome: crate::history::Outcome::Timeout,
            start: 12,
            end: 25,
        });
        let t = neat.observe(&[crate::checkers::Violation {
            kind: crate::checkers::ViolationKind::DataUnavailability,
            details: "k never answered".into(),
        }]);
        let labels: Vec<&str> = t.events.iter().map(|e| e.label()).collect();
        assert_eq!(labels, vec!["partition", "op", "heal", "verdict"]);
        assert_eq!(t.counters.verdicts, 1);
        assert_eq!(t.counters.ops_ordered, 1);
    }

    #[test]
    fn run_op_on_crashed_client_is_none() {
        let mut neat = engine(2);
        neat.crash(&[NodeId(0)]);
        let got = neat.run_op(
            |w| w.call(NodeId(0), |_, ctx| ctx.send(NodeId(1), 8)),
            |w| w.app(NodeId(0)).acked,
        );
        assert_eq!(got, None);
    }
}
